//! Derive macros for the vendored mini-serde.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` without
//! `syn`/`quote`: the item's token stream is parsed by hand into a small
//! shape description, and the impl is emitted as a formatted source string.
//!
//! Supported shapes (everything this workspace derives on):
//!
//! * structs with named fields → JSON object
//! * newtype structs (`struct Id(pub usize)`) → transparent inner value
//! * tuple structs with 2+ fields → JSON array
//! * unit structs → `null`
//! * enums with unit variants → variant-name string
//! * enums with named- or tuple-field variants → externally tagged
//!   single-entry object, `{"Variant": ...}`
//!
//! Generics and `#[serde(...)]` attributes are intentionally not supported;
//! the derive panics on them so misuse is caught at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Parsed {
    name: String,
    shape: Shape,
}

/// Derives `serde::Serialize` (mini-serde `to_value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (mini-serde `from_value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_item(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Parsed {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("mini-serde derive does not support generic type `{name}`");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("mini-serde derive supports structs and enums, got `{other}`"),
    };

    Parsed { name, shape }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
            *i += 1;
        }
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        // `pub(crate)`, `pub(super)`, ...
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Advances past a type (or any expression) until a comma at angle-bracket
/// depth zero, consuming the comma if present.
fn skip_past_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth: i32 = 0;
    while let Some(tt) = tokens.get(*i) {
        if let TokenTree::Punct(p) = tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {
                i += 1;
                skip_past_type(&tokens, &mut i);
            }
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        fields.push(field);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_past_type(&tokens, &mut i);
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_past_type(&tokens, &mut i);
        } else if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "entries.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut entries: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(entries)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|idx| format!("::serde::Serialize::to_value(&self.{idx})")).collect();
            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                        ),
                        VariantFields::Named(fields) => {
                            let bindings = fields.join(", ");
                            let pushes: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.push(({f:?}.to_string(), \
                                         ::serde::Serialize::to_value({f})));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {bindings} }} => {{\n\
                                 let mut inner: Vec<(String, ::serde::Value)> = Vec::new();\n\
                                 {pushes}\
                                 ::serde::Value::Map(vec![({vname:?}.to_string(), \
                                 ::serde::Value::Map(inner))])\n}}\n"
                            )
                        }
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|idx| format!("f{idx}")).collect();
                            let bindings = binds.join(", ");
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({bindings}) => \
                                 ::serde::Value::Map(vec![({vname:?}.to_string(), {payload})]),\n"
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(parsed: &Parsed) -> String {
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get({f:?})).map_err(|e| \
                         ::serde::DeError::custom(format!(\"field {f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "if v.as_map().is_none() {{\n\
                 return Err(::serde::DeError::mismatch(\"object\", v));\n}}\n\
                 Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: String = (0..*n)
                .map(|idx| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({idx}).unwrap_or(&::serde::Value::Null))?,\n"
                    )
                })
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| \
                 ::serde::DeError::mismatch(\"array\", v))?;\n\
                 Ok({name}({items}))"
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let str_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("{:?} => Ok({name}::{}),\n", v.name, v.name))
                .collect();
            let map_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(payload.get({f:?}))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => Ok({name}::{vname} {{\n{inits}}}),\n"
                            ))
                        }
                        VariantFields::Tuple(1) => Some(format!(
                            "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),\n"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: String = (0..*n)
                                .map(|idx| {
                                    format!(
                                        "::serde::Deserialize::from_value(items.get({idx}).unwrap_or(&::serde::Value::Null))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "{vname:?} => {{\n\
                                 let items = payload.as_seq().ok_or_else(|| \
                                 ::serde::DeError::mismatch(\"array\", payload))?;\n\
                                 Ok({name}::{vname}({items}))\n}}\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n\
                 {str_arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{other:?}} for {name}\"))),\n\
                 }},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n\
                 {map_arms}\
                 other => Err(::serde::DeError::custom(format!(\
                 \"unknown variant {{other:?}} for {name}\"))),\n\
                 }}\n}}\n\
                 other => Err(::serde::DeError::mismatch(\"enum representation\", other)),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
