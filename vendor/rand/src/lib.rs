//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! the workspace vendors a minimal — but *real*, fully deterministic —
//! implementation of the rand 0.8 API surface the MAGMA crates use:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool`
//! * [`SeedableRng::seed_from_u64`]
//! * [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64)
//! * [`thread_rng`] / [`rngs::ThreadRng`]
//! * [`seq::SliceRandom`] (`shuffle`, `choose`)
//! * [`distributions::Distribution`] and the [`distributions::Standard`]
//!   distribution
//!
//! The generator is not the upstream ChaCha12-based `StdRng`, so streams
//! differ from the real crate for the same seed; everything in this
//! workspace only relies on *reproducibility within the workspace*, which
//! this implementation provides.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-level random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform sample from the half-open interval `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from the closed interval `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// A range that [`Rng::gen_range`] can sample from.
///
/// The single blanket impl per range shape (mirroring the real crate) is
/// what lets the compiler unify the range literal's element type with the
/// method's return type during inference.
pub trait SampleRange<T> {
    /// Samples a single value uniformly from `self`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Uniform sample in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod distributions {
    //! The subset of `rand::distributions` the workspace uses.

    use super::{unit_f64, RngCore};

    /// Types that can produce values of type `T` given a source of
    /// randomness.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution of a type: uniform over all values for
    /// integers and `bool`, uniform in `[0, 1)` for floats.
    pub struct Standard;

    macro_rules! standard_int {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<f64> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    fn _assert_rngcore_dyn(_: &mut dyn RngCore) {}
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// SplitMix64, used to expand a `u64` seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    /// A lazily seeded generator for doc examples and quick experiments.
    ///
    /// Unlike the upstream crate this is a plain owned generator (no
    /// thread-local sharing); each call to [`super::thread_rng`] returns an
    /// independently seeded instance.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Returns a fresh, time-seeded generator (see [`rngs::ThreadRng`]).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_nanos() as u64).unwrap_or(0x5EED);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(nanos))
}

pub mod seq {
    //! Random operations on slices.

    use super::Rng;

    /// Extension trait: random selection from and shuffling of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    //! Convenience re-exports mirroring `rand::prelude`.
    pub use super::distributions::Distribution;
    pub use super::rngs::{StdRng, ThreadRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i: usize = rng.gen_range(0..=4);
            assert!(i <= 4);
        }
    }

    #[test]
    fn gen_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn thread_rng_works() {
        let mut rng = super::thread_rng();
        let _: f64 = rng.gen();
        let v: usize = rng.gen_range(0..10);
        assert!(v < 10);
    }
}
