//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small but genuine serialization framework with the same spelling as
//! serde: `#[derive(Serialize, Deserialize)]` plus `Serialize`/`Deserialize`
//! traits. Instead of serde's visitor architecture, values round-trip
//! through an owned [`Value`] tree, which `serde_json` renders to and parses
//! from JSON text. Semantics follow serde's JSON data model: structs are
//! maps, newtype structs are transparent, unit enum variants are strings and
//! data-carrying variants are externally tagged single-entry maps.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like value tree: the intermediate representation every
/// serializable type converts to and from.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer (used when the value does not fit an `i64`).
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Returns the object entries if this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in a map; missing keys (and non-maps) yield `Null`,
    /// which lets `Option` fields treat absent keys as `None`.
    pub fn get(&self, key: &str) -> &Value {
        match self {
            Value::Map(entries) => {
                entries.iter().find(|(k, _)| k == key).map(|(_, v)| v).unwrap_or(&NULL)
            }
            _ => &NULL,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Creates a "expected X, found Y" type mismatch error.
    pub fn mismatch(expected: &str, found: &Value) -> Self {
        DeError(format!("expected {expected}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::mismatch("bool", other)),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom("integer overflow"))?,
                    other => return Err(DeError::mismatch("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::I64(n),
                    Err(_) => Value::U64(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) => u64::try_from(*n)
                        .map_err(|_| DeError::custom("negative integer for unsigned type"))?,
                    other => return Err(DeError::mismatch("integer", other)),
                };
                <$t>::try_from(n).map_err(|_| DeError::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::I64(n) => Ok(*n as $t),
                    Value::U64(n) => Ok(*n as $t),
                    other => Err(DeError::mismatch("number", other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::mismatch("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::mismatch("single-character string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::mismatch("array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::mismatch("array", v))?;
                let mut it = items.iter();
                let out = ($(
                    $name::from_value(
                        it.next().ok_or_else(|| DeError::custom("tuple too short"))?,
                    )?,
                )+);
                Ok(out)
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Map keys must serialize to strings (matching `serde_json` semantics,
/// where e.g. unit enum variants are legal keys).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::Str(s) => s,
        Value::I64(n) => n.to_string(),
        Value::U64(n) => n.to_string(),
        other => panic!("map key must serialize to a string, got {}", other.kind()),
    }
}

fn key_from_str<K: Deserialize>(key: &str) -> Result<K, DeError> {
    // Try the string itself first (enum unit variants, String keys), then
    // fall back to integer interpretation for numeric key types.
    let as_str = Value::Str(key.to_owned());
    if let Ok(k) = K::from_value(&as_str) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<i64>() {
        return K::from_value(&Value::I64(n));
    }
    Err(DeError::custom(format!("cannot deserialize map key {key:?}")))
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect();
        // HashMap iteration order is unspecified; sort for stable output.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K, V> Deserialize for HashMap<K, V>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::mismatch("object", v))?;
        entries.iter().map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?))).collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (key_to_string(k), v.to_value())).collect())
    }
}

impl<K, V> Deserialize for BTreeMap<K, V>
where
    K: Deserialize + Ord,
    V: Deserialize,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v.as_map().ok_or_else(|| DeError::mismatch("object", v))?;
        entries.iter().map(|(k, val)| Ok((key_from_str(k)?, V::from_value(val)?))).collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip_through_null() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::I64(3)).unwrap(), Some(3));
    }

    #[test]
    fn missing_map_key_reads_as_null() {
        let m = Value::Map(vec![("a".into(), Value::I64(1))]);
        assert_eq!(m.get("a"), &Value::I64(1));
        assert_eq!(m.get("b"), &Value::Null);
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(u64::from_value(&Value::I64(5)).unwrap(), 5);
        assert!(u64::from_value(&Value::I64(-5)).is_err());
        assert_eq!(f64::from_value(&Value::I64(5)).unwrap(), 5.0);
        assert_eq!(usize::from_value(&Value::U64(7)).unwrap(), 7);
    }

    #[test]
    fn hashmap_sorts_keys_for_stability() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 2u32);
        m.insert("a".to_string(), 1u32);
        let v = m.to_value();
        assert_eq!(v, Value::Map(vec![("a".into(), Value::I64(1)), ("b".into(), Value::I64(2)),]));
        let back: HashMap<String, u32> = HashMap::from_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
