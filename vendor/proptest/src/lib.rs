//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with an optional `#![proptest_config(...)]` header),
//! numeric-range strategies, [`collection::vec`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros. Cases are generated from a
//! deterministic per-test seed (override the count with the
//! `PROPTEST_CASES` environment variable); there is no shrinking — the
//! failing inputs are printed instead.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};
use std::ops::Range;

/// Error carried out of a failing property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Resolves the case count, honoring the `PROPTEST_CASES` env override.
    pub fn resolved_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
            .max(1)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A source of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;
    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T> Strategy for Range<T>
where
    T: SampleUniform + std::fmt::Debug,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

pub mod collection {
    //! Strategies for collections.

    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from `len` and whose
    /// elements are drawn from `elem`.
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`].
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drives one property test: runs `cases` random cases, printing the
/// generated inputs on failure. Used by the [`proptest!`] expansion.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = config.resolved_cases();
    // Deterministic per-test seed so failures reproduce across runs.
    let seed = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3));
    for i in 0..cases {
        let mut rng = rand::SeedableRng::seed_from_u64(seed.wrapping_add(i as u64));
        if let Err(e) = case(&mut rng) {
            panic!("property {name:?} failed at case {i}/{cases}: {e}");
        }
    }
}

/// Defines property tests: each `#[test] fn name(arg in strategy, ...)`
/// becomes a normal `#[test]` running the body over random inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $crate::__proptest_each! { $config; $( $name ( $($arg in $strat),* ) $body )* }
    };
    (
        $( #[test] fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*
    ) => {
        $crate::__proptest_each! {
            $crate::ProptestConfig::default(); $( $name ( $($arg in $strat),* ) $body )*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ( $config:expr; $( $name:ident ( $($arg:ident in $strat:expr),* ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let config = $config;
                $crate::run_property(stringify!($name), &config, |__rng| {
                    $( let $arg = $crate::Strategy::generate(&($strat), __rng); )*
                    let mut __inputs = String::new();
                    $(
                        __inputs.push_str(
                            &format!("{} = {:?}; ", stringify!($arg), &$arg),
                        );
                    )*
                    let __result: Result<(), $crate::TestCaseError> = (move || {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    })();
                    __result.map_err(|e| {
                        $crate::TestCaseError::fail(format!("{e} (inputs: {__inputs})"))
                    })
                });
            }
        )*
    };
}

/// Like `assert!`, but fails the current case instead of panicking
/// immediately, letting the harness report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Like `assert_eq!`, but fails the current case with a `TestCaseError`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

pub mod prelude {
    //! Convenience re-exports mirroring `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(n in 3usize..10, x in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&n));
            prop_assert!((-1.0..1.0).contains(&x));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn vec_strategy_sizes(v in crate::collection::vec(0usize..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 5));
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn early_ok_return_is_allowed(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert!(n > 0);
        }
    }
}
