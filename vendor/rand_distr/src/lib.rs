//! Offline stand-in for the [`rand_distr`](https://crates.io/crates/rand_distr)
//! crate, providing the [`Normal`] distribution (Box–Muller sampling) and
//! re-exporting [`Distribution`] from the vendored `rand`.

#![forbid(unsafe_code)]

pub use rand::distributions::Distribution;
use rand::Rng;

/// Error returned by [`Normal::new`] for invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The standard deviation was negative or not finite.
    BadVariance,
    /// The mean was not finite.
    MeanTooSmall,
}

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NormalError::BadVariance => write!(f, "standard deviation is invalid"),
            NormalError::MeanTooSmall => write!(f, "mean is invalid"),
        }
    }
}

impl std::error::Error for NormalError {}

/// The normal (Gaussian) distribution `N(mean, std_dev^2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution; `std_dev` must be finite and
    /// non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::MeanTooSmall);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadVariance);
        }
        Ok(Normal { mean, std_dev })
    }

    /// The mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller transform; u1 is kept away from zero so ln() is finite.
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }
}

/// The standard normal distribution `N(0, 1)`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StandardNormal;

impl Distribution<f64> for StandardNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        Normal { mean: 0.0, std_dev: 1.0 }.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn moments_are_plausible() {
        let normal = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }
}
