//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json):
//! renders the vendored mini-serde [`Value`] tree to JSON text and parses
//! JSON text back, backing `to_string`, `to_string_pretty` and `from_str`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize};

pub use serde::Value;

/// Error type for JSON conversion failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected character {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our output.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u code point".into()))?,
                            );
                        }
                        other => return Err(Error(format!("invalid escape \\{}", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("invalid number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("s2 \"hetero\"".into())),
            ("cores".into(), Value::I64(4)),
            ("bw".into(), Value::F64(81.92)),
            ("tags".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_valid_json() {
        let v = Value::Seq(vec![Value::I64(1), Value::Map(vec![("k".into(), Value::Null)])]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v: Value = from_str(r#"{"a": "line\nbreak A", "b": -2.5e3, "c": 12}"#).unwrap();
        assert_eq!(v.get("a"), &Value::Str("line\nbreak A".into()));
        assert_eq!(v.get("b"), &Value::F64(-2500.0));
        assert_eq!(v.get("c"), &Value::I64(12));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{invalid}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
    }

    #[test]
    fn float_display_roundtrips() {
        let x = 0.1234567890123456_f64;
        let text = to_string(&x).unwrap();
        let back: f64 = from_str(&text).unwrap();
        assert_eq!(back, x);
    }
}
