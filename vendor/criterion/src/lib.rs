//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the API surface the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — backed by a simple
//! wall-clock timer instead of criterion's statistical machinery. Each
//! benchmark runs a small fixed number of timed iterations (override with
//! the `CRITERION_ITERS` environment variable) and prints mean time per
//! iteration. Passing `--test` (as `cargo test --benches` does) runs every
//! benchmark exactly once, as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimizing away a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver, one per bench target.
pub struct Criterion {
    iters: u64,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let iters =
            std::env::var("CRITERION_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { iters: iters.max(1), test_mode }
    }
}

impl Criterion {
    /// Hook kept for API compatibility; CLI arguments are read in
    /// [`Criterion::default`].
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.effective_iters(), &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn effective_iters(&self) -> u64 {
        if self.test_mode {
            1
        } else {
            self.iters
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in keeps its own fixed
    /// iteration count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.criterion.effective_iters(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        let iters = self.criterion.effective_iters();
        run_one(&label, iters, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark: `function_name/parameter`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function_name: function_name.into(), parameter: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly and records the total elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, iters: u64, f: &mut F) {
    let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut bencher);
    let per_iter = bencher.elapsed.checked_div(iters as u32).unwrap_or(Duration::ZERO);
    println!("bench {label:<50} {per_iter:>12.2?}/iter ({iters} iters)");
}

/// Declares a function that runs the listed benchmark targets in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { iters: 3, test_mode: false };
        let mut count = 0;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert_eq!(count, 3);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion { iters: 2, test_mode: false };
        let mut group = c.benchmark_group("g");
        group.sample_size(10).bench_function("f", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("param", 42), &7usize, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("algo", "S1").to_string(), "algo/S1");
    }
}
