//! Quickstart: map a mixed multi-tenant workload onto the small
//! heterogeneous accelerator (S2) with MAGMA and print what happened.
//!
//! Run with: `cargo run --release --example quickstart`

use magma::prelude::*;

fn main() {
    // 1. Describe the job: a Mix-task group of 40 jobs (vision + language +
    //    recommendation layers, mini-batched), the S2 accelerator from the
    //    paper's Table III, and a 16 GB/s system-bandwidth budget.
    let report = MapperBuilder::new()
        .setting(Setting::S2)
        .system_bw_gbps(16.0)
        .task(TaskType::Mix)
        .group_size(40)
        .algorithm(Algorithm::Magma)
        .budget(2_000)
        .seed(42)
        .run();

    // 2. Inspect the result.
    println!("algorithm        : {}", report.algorithm);
    println!("throughput       : {:.1} GFLOP/s", report.throughput_gflops);
    println!("makespan         : {:.3} ms", report.makespan_sec * 1e3);
    println!("samples evaluated: {}", report.history.num_samples());
    println!("samples to reach 90% of best: {:?}", report.history.samples_to_reach(0.9));

    // 3. Show the schedule the bandwidth allocator produced (Fig. 4b style).
    println!("\nPer-core utilization:");
    for core in 0..report.schedule.num_accels() {
        println!("  core {core}: {:>5.1}% busy", report.schedule.accel_utilization(core) * 100.0);
    }
    println!("peak system BW draw: {:.1} GB/s (budget 16.0)", report.schedule.peak_bw_gbps());

    println!("\nGantt chart (each row is a sub-accelerator):");
    print!("{}", report.schedule.render_gantt(100));
}
