//! Flexible accelerators (Section VI-F, Fig. 14): FPGA/CGRA-style cores whose
//! PE-array *shape* can be reconfigured per layer, compared against the fixed
//! arrays of the same PE budget.
//!
//! Run with: `cargo run --release --example flexible_accelerator`

use magma::experiments;
use magma::prelude::*;

fn main() {
    let group_size = 30;
    let budget = 1_200;

    println!("MAGMA on fixed vs flexible PE arrays (same PE count, same budget)\n");
    println!(
        "{:<22} {:>8} {:>14} {:>14} {:>10}",
        "configuration", "BW", "fixed GFLOP/s", "flex GFLOP/s", "gain"
    );

    for (setting, task, bw) in [
        (Setting::S1, TaskType::Vision, 1.0),
        (Setting::S1, TaskType::Vision, 16.0),
        (Setting::S1, TaskType::Mix, 1.0),
        (Setting::S1, TaskType::Mix, 16.0),
    ] {
        let row = experiments::flexible_vs_fixed(setting, task, bw, group_size, budget, 5);
        println!(
            "{:<22} {:>8.0} {:>14.1} {:>14.1} {:>9.2}x",
            format!("{setting} {task}"),
            bw,
            row.fixed_gflops,
            row.flexible_gflops,
            row.flexible_gflops / row.fixed_gflops
        );
    }

    // Show why: the flexible arrays cut the average per-job no-stall latency
    // (better PE utilization) at the cost of a higher bandwidth appetite.
    let row =
        experiments::flexible_vs_fixed(Setting::S1, TaskType::Mix, 16.0, group_size, budget, 5);
    println!(
        "\navg per-job no-stall latency: fixed {:.0} cycles vs flexible {:.0} cycles",
        row.fixed_avg_latency, row.flexible_avg_latency
    );
    println!(
        "avg per-job required BW     : fixed {:.2} GB/s  vs flexible {:.2} GB/s",
        row.fixed_avg_bw, row.flexible_avg_bw
    );
}
