//! Data-center scenario: a large heterogeneous accelerator (S4) serving a
//! mixed vision + language + recommendation tenant population.
//!
//! This mirrors the paper's headline experiment (Fig. 9c/d): the manual
//! mappers (Herald-like, AI-MT-like) are compared against MAGMA on the same
//! problem instance, and the throughput is reported normalized to MAGMA.
//!
//! Run with: `cargo run --release --example datacenter_mix`

use magma::prelude::*;

fn main() {
    let group_size = 60;
    let budget = 3_000;

    // One shared problem instance so every mapper sees the same jobs.
    let builder = MapperBuilder::new()
        .setting(Setting::S4)
        .system_bw_gbps(256.0)
        .task(TaskType::Mix)
        .group_size(group_size)
        .budget(budget)
        .seed(7);
    let problem = builder.build_problem();

    println!(
        "platform: {}  |  group: {} Mix jobs  |  budget: {} samples\n",
        problem.platform(),
        group_size,
        budget
    );

    let algorithms = [
        Algorithm::HeraldLike,
        Algorithm::AiMtLike,
        Algorithm::StdGa,
        Algorithm::A2c,
        Algorithm::Ppo2,
        Algorithm::Magma,
    ];

    let mut results: Vec<(String, f64)> = Vec::new();
    for algo in algorithms {
        let report = builder.clone().algorithm(algo).run_on(&problem);
        results.push((report.algorithm.clone(), report.throughput_gflops));
    }

    let magma_gflops = results.last().map(|(_, g)| *g).unwrap_or(1.0);
    println!("{:<14} {:>12} {:>12}", "mapper", "GFLOP/s", "vs MAGMA");
    for (name, gflops) in &results {
        println!("{:<14} {:>12.1} {:>11.2}x", name, gflops, gflops / magma_gflops);
    }

    println!(
        "\nMAGMA improves over the best manual mapper by {:.2}x",
        magma_gflops / results.iter().take(2).map(|(_, g)| *g).fold(f64::MIN_POSITIVE, f64::max)
    );
}
