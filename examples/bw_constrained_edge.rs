//! Bandwidth-constrained edge scenario: sweep the system bandwidth of the
//! small heterogeneous accelerator (S2) from 1 GB/s to 16 GB/s and watch how
//! much a good mapping matters as bandwidth gets scarce (the paper's Fig. 12a
//! observation: MAGMA's advantage grows as BW shrinks).
//!
//! Run with: `cargo run --release --example bw_constrained_edge`

use magma::prelude::*;

fn main() {
    let group_size = 40;
    let budget = 1_500;
    let bandwidths = [1.0, 4.0, 8.0, 16.0];

    println!("S2 (small heterogeneous), Mix task, {group_size} jobs, {budget} samples\n");
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "BW (GB/s)", "Herald (GFLOP/s)", "MAGMA (GFLOP/s)", "MAGMA gain"
    );

    for bw in bandwidths {
        let builder = MapperBuilder::new()
            .setting(Setting::S2)
            .system_bw_gbps(bw)
            .task(TaskType::Mix)
            .group_size(group_size)
            .budget(budget)
            .seed(3);
        let problem = builder.build_problem();

        let herald = builder.clone().algorithm(Algorithm::HeraldLike).run_on(&problem);
        let magma = builder.algorithm(Algorithm::Magma).run_on(&problem);

        println!(
            "{:>10.0} {:>16.1} {:>16.1} {:>13.2}x",
            bw,
            herald.throughput_gflops,
            magma.throughput_gflops,
            magma.throughput_gflops / herald.throughput_gflops
        );
    }

    println!("\nThe scarcer the bandwidth, the more the optimized mapping pays off.");
}
