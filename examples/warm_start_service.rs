//! Warm-start in a long-running mapping service (Section V-C, Table V).
//!
//! A deployed mapper sees a stream of job groups from the same task mix. The
//! warm-start engine remembers the best mapping per task category and seeds
//! the next search with it, recovering most of the benefit of a full search
//! within a single optimization epoch.
//!
//! Run with: `cargo run --release --example warm_start_service`

use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let setting = Setting::S2;
    let task = TaskType::Language;
    let group_size = 30;
    let epoch = group_size; // one epoch = one population worth of samples

    let mut engine = WarmStartEngine::new();

    // --- Group 0: full optimization, store the result. ---
    let first = MapperBuilder::new()
        .setting(setting)
        .task(task)
        .group_size(group_size)
        .budget(60 * epoch)
        .seed(11)
        .run();
    engine.record(task, first.best_mapping.clone());
    println!("group 0 (cold, 60 epochs): {:.1} GFLOP/s", first.throughput_gflops);

    // --- Groups 1..4: new jobs of the same task arrive; warm-start. ---
    for inst in 1..=4u64 {
        let builder = MapperBuilder::new()
            .setting(setting)
            .task(task)
            .group_size(group_size)
            .seed(100 + inst);
        let problem = builder.build_problem();

        let mut rng = StdRng::seed_from_u64(100 + inst);
        let seeded = engine
            .seed_population(&mut rng, task, group_size, problem.platform().num_sub_accels(), epoch)
            .expect("knowledge recorded for this task");

        // Evaluate the transferred solution before any optimization ...
        let transfer_only = problem.evaluate(&seeded[0]);
        // ... and after a single warm-started epoch.
        let mut rng = StdRng::seed_from_u64(100 + inst);
        let one_epoch =
            Magma::with_warm_start(seeded.clone()).search(&problem, epoch, &mut rng).best_fitness;
        // Reference: a full cold optimization on this group.
        let full = builder.clone().budget(60 * epoch).seed(100 + inst).run_on(&problem);

        println!(
            "group {inst}: transfer-only {:>6.1} | warm +1 epoch {:>6.1} | full {:>6.1} GFLOP/s  ({:.0}% of full after 1 epoch)",
            transfer_only,
            one_epoch,
            full.throughput_gflops,
            100.0 * one_epoch / full.throughput_gflops
        );
    }
}
