//! Warm-start in a long-running mapping service (Section V-C, Table V).
//!
//! A deployed mapper sees a stream of job groups from the same task mix. The
//! warm-start engine remembers the best mapping per task category *together
//! with the job signatures it was optimized for*, and seeds the next search
//! by giving each incoming job the gene block of the most similar stored job
//! (profile-matched adaptation) — recovering most of the benefit of a full
//! search within a single optimization epoch even when the new group lists
//! its jobs in a different order.
//!
//! Run with: `cargo run --release --example warm_start_service`

use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let setting = Setting::S2;
    let task = TaskType::Language;
    let group_size = 30;
    let epoch = group_size; // one epoch = one population worth of samples

    let mut engine = WarmStartEngine::new();

    // --- Group 0: full optimization, store the result with its signatures. ---
    let first_builder = MapperBuilder::new()
        .setting(setting)
        .task(task)
        .group_size(group_size)
        .budget(60 * epoch)
        .seed(11);
    let first_problem = first_builder.build_problem();
    let first = first_builder.run_on(&first_problem);
    engine.record_profiled(task, first.best_mapping.clone(), first_problem.signatures().to_vec());
    println!("group 0 (cold, 60 epochs): {:.1} GFLOP/s", first.throughput_gflops);

    // --- Groups 1..4: new jobs of the same task arrive; warm-start. ---
    for inst in 1..=4u64 {
        let builder = MapperBuilder::new()
            .setting(setting)
            .task(task)
            .group_size(group_size)
            .seed(100 + inst);
        let problem = builder.build_problem();

        let mut rng = StdRng::seed_from_u64(100 + inst);
        let seeded = engine
            .seed_population_matched(
                &mut rng,
                task,
                problem.signatures(),
                problem.platform().num_sub_accels(),
                epoch,
            )
            .expect("knowledge recorded for this task");

        // Evaluate the transferred solution before any optimization ...
        let transfer_only = problem.evaluate(&seeded[0]);
        // ... and after a single warm-started epoch.
        let mut rng = StdRng::seed_from_u64(100 + inst);
        let one_epoch =
            Magma::with_warm_start(seeded.clone()).search(&problem, epoch, &mut rng).best_fitness;
        // Reference: a full cold optimization on this group.
        let full = builder.clone().budget(60 * epoch).seed(100 + inst).run_on(&problem);

        println!(
            "group {inst}: transfer-only {:>6.1} | warm +1 epoch {:>6.1} | full {:>6.1} GFLOP/s  ({:.0}% of full after 1 epoch)",
            transfer_only,
            one_epoch,
            full.throughput_gflops,
            100.0 * one_epoch / full.throughput_gflops
        );
    }
}
