//! End-to-end RPC suite: a real daemon on a localhost socket, driven by
//! the real client over TCP.
//!
//! What is locked down here:
//!
//! * **No lost or duplicated responses** — every submit gets exactly one
//!   admission verdict and every accepted submit exactly one terminal,
//!   enforced structurally by the client's `Mux` (any violation surfaces
//!   as an `InvalidData` error from `poll_event`) and re-counted here.
//! * **Backpressure engages under flood** — with tiny queue bounds the
//!   daemon answers `busy` with a positive retry hint while accepted
//!   requests still complete within the timeout.
//! * **Graceful drain** — every in-flight group reaches its terminal
//!   `done` *before* the `drained` response, shard caches are persisted
//!   to disk, and the final stats account for every job.
//! * **Cancellation over the wire** — a cancel is acknowledged and the
//!   target submit terminates as `cancelled`, never `done`.
//! * **The loadgen → `BENCH_rpc.json` pipeline** — a wall-clock replay
//!   produces a report that passes its own `magma-rpc/v1` self-check
//!   with zero dropped in-flight submits.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use magma_model::{Job, JobId, LayerShape, TaskType, TenantMix};
use magma_platform::settings::ServerKnobs;
use magma_serve::engine::shard_cache_file;
use magma_serve::trace::{generate_trace, Scenario, TraceParams};
use magma_serve::{EngineConfig, ScenarioDescriptor};
use magma_server::client::{Client, Event};
use magma_server::daemon::Server;
use magma_server::loadgen::{self, LoadgenParams};

const MAX_FRAME: usize = 1 << 20;
const STEP: Duration = Duration::from_millis(20);

fn tiny_knobs() -> ServerKnobs {
    let mut knobs = ServerKnobs::smoke();
    knobs.addr = "127.0.0.1:0".to_string();
    knobs.fleet.serve.cold_budget = 40;
    knobs.fleet.serve.refine_budget = 4;
    knobs.fleet.serve.group_target = 4;
    knobs.fleet.serve.max_wait_x = 1.0;
    knobs.fleet.shards = 2;
    knobs.fleet.max_live = 2;
    knobs.rate = 100.0;
    knobs.timeout_sec = 30.0;
    knobs
}

fn job(i: usize) -> Job {
    Job::new(
        JobId(i),
        "m",
        0,
        LayerShape::FullyConnected { out_features: 64 + (i % 3) * 32, in_features: 64 },
        4,
        TaskType::Recommendation,
    )
}

fn start_server(knobs: &ServerKnobs) -> (Server, String) {
    let config = EngineConfig::from_knobs(knobs);
    let mix = TenantMix::synthetic(knobs.fleet.tenants.max(2), 0);
    let server = Server::start(&knobs.addr, MAX_FRAME, config, mix)
        .expect("daemon binds an ephemeral localhost port");
    let addr = server.addr().to_string();
    (server, addr)
}

/// Polls the client until no request is outstanding, collecting events.
fn pump_until_settled(client: &mut Client, events: &mut Vec<Event>, deadline: Instant) {
    while client.outstanding() > 0 {
        assert!(Instant::now() < deadline, "timed out waiting; events so far: {events:#?}");
        if let Some(event) = client.poll_event(STEP).expect("no protocol violations") {
            events.push(event);
        }
    }
}

/// Polls the client until `stop(events)` holds, collecting events.
fn pump_until(
    client: &mut Client,
    events: &mut Vec<Event>,
    deadline: Instant,
    mut stop: impl FnMut(&[Event]) -> bool,
) {
    while !stop(events) {
        assert!(Instant::now() < deadline, "timed out waiting; events so far: {events:#?}");
        if let Some(event) = client.poll_event(STEP).expect("no protocol violations") {
            events.push(event);
        }
    }
}

fn drain_and_join(mut client: Client, server: Server) -> magma_serve::EngineStats {
    client.drain().expect("drain request sends");
    let mut post = Vec::new();
    pump_until(&mut client, &mut post, Instant::now() + Duration::from_secs(120), |evs| {
        evs.iter().any(|e| matches!(e, Event::Drained { .. }))
    });
    drop(client);
    server.join()
}

#[test]
fn submits_round_trip_with_no_lost_or_duplicated_responses() {
    let knobs = tiny_knobs();
    let (server, addr) = start_server(&knobs);
    let mut client = Client::connect(&addr, MAX_FRAME).expect("client connects");

    let mut submit_ids = Vec::new();
    for t in 0..6usize {
        let id = client.submit(t % 2, vec![job(t), job(t + 1)]).expect("submit");
        submit_ids.push(id);
    }
    let mut events = Vec::new();
    pump_until_settled(&mut client, &mut events, Instant::now() + Duration::from_secs(120));

    let mut verdicts: HashMap<u64, usize> = HashMap::new();
    let mut terminals: HashMap<u64, usize> = HashMap::new();
    for event in &events {
        match event {
            Event::Accepted { id } | Event::Busy { id, .. } | Event::Error { id, .. } => {
                *verdicts.entry(*id).or_default() += 1;
            }
            Event::Done { id, jobs, .. } => {
                assert_eq!(*jobs, 2, "group size echoes back");
                *terminals.entry(*id).or_default() += 1;
            }
            Event::Cancelled { id } => {
                *terminals.entry(*id).or_default() += 1;
            }
            other => panic!("unexpected event {other:?}"),
        }
    }
    for id in &submit_ids {
        assert_eq!(verdicts.get(id), Some(&1), "exactly one verdict for submit {id}");
    }
    let accepted: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Accepted { id } => Some(*id),
            _ => None,
        })
        .collect();
    assert!(!accepted.is_empty(), "the unloaded daemon accepts work");
    for id in &accepted {
        assert_eq!(terminals.get(id), Some(&1), "exactly one terminal for accepted {id}");
    }

    let stats = drain_and_join(client, server);
    assert_eq!(stats.completed_jobs, 2 * accepted.len() as u64);
    assert_eq!(stats.queued_jobs, 0);
    assert_eq!(stats.live_sessions, 0);
}

#[test]
fn flooding_engages_backpressure_while_accepted_work_stays_bounded() {
    let mut knobs = tiny_knobs();
    knobs.fleet.serve.cold_budget = 400;
    knobs.max_backlog_sec = 1e-3;
    knobs.pending_per_shard = 1;
    let (server, addr) = start_server(&knobs);
    let mut client = Client::connect(&addr, MAX_FRAME).expect("client connects");

    let mut sent_at: HashMap<u64, Instant> = HashMap::new();
    for t in 0..32usize {
        let id = client.submit(0, vec![job(t)]).expect("submit");
        sent_at.insert(id, Instant::now());
    }

    let mut events = Vec::new();
    let mut latencies = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(120);
    while client.outstanding() > 0 {
        assert!(Instant::now() < deadline, "flood never settled; events: {events:#?}");
        if let Some(event) = client.poll_event(STEP).expect("no protocol violations") {
            if let Event::Done { id, .. } = &event {
                latencies.push(sent_at[id].elapsed());
            }
            events.push(event);
        }
    }
    let accepted = events.iter().filter(|e| matches!(e, Event::Accepted { .. })).count();
    let busy: Vec<f64> = events
        .iter()
        .filter_map(|e| match e {
            Event::Busy { retry_after_sec, .. } => Some(*retry_after_sec),
            _ => None,
        })
        .collect();
    assert!(accepted > 0, "some of the flood is admitted");
    assert!(!busy.is_empty(), "backpressure engages under flood");
    assert!(busy.iter().all(|&hint| hint > 0.0), "retry hints are positive: {busy:?}");
    assert_eq!(latencies.len(), accepted, "every accepted submit completed");
    let worst = latencies.iter().max().copied().unwrap_or_default();
    assert!(
        worst < Duration::from_secs_f64(knobs.timeout_sec),
        "accepted-request tail latency {worst:?} stays under the {}s timeout",
        knobs.timeout_sec
    );

    let stats = drain_and_join(client, server);
    assert_eq!(stats.rejected as usize, busy.len());
}

#[test]
fn drain_completes_in_flight_groups_first_and_persists_shard_caches() {
    let dir = std::env::temp_dir().join(format!("magma_rpc_drain_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let cache_base = dir.join("serve_cache.json");

    let mut knobs = tiny_knobs();
    knobs.fleet.serve.cold_budget = 800;
    let mut config = EngineConfig::from_knobs(&knobs);
    config.cache_path = Some(cache_base.clone());
    let mix = TenantMix::synthetic(2, 0);
    let server = Server::start("127.0.0.1:0", MAX_FRAME, config, mix).expect("daemon starts");
    let addr = server.addr().to_string();
    let mut client = Client::connect(&addr, MAX_FRAME).expect("client connects");

    // Submit groups and drain while they are still in flight.
    for t in 0..8usize {
        client.submit(t % 2, vec![job(t)]).expect("submit");
    }
    let mut events = Vec::new();
    pump_until(&mut client, &mut events, Instant::now() + Duration::from_secs(60), |evs| {
        evs.iter().filter(|e| matches!(e, Event::Accepted { .. })).count() == 8
    });
    client.drain().expect("drain");
    pump_until(&mut client, &mut events, Instant::now() + Duration::from_secs(120), |evs| {
        evs.iter().any(|e| matches!(e, Event::Drained { .. }))
    });

    // Ordering: every Done precedes the Drained response.
    let drained_pos =
        events.iter().position(|e| matches!(e, Event::Drained { .. })).expect("drained");
    let dones_before =
        events.iter().take(drained_pos).filter(|e| matches!(e, Event::Done { .. })).count();
    assert_eq!(dones_before, 8, "all eight in-flight groups complete before drained");
    let Event::Drained { jobs, stats, .. } = &events[drained_pos] else { unreachable!() };
    assert_eq!(*jobs, 8);
    let final_stats = stats.expect("drained carries the final stats");
    assert_eq!(final_stats.completed_jobs, 8);
    assert_eq!(final_stats.live_sessions, 0);
    assert_eq!(final_stats.queued_jobs, 0);

    drop(client);
    server.join();
    for shard in 0..knobs.fleet.shards {
        let file = shard_cache_file(&cache_base, shard);
        assert!(file.exists(), "drain persists {}", file.display());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelling_over_the_wire_acknowledges_and_terminates_the_target() {
    let mut knobs = tiny_knobs();
    // Long searches so the target is still live when the cancel lands.
    knobs.fleet.serve.cold_budget = 200_000;
    knobs.fleet.serve.group_target = 1;
    let (server, addr) = start_server(&knobs);
    let mut client = Client::connect(&addr, MAX_FRAME).expect("client connects");

    let target = client.submit(0, vec![job(0)]).expect("submit");
    let mut events = Vec::new();
    pump_until(&mut client, &mut events, Instant::now() + Duration::from_secs(30), |evs| {
        evs.iter().any(|e| matches!(e, Event::Accepted { .. }))
    });
    // Give the scheduler a moment to start the session.
    std::thread::sleep(Duration::from_millis(50));

    let cancel_id = client.cancel(target).expect("cancel");
    pump_until(&mut client, &mut events, Instant::now() + Duration::from_secs(60), |evs| {
        evs.iter().any(|e| matches!(e, Event::Cancelled { id } if *id == cancel_id))
            && evs.iter().any(|e| matches!(e, Event::Cancelled { id } if *id == target))
    });
    assert!(
        !events.iter().any(|e| matches!(e, Event::Done { id, .. } if *id == target)),
        "a cancelled submit never reports done: {events:#?}"
    );

    let stats = drain_and_join(client, server);
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed_jobs, 0);
    assert_eq!(stats.cancelled_jobs, 1);
}

#[test]
fn the_loadgen_pipeline_emits_a_self_consistent_report() {
    let knobs = tiny_knobs();
    let (server, addr) = start_server(&knobs);

    let mix = TenantMix::synthetic(knobs.fleet.tenants.max(2), 0);
    let rate = 200.0;
    let trace = generate_trace(
        &TraceParams {
            scenario: Scenario::Poisson,
            requests: 24,
            mean_interarrival_sec: 1.0 / rate,
            mini_batch: magma_model::workload::DEFAULT_MINI_BATCH,
            seed: 7,
        },
        &mix,
    );
    let descriptor = ScenarioDescriptor::new(
        "builtin",
        "loadgen_poisson",
        serde::Value::Map(vec![("requests".into(), serde::Value::U64(24))]),
    );
    let params = LoadgenParams {
        addr: addr.clone(),
        rate,
        max_frame_bytes: MAX_FRAME,
        timeout_sec: 60.0,
        speedup: 1.0,
    };
    let report = loadgen::run(&params, &trace, descriptor, "smoke").expect("loadgen runs");
    assert_eq!(report.validate(), None, "magma-rpc/v1 self-check passes");
    assert_eq!(report.requests, 24);
    assert_eq!(report.dropped_in_flight, 0, "the drain guarantee holds");
    assert!(report.accepted > 0);
    // One job per request: accepted submits and accounted jobs line up.
    assert_eq!(report.server.completed_jobs + report.server.cancelled_jobs, report.accepted as u64);
    server.join();
}
