//! Serving determinism suite: the online simulator must emit bit-identical
//! `BENCH_serve.json` metrics at a fixed seed, whatever the worker-thread
//! count and however often it is re-run.
//!
//! The report is purely virtual-clock (no wall-clock fields, no thread
//! counts), every search evaluates candidates through the order-stable
//! parallel batch oracle, and every RNG is seeded — so the *entire
//! serialized report* must be byte-equal across `MAGMA_THREADS` ∈ {1, 4}
//! (pinned per-thread via `magma_optim::parallel::with_threads`, exactly as
//! the optimizer determinism suite does) and across repeated runs. Since the
//! `magma-serve/v3` schema the report carries **both** serving modes —
//! overlap (search slices interleaved with execution, the default) and the
//! legacy serial baseline — and the suite locks the acceptance criteria of
//! both: the repeated-tenant cache economics (hits ≥ 90% of cold throughput
//! at ≤ 10% of the cold budget) and the overlap end-to-end latency win.

use magma_optim::parallel::with_threads;
use magma_platform::settings::ServeKnobs;
use magma_serve::report::{run_standard_scenarios, ScenarioResult, ServeReport};

/// Miniature but non-trivial knobs: several dispatch groups per scenario,
/// cold/refine budgets in the acceptance ratio, a real (bounded) cache.
fn test_knobs() -> ServeKnobs {
    ServeKnobs {
        requests: 64,
        group_target: 8,
        cold_budget: 50,
        refine_budget: 5,
        cache_capacity: 12,
        seed: 7,
        ..ServeKnobs::smoke()
    }
}

fn report_json(threads: usize) -> String {
    with_threads(threads, || {
        let report = run_standard_scenarios(&test_knobs(), true);
        serde_json::to_string_pretty(&report).expect("report serializes")
    })
}

fn repeated_tenant(ladder: &[ScenarioResult]) -> &ScenarioResult {
    ladder
        .iter()
        .find(|s| s.name == "repeated_tenant")
        .expect("the standard ladder always contains the repeated-tenant scenario")
}

#[test]
fn report_is_bit_identical_across_thread_counts() {
    let serial = report_json(1);
    let parallel = report_json(4);
    assert_eq!(serial, parallel, "MAGMA_THREADS must never change serving metrics");
    // Oversubscription (more workers than candidates) must not matter either.
    assert_eq!(serial, report_json(64));
}

#[test]
fn report_is_bit_identical_across_repeated_runs() {
    assert_eq!(report_json(2), report_json(2));
}

#[test]
fn report_survives_a_serde_round_trip_under_parallel_evaluation() {
    let json = report_json(4);
    let report: ServeReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(report.schema, magma_serve::SCHEMA);
    assert_eq!(report.scenarios.len(), 2);
    assert_eq!(report.baseline_scenarios.len(), 2);
    report.validate().expect("the v2 schema self-check holds after a round trip");
    assert_eq!(serde_json::to_string_pretty(&report).unwrap(), json);
}

#[test]
fn different_seeds_produce_different_reports() {
    let a = report_json(1);
    let b = with_threads(1, || {
        let knobs = ServeKnobs { seed: 8, ..test_knobs() };
        serde_json::to_string_pretty(&run_standard_scenarios(&knobs, true)).unwrap()
    });
    assert_ne!(a, b, "the seed must actually drive the trace and searches");
}

#[test]
fn acceptance_criterion_holds_on_the_repeated_tenant_trace() {
    let report = with_threads(4, || run_standard_scenarios(&test_knobs(), true));
    // The cache economics hold in both serving modes.
    for ladder in [report.overlap_scenarios(), report.legacy_scenarios()] {
        let repeat = repeated_tenant(ladder);
        let d = &repeat.metrics.dispatch;
        assert!(d.hits > 0, "repeated-tenant windows must recur in the cache: {d:?}");
        assert!(
            d.hit_cold_throughput_ratio >= 0.9,
            "hit dispatches reached only {:.3} of cold throughput",
            d.hit_cold_throughput_ratio
        );
        assert!(
            d.hit_sample_fraction <= 0.101,
            "hits spent {:.3} of the cold budget",
            d.hit_sample_fraction
        );
        // The cache never exceeds its bound.
        assert!(repeat.metrics.cache.entries <= test_knobs().cache_capacity);
    }
}

#[test]
fn overlap_mode_beats_legacy_end_to_end_on_the_repeated_tenant_trace() {
    let report = with_threads(2, || run_standard_scenarios(&test_knobs(), true));
    let overlap = repeated_tenant(report.overlap_scenarios());
    let legacy = repeated_tenant(report.legacy_scenarios());
    assert!(
        overlap.metrics.end_to_end.mean_sec < legacy.metrics.end_to_end.mean_sec,
        "overlap mean e2e {} must be strictly below legacy {}",
        overlap.metrics.end_to_end.mean_sec,
        legacy.metrics.end_to_end.mean_sec
    );
    // The comparison block mirrors the ladders.
    let cmp = report
        .comparison
        .iter()
        .find(|c| c.name == "repeated_tenant")
        .expect("one comparison entry per scenario");
    assert!(cmp.mean_speedup > 1.0, "speedup {} must exceed 1", cmp.mean_speedup);
    report.validate().expect("self-check");
}

/// The warm-restart contract of `MAGMA_SERVE_CACHE_PATH`: a run persists
/// its mapping cache, a restart loads it and serves strictly more hits than
/// the cold run did — and two restarts from the same persisted file are
/// bit-identical whatever `MAGMA_THREADS` says.
#[test]
fn a_persisted_cache_restart_is_warm_and_thread_invariant() {
    use magma_model::TenantMix;
    use magma_serve::sim::{simulate, SimConfig};
    use magma_serve::trace::Scenario;

    let knobs = test_knobs();
    let mix = TenantMix::synthetic(8, knobs.seed);
    let dir = std::env::temp_dir();
    let seed_file = dir.join(format!("magma_serve_cache_seed_{}.json", std::process::id()));
    let _ = std::fs::remove_file(&seed_file);
    let base = SimConfig::from_knobs(&knobs, Scenario::Poisson);
    // First run: starts cold, persists its cache on exit.
    let cold = with_threads(2, || simulate(&base.clone().with_cache_path(&seed_file), &mix));
    // Every restart loads its own copy of the persisted file — a run
    // overwrites its cache file on exit, so copies keep the restarts
    // independent and comparable.
    let warm_run = |tag: &str, threads: usize| {
        let copy = dir.join(format!("magma_serve_cache_{tag}_{}.json", std::process::id()));
        std::fs::copy(&seed_file, &copy).expect("the persisted cache copies");
        let result = with_threads(threads, || simulate(&base.clone().with_cache_path(&copy), &mix));
        let _ = std::fs::remove_file(copy);
        result
    };
    let warm_serial = warm_run("t1", 1);
    let warm_parallel = warm_run("t4", 4);
    let _ = std::fs::remove_file(&seed_file);
    assert!(
        warm_serial.metrics.cache.hit_rate > cold.metrics.cache.hit_rate,
        "a restart from the persisted cache must hit more: warm {} vs cold {}",
        warm_serial.metrics.cache.hit_rate,
        cold.metrics.cache.hit_rate
    );
    assert!(warm_serial.metrics.cache.hits > cold.metrics.cache.hits);
    assert_eq!(
        warm_serial.metrics, warm_parallel.metrics,
        "a reloaded cache must reproduce identical metrics across MAGMA_THREADS"
    );
}

#[test]
fn every_scenario_completes_all_requests_with_sane_profiles() {
    let report = with_threads(2, || run_standard_scenarios(&test_knobs(), true));
    for s in report.scenarios.iter().chain(&report.baseline_scenarios) {
        let m = &s.metrics;
        assert_eq!(m.jobs, 64, "{}", s.name);
        assert_eq!(m.tenants.iter().map(|t| t.jobs).sum::<usize>(), m.jobs, "{}", s.name);
        assert!(m.duration_sec > 0.0 && m.throughput_gflops > 0.0, "{}", s.name);
        for stats in [&m.queueing, &m.service, &m.end_to_end] {
            assert_eq!(stats.count, m.jobs, "{}", s.name);
            assert!(stats.p50_sec <= stats.p95_sec && stats.p95_sec <= stats.p99_sec);
            assert!(stats.p99_sec <= stats.max_sec && stats.max_sec.is_finite());
        }
        assert_eq!(m.cache.hits + m.cache.misses, m.dispatch.dispatches as u64, "{}", s.name);
    }
}
