//! Fleet determinism and preemption suite: the multi-shard serving layer
//! must emit bit-identical `BENCH_fleet.json` reports at a fixed seed
//! (whatever the worker-thread count and however often it is re-run), a
//! 1-shard fleet must degenerate *exactly* to the single-queue overlap
//! simulator, preemption must actually fire under deadline pressure, and
//! the router's placement invariants must hold for arbitrary placement
//! sequences (proptest).
//!
//! The fleet event loop is a pure function of `(FleetConfig, TenantMix)`:
//! virtual clocks only, seeded RNG only, candidate evaluation through the
//! order-stable parallel batch oracle, and a deterministic event order
//! (arrival < cut < step on time ties, then shard index). These tests are
//! the contract that keeps it that way.

use magma_model::{Job, JobId, LayerShape, TaskType, TenantMix};
use magma_optim::parallel::with_threads;
use magma_platform::settings::{FleetKnobs, FleetPolicy, ServeKnobs};
use magma_platform::Setting;
use magma_serve::fleet::{fleet_simulate, run_fleet_ladder, FleetConfig};
use magma_serve::sim::{simulate, SimConfig};
use magma_serve::trace::Scenario;
use magma_serve::{quantize_signatures, ShardRouter, SignatureKey};
use proptest::prelude::*;
use std::collections::HashMap;

/// Miniature but non-trivial fleet knobs: several groups per shard, a real
/// cache, an offered load that genuinely overloads one shard.
fn test_knobs() -> FleetKnobs {
    FleetKnobs {
        serve: ServeKnobs {
            requests: 60,
            group_target: 6,
            cold_budget: 40,
            refine_budget: 4,
            cache_capacity: 12,
            seed: 7,
            ..ServeKnobs::smoke()
        },
        shards: 3,
        requests: 60,
        tenants: 10,
        offered_load: 12.0,
        max_live: 2,
        ..FleetKnobs::smoke()
    }
}

fn report_json(threads: usize) -> String {
    with_threads(threads, || {
        let report = run_fleet_ladder(&test_knobs(), true);
        serde_json::to_string_pretty(&report).expect("report serializes")
    })
}

#[test]
fn fleet_report_is_bit_identical_across_thread_counts() {
    let serial = report_json(1);
    let parallel = report_json(4);
    assert_eq!(serial, parallel, "MAGMA_THREADS must never change fleet metrics");
    // Oversubscription (more workers than candidates) must not matter either.
    assert_eq!(serial, report_json(64));
}

#[test]
fn fleet_report_is_bit_identical_across_repeated_runs() {
    assert_eq!(report_json(2), report_json(2));
}

#[test]
fn fleet_report_validates_and_survives_a_serde_round_trip() {
    let json = report_json(2);
    let report: magma_serve::FleetReport =
        serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(report.schema, magma_serve::FLEET_SCHEMA);
    report.validate().expect("the fleet schema self-check holds after a round trip");
    assert_eq!(serde_json::to_string_pretty(&report).unwrap(), json);
}

#[test]
fn different_seeds_produce_different_fleet_reports() {
    let a = report_json(1);
    let b = with_threads(1, || {
        let mut knobs = test_knobs();
        knobs.serve.seed = 8;
        serde_json::to_string_pretty(&run_fleet_ladder(&knobs, true)).unwrap()
    });
    assert_ne!(a, b, "the seed must actually drive the trace and searches");
}

/// The degenerate-fleet contract: one shard, the Uniform policy, one live
/// session, no value preemption and a slice at least the search budget is
/// — floating point for floating point, RNG draw for RNG draw — the
/// single-queue overlap simulator. Bit-identical metrics, not approximate.
#[test]
fn one_shard_uniform_fleet_matches_the_single_queue_simulator_exactly() {
    let serve = ServeKnobs {
        requests: 60,
        group_target: 6,
        cold_budget: 40,
        refine_budget: 4,
        cache_capacity: 12,
        offered_load: 12.0,
        overlap: true,
        search_slice: 1 << 14, // ≥ every budget: one step per search
        seed: 7,
        ..ServeKnobs::smoke()
    };
    let mix = TenantMix::synthetic(10, 3);
    for scenario in [Scenario::Poisson, Scenario::Bursty] {
        let sim = simulate(&SimConfig::from_knobs(&serve, scenario), &mix);
        let fleet_knobs = FleetKnobs {
            serve: serve.clone(),
            shards: 1,
            shard_settings: vec![Setting::S2],
            requests: serve.requests,
            tenants: 10,
            offered_load: serve.offered_load,
            max_live: 1,
            policy: FleetPolicy::Uniform,
            min_slice: 4,
            preempt_margin: 0.0,
            // The shared tier and the single-queue simulator are different
            // machines: the degenerate-fleet equivalence only holds with
            // the tier off.
            shared_cache_capacity: 0,
            shared_tenant_quota: 0,
        };
        let fleet = fleet_simulate(&FleetConfig::from_knobs(&fleet_knobs, 1, scenario), &mix);
        assert_eq!(
            fleet.metrics, sim.metrics,
            "{scenario:?}: a 1-shard Uniform fleet must equal the single-queue simulator"
        );
        assert_eq!(fleet.mean_interarrival_sec, sim.mean_interarrival_sec);
        assert_eq!(fleet.sla_sec, sim.sla_sec);
        assert_eq!(fleet.sched.preemptions(), 0);
        assert_eq!(fleet.per_shard_jobs, vec![serve.requests]);
    }
}

/// The preemption path end to end: under the standard deadline-pressure
/// scenario sessions are early-finished mid-budget, *and every preempted
/// group still completes and executes* (an early finish produces a usable
/// mapping, never a dropped request).
#[test]
fn deadline_preemption_fires_and_preempted_groups_still_complete() {
    let knobs = test_knobs();
    let mut config = FleetConfig::from_knobs(&knobs, 2, Scenario::Poisson);
    config.requests = 240;
    config.offered_load = knobs.offered_load * 1.5;
    config.sla_x = knobs.serve.sla_x / 3.0;
    config.policy = FleetPolicy::Deadline;
    config.mapper_pressure = 1.5;
    // This test pins the preemption path, which needs a cold-search-
    // dominated mapper: the shared tier and the nearest-key probe turn most
    // searches into cheap refinements at this scale, so switch them off.
    config.shared_cache_capacity = 0;
    config.dispatch.cache_epsilon = 0.0;
    let mix = TenantMix::synthetic(knobs.tenants, 0);
    let result = with_threads(2, || fleet_simulate(&config, &mix));
    assert!(
        result.sched.preempted_deadline > 0,
        "an oversubscribed mapper with tight SLAs must deadline-preempt: {:?}",
        result.sched
    );
    assert_eq!(result.metrics.jobs, 240, "every request completes, preempted or not");
    assert_eq!(
        result.sched.admitted,
        result.sched.completed + result.sched.preemptions(),
        "every admitted session is accounted for exactly once"
    );
    assert_eq!(result.metrics.dispatch.dispatches as u64, result.sched.admitted);
    // A preempted session spent less than its budget, so the mean spent
    // samples across dispatches sit strictly below the cold budget.
    assert!(result.metrics.dispatch.cold_samples > 0);
}

/// Satellite regression: a group whose deadline is already past at
/// admission (possible under heavy batcher backlog) degrades gracefully —
/// clamped to the minimum slice, counted, preempted at its next selection —
/// and the run still completes every request without panicking.
#[test]
fn past_deadline_admissions_degrade_gracefully() {
    let knobs = test_knobs();
    let mut config = FleetConfig::from_knobs(&knobs, 1, Scenario::Bursty);
    config.requests = 240;
    // Brutal pressure: SLAs far tighter than one batch window, the mapper
    // heavily oversubscribed — late admissions are unavoidable.
    config.offered_load = knobs.offered_load * 2.0;
    config.sla_x = knobs.serve.sla_x / 20.0;
    config.policy = FleetPolicy::Deadline;
    config.mapper_pressure = 3.0;
    let mix = TenantMix::synthetic(knobs.tenants, 0);
    let result = fleet_simulate(&config, &mix);
    assert_eq!(result.metrics.jobs, 240, "no request is lost to a late admission");
    assert!(
        result.sched.late_admissions > 0,
        "this pressure must actually admit groups past their deadline: {:?}",
        result.sched
    );
    assert!(result.sched.min_slice_clamps > 0, "late sessions step at the floor slice");
    assert!(result.sched.preempted_deadline > 0, "and are then early-finished");
    let violations: usize = result.metrics.tenants.iter().map(|t| t.sla_violations).sum();
    assert!(violations > 0, "blown deadlines surface as SLA violations, not panics");
}

/// The fleet warm-restart contract: every shard persists its cache to
/// `<path>.shard<i>`, a restarted fleet reloads them and hits more than the
/// cold run — and restarts from the same persisted files are bit-identical
/// whatever `MAGMA_THREADS` says (shared tier, router and scheduler
/// counters included).
#[test]
fn a_persisted_fleet_cache_restart_is_warm_and_thread_invariant() {
    let knobs = test_knobs();
    let mix = TenantMix::synthetic(knobs.tenants, 0);
    let shards = 2;
    let dir = std::env::temp_dir();
    let tag = format!("magma_fleet_it_{}", std::process::id());
    let shard_file = |base: &std::path::Path, i: usize| {
        std::path::PathBuf::from(format!("{}.shard{i}", base.display()))
    };
    let seed_base = dir.join(format!("{tag}_seed"));
    for i in 0..shards {
        let _ = std::fs::remove_file(shard_file(&seed_base, i));
    }
    let mut config = FleetConfig::from_knobs(&knobs, shards, Scenario::Poisson);
    config.cache_path = Some(seed_base.clone());
    let cold = with_threads(2, || fleet_simulate(&config, &mix));
    let warm_run = |name: &str, threads: usize| {
        let base = dir.join(format!("{tag}_{name}"));
        for i in 0..shards {
            std::fs::copy(shard_file(&seed_base, i), shard_file(&base, i))
                .expect("the persisted shard caches copy");
        }
        let mut warm_config = config.clone();
        warm_config.cache_path = Some(base.clone());
        let result = with_threads(threads, || fleet_simulate(&warm_config, &mix));
        for i in 0..shards {
            let _ = std::fs::remove_file(shard_file(&base, i));
        }
        result
    };
    let warm_serial = warm_run("t1", 1);
    let warm_parallel = warm_run("t4", 4);
    for i in 0..shards {
        let _ = std::fs::remove_file(shard_file(&seed_base, i));
    }
    assert!(
        warm_serial.metrics.cache.hit_rate > cold.metrics.cache.hit_rate,
        "a fleet restart from persisted shard caches must hit more: warm {} vs cold {}",
        warm_serial.metrics.cache.hit_rate,
        cold.metrics.cache.hit_rate
    );
    assert_eq!(
        warm_serial, warm_parallel,
        "a reloaded fleet must reproduce identical results across MAGMA_THREADS"
    );
}

// ---------------------------------------------------------------------------
// Router placement invariants (proptest).
// ---------------------------------------------------------------------------

/// A distinct signature key per tag (64× size steps stay apart under the
/// 0.01-nat quantization used below).
fn key(tag: usize) -> SignatureKey {
    let job = Job::new(
        JobId(0),
        "m",
        0,
        LayerShape::FullyConnected { out_features: 64 * (tag + 1), in_features: 64 },
        4,
        TaskType::Recommendation,
    );
    quantize_signatures(&[job.signature()], 0.01)
}

/// Splitmix-style hash for deterministic pseudo-loads inside proptest cases.
fn mash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

proptest! {
    // Every admitted group lands on exactly one live (admissible) shard,
    // placement is a pure function of the op sequence, and the sticky
    // affinity/re-pin semantics match an explicit model.
    #[test]
    fn router_places_on_exactly_one_admissible_shard_deterministically(
        shards in 1usize..6,
        ops in proptest::collection::vec((0usize..12, 0u64..u64::MAX, 0u8..255), 1..60)
    ) {
        let run = |router: &mut ShardRouter| -> Result<Vec<usize>, TestCaseError> {
            let mut model: HashMap<SignatureKey, usize> = HashMap::new();
            let mut placements = Vec::with_capacity(ops.len());
            for &(tag, load_seed, mask) in &ops {
                let load: Vec<f64> =
                    (0..shards).map(|s| (mash(load_seed ^ s as u64) % 1000) as f64).collect();
                let mut admissible: Vec<bool> =
                    (0..shards).map(|s| mask & (1 << s) != 0).collect();
                if !admissible.iter().any(|&b| b) {
                    admissible = vec![true; shards];
                }
                let k = key(tag);
                let chosen = router.place(&k, &load, &admissible);
                // Exactly one live shard, and an admissible one.
                prop_assert!(chosen < shards);
                prop_assert!(admissible[chosen], "placed on an inadmissible shard");
                // Sticky affinity: an admissible pinned shard always wins;
                // otherwise the key re-pins to the chosen shard.
                match model.get(&k) {
                    Some(&pinned) if admissible[pinned] => {
                        prop_assert!(chosen == pinned, "affinity must be sticky")
                    }
                    _ => {
                        model.insert(k, chosen);
                    }
                }
                placements.push(chosen);
            }
            Ok(placements)
        };
        let first = run(&mut ShardRouter::new(shards))?;
        let second = run(&mut ShardRouter::new(shards))?;
        prop_assert!(first == second, "placement must be deterministic");
    }

    // Under uniform conditions — distinct keys, every shard admissible,
    // load reported as the router's own placement counts — no shard
    // starves: a whole number of rounds spreads exactly evenly.
    #[test]
    fn no_shard_starves_under_uniform_load(shards in 1usize..6, rounds in 1usize..8) {
        let mut router = ShardRouter::new(shards);
        for tag in 0..shards * rounds {
            let load: Vec<f64> = router.per_shard().iter().map(|&c| c as f64).collect();
            let admissible = vec![true; shards];
            router.place(&key(tag), &load, &admissible);
        }
        for (s, &count) in router.per_shard().iter().enumerate() {
            prop_assert!(
                count as usize == rounds,
                "shard {} got {} of {} placements", s, count, shards * rounds
            );
        }
        prop_assert_eq!(router.stats().placed as usize, shards * rounds);
        prop_assert!(router.stats().affinity_hits == 0, "distinct keys never hit affinity");
    }
}
