//! Whole-system regressions for the persistent work-stealing evaluation pool
//! (`magma_optim::pool`) and the per-(job, core) launch-cost memo
//! (`magma_m3e::CostMemo`).
//!
//! `tests/integration_parallel.rs` pins down *what* parallel evaluation
//! returns (bit-identical to serial, per optimizer). This suite pins down
//! *how*: one pool instance serves every batch at a given worker count
//! (builds stay flat while batches climb), changing the count rebuilds it
//! exactly once, nested batch evaluation from inside a pool chunk degrades
//! to serial instead of deadlocking, and the memoized evaluator is
//! bit-identical to the fresh one for arbitrary in-range genomes.
//!
//! The pool is process-global, and this binary's tests run concurrently by
//! default — every test that asserts on [`pool::stats`] counters or worker
//! counts serializes itself on [`POOL_LOCK`] (poisoning tolerated: an
//! earlier assertion failure must not cascade into unrelated tests).

mod common;

use common::problem;
use magma::m3e::{FitnessEvaluator, Mapping, MappingProblem};
use magma::optim::parallel::{evaluate_batch_with, with_threads, BatchEvaluator};
use magma::optim::pool;
use magma::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, MutexGuard};

static POOL_LOCK: Mutex<()> = Mutex::new(());

fn pool_lock() -> MutexGuard<'static, ()> {
    POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn outcome_bits(o: &SearchOutcome) -> (u64, Vec<usize>, Vec<u64>, Vec<u64>) {
    (
        o.best_fitness.to_bits(),
        o.best_mapping.accel_sel().to_vec(),
        o.history.samples().iter().map(|f| f.to_bits()).collect(),
        o.history.best_curve().iter().map(|f| f.to_bits()).collect(),
    )
}

/// One pool instance serves every generation of every search at a fixed
/// worker count — and the outcome is bit-identical at 1, 2, 4 and 64
/// workers, including heavy oversubscription of this host.
#[test]
fn searches_reuse_one_pool_and_match_serial_at_every_width() {
    let _guard = pool_lock();
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 10, 3);
    let search = |threads: usize| {
        with_threads(threads, || Magma::default().search(&p, 60, &mut StdRng::seed_from_u64(11)))
    };

    let serial = outcome_bits(&search(1));
    for threads in [2usize, 4, 64] {
        // Warm the pool at this width, then count builds across repeated
        // searches: batches must climb, builds must not.
        let first = outcome_bits(&search(threads));
        assert_eq!(first, serial, "outcome differs at {threads} workers");
        let before = pool::stats();
        assert_eq!(before.workers, threads - 1, "pool sized wrong at {threads} workers");
        for round in 0..2 {
            let again = outcome_bits(&search(threads));
            assert_eq!(again, serial, "round {round} at {threads} workers drifted");
        }
        let after = pool::stats();
        assert_eq!(
            after.builds, before.builds,
            "repeated searches at {threads} workers rebuilt the pool"
        );
        assert!(
            after.batches > before.batches,
            "repeated searches at {threads} workers never reached the pool"
        );
    }
}

/// Changing the resolved worker count (the `MAGMA_THREADS` knob, pinned here
/// via its `with_threads` test override) tears the old pool down and builds
/// one of exactly the new size — once, not per batch.
#[test]
fn changing_the_thread_count_rebuilds_the_pool_once() {
    let _guard = pool_lock();
    let p = ToyBatch { jobs: 6, accels: 3 };
    let pop = population(6, 3, 24, 5);

    with_threads(3, || p.evaluate_batch(&pop));
    let at3 = pool::stats();
    assert_eq!(at3.workers, 2, "3 resolved threads = caller + 2 pool workers");

    with_threads(5, || p.evaluate_batch(&pop));
    let at5 = pool::stats();
    assert_eq!(at5.workers, 4);
    assert_eq!(at5.builds, at3.builds + 1, "resize must rebuild exactly once");

    with_threads(5, || {
        for _ in 0..3 {
            p.evaluate_batch(&pop);
        }
    });
    assert_eq!(pool::stats().builds, at5.builds, "same width must never rebuild");
    assert_eq!(pool::stats().batches, at5.batches + 3);
}

/// A tiny always-cheap problem for pool-plumbing tests (the real M3E would
/// drown the counters in evaluation time).
struct ToyBatch {
    jobs: usize,
    accels: usize,
}

impl MappingProblem for ToyBatch {
    fn num_jobs(&self) -> usize {
        self.jobs
    }
    fn num_accels(&self) -> usize {
        self.accels
    }
    fn evaluate(&self, m: &Mapping) -> f64 {
        m.priority().iter().sum::<f64>() + m.accel_sel().iter().sum::<usize>() as f64
    }
}

/// A problem whose *single-candidate* evaluation itself fans an inner batch
/// out — the "pool inside pool" shape an optimizer nested inside a fitness
/// function would produce. Inner batches must degrade to serial on the
/// worker thread (never re-enter the pool), so this must neither deadlock
/// nor change results.
struct NestedBatch {
    inner: ToyBatch,
}

impl MappingProblem for NestedBatch {
    fn num_jobs(&self) -> usize {
        self.inner.jobs
    }
    fn num_accels(&self) -> usize {
        self.inner.accels
    }
    fn evaluate(&self, m: &Mapping) -> f64 {
        // Three perturbed copies, evaluated through the full batch oracle.
        let variants: Vec<Mapping> = (0..3)
            .map(|i| {
                let mut sel = m.accel_sel().to_vec();
                sel[0] = (sel[0] + i) % self.inner.accels;
                Mapping::new(sel, m.priority().to_vec(), self.inner.accels)
            })
            .collect();
        self.inner.evaluate_batch(&variants).iter().sum()
    }
}

fn population(jobs: usize, accels: usize, count: usize, seed: u64) -> Vec<Mapping> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| Mapping::random(&mut rng, jobs, accels)).collect()
}

#[test]
fn nested_batches_degrade_to_serial_instead_of_deadlocking() {
    let _guard = pool_lock();
    let p = NestedBatch { inner: ToyBatch { jobs: 5, accels: 3 } };
    let pop = population(5, 3, 40, 9);
    let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();
    for threads in [2usize, 4, 8] {
        let batch = evaluate_batch_with(&p, &pop, threads);
        assert_eq!(batch, serial, "nested evaluation at {threads} workers");
    }
    // And through the ambient-override path optimizers actually use.
    with_threads(4, || assert_eq!(p.evaluate_batch(&pop), serial));
}

/// The `with_threads` override (the test/harness stand-in for the
/// `MAGMA_THREADS` environment knob) is what actually sizes the pool.
#[test]
fn with_threads_override_reaches_the_pool() {
    let _guard = pool_lock();
    let p = ToyBatch { jobs: 4, accels: 2 };
    let pop = population(4, 2, 16, 1);
    for threads in [2usize, 6] {
        with_threads(threads, || p.evaluate_batch(&pop));
        assert_eq!(pool::stats().workers, threads - 1, "override {threads} ignored");
    }
}

// The launch-cost memo may only change speed: for arbitrary in-range
// genomes (not just `Mapping::random` outputs), every objective, and a
// shared evaluator reused across the whole population (warm memo), the
// memoized fitness must be bit-identical to the memo-free evaluator's.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn memoized_evaluator_matches_fresh_for_arbitrary_genes(
        genes in proptest::collection::vec(
            (proptest::collection::vec(0usize..4, 8..9),
             proptest::collection::vec(0.0f64..1.0, 8..9)),
            1..12,
        ),
        objective_sel in 0usize..4,
        seed in 0u64..500,
    ) {
        let objective = [
            Objective::Throughput,
            Objective::Latency,
            Objective::Energy,
            Objective::EnergyDelayProduct,
        ][objective_sel];
        let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 8, seed);
        let accels = p.num_accels();
        let memoized = FitnessEvaluator::new(p.table().clone(), 16.0, objective)
            .with_memoization(true);
        let fresh = FitnessEvaluator::new(p.table().clone(), 16.0, objective)
            .with_memoization(false);
        prop_assert!(memoized.memoized() && !fresh.memoized());
        for (sel, prio) in genes {
            let sel: Vec<usize> = sel.into_iter().map(|a| a % accels).collect();
            let m = Mapping::new(sel, prio, accels);
            prop_assert_eq!(memoized.fitness(&m).to_bits(), fresh.fitness(&m).to_bits());
        }
        // The population above actually exercised the memo.
        prop_assert!(memoized.memo().is_some_and(|memo| memo.filled() > 0));
    }
}
