//! Cross-crate optimizer tests on the real M3E problem (not the toy problem
//! used in unit tests): every mapper must produce valid mappings, respect the
//! budget and reproduce the paper's qualitative ordering on small instances.

mod common;

use common::problem;
use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Every mapper in Table IV runs on the real problem and returns a positive
/// throughput within the sampling budget.
#[test]
fn every_mapper_runs_on_the_real_problem() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 16, 0);
    for mapper in all_mappers() {
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = mapper.search(&p, 64, &mut rng);
        assert!(outcome.best_fitness > 0.0, "{} found nothing", mapper.name());
        assert!(outcome.history.num_samples() <= 64, "{} exceeded the budget", mapper.name());
        assert_eq!(outcome.best_mapping.num_jobs(), 16, "{}", mapper.name());
    }
}

/// MAGMA beats the standard GA at the same budget on a heterogeneous,
/// bandwidth-constrained instance (the paper's central sample-efficiency
/// claim, Fig. 9 / Fig. 16).
#[test]
fn magma_beats_stdga_on_heterogeneous_instance() {
    let p = problem(Setting::S2, TaskType::Mix, Some(1.0), 40, 3);
    let budget = 1_200;
    let magma = Magma::default().search(&p, budget, &mut StdRng::seed_from_u64(0));
    let stdga =
        magma::optim::stdga::StdGa::default().search(&p, budget, &mut StdRng::seed_from_u64(0));
    assert!(
        magma.best_fitness >= stdga.best_fitness,
        "MAGMA {} < stdGA {}",
        magma.best_fitness,
        stdga.best_fitness
    );
}

/// MAGMA beats both manual mappers on the heterogeneous Mix instance
/// (Fig. 9b: geomean 2.3x over Herald-like, 39x over AI-MT-like).
#[test]
fn magma_beats_manual_mappers_on_heterogeneous_mix() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 40, 1);
    let magma = Magma::default().search(&p, 1_500, &mut StdRng::seed_from_u64(2));
    let herald = HeraldLike::new().search(&p, 1, &mut StdRng::seed_from_u64(2));
    let aimt = AiMtLike::new().search(&p, 1, &mut StdRng::seed_from_u64(2));
    assert!(magma.best_fitness > herald.best_fitness);
    assert!(magma.best_fitness > aimt.best_fitness);
    // And the heterogeneity-blind AI-MT-like trails Herald-like.
    assert!(herald.best_fitness > aimt.best_fitness);
}

/// The full-operator MAGMA is at least as sample-efficient as the
/// mutation-only ablation at a modest budget (Fig. 16).
#[test]
fn operator_ablation_ordering_holds_on_real_problem() {
    let p = problem(Setting::S2, TaskType::Vision, Some(16.0), 30, 4);
    let budget = 600;
    let full =
        Magma::with_operators(OperatorSet::all()).search(&p, budget, &mut StdRng::seed_from_u64(5));
    let mut_only = Magma::with_operators(OperatorSet::mutation_only()).search(
        &p,
        budget,
        &mut StdRng::seed_from_u64(5),
    );
    assert!(full.best_fitness >= mut_only.best_fitness * 0.98);
}

/// Warm start transfers knowledge across groups of the same task type
/// (Table V): both adaptation paths beat the average random mapping, and the
/// profile-matched path is available whenever signatures were recorded.
#[test]
fn warm_start_transfers_across_groups() {
    let task = TaskType::Recommendation;
    let p0 = problem(Setting::S2, task, Some(16.0), 24, 10);
    let mut engine = WarmStartEngine::new();
    let base = Magma::default().search(&p0, 800, &mut StdRng::seed_from_u64(0));
    engine.record_profiled(task, base.best_mapping.clone(), p0.signatures().to_vec());

    // A fresh group of the same task.
    let p1 = problem(Setting::S2, task, Some(16.0), 24, 77);
    let wrapped = p1.evaluate(&engine.adapt(task, 24, 4).unwrap());
    let matched = p1.evaluate(&engine.adapt_matched(task, p1.signatures(), 4).unwrap());

    // Average random mapping as the "Raw" reference.
    let mut rng = StdRng::seed_from_u64(1);
    let raw: f64 =
        (0..20).map(|_| p1.evaluate(&Mapping::random(&mut rng, 24, 4))).sum::<f64>() / 20.0;
    assert!(wrapped > raw, "index-wrapped {wrapped} should beat the random average {raw}");
    assert!(matched > raw, "profile-matched {matched} should beat the random average {raw}");
}

/// The search history is consistent: monotone best curve whose final value
/// matches the reported best fitness.
#[test]
fn history_is_consistent_for_all_mappers() {
    let p = problem(Setting::S1, TaskType::Vision, Some(16.0), 12, 2);
    for mapper in all_mappers() {
        let mut rng = StdRng::seed_from_u64(3);
        let o = mapper.search(&p, 40, &mut rng);
        let curve = o.history.best_curve();
        assert!(curve.windows(2).all(|w| w[1] >= w[0]), "{}", mapper.name());
        assert_eq!(*curve.last().unwrap(), o.best_fitness, "{}", mapper.name());
    }
}
