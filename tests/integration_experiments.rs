//! Reduced-scale runs of the experiment harness: every figure/table
//! reproduction function executes end-to-end and reproduces the paper's
//! qualitative trends.

use magma::experiments;
use magma::prelude::*;

const GS: usize = 16;
const BUDGET: usize = 200;

/// Fig. 7: vision jobs are compute-heavy / bandwidth-light, recommendation
/// jobs the opposite; HB is faster but hungrier than LB on language.
#[test]
fn fig7_trends() {
    let (rows, averages) = experiments::fig7_job_analysis(4);
    assert_eq!(rows.len(), 9);
    let vision = &averages[0];
    let lang = &averages[1];
    let recom = &averages[2];
    assert!(vision.hb_latency_cycles > recom.hb_latency_cycles);
    assert!(recom.hb_bw_gbps > vision.hb_bw_gbps);
    assert!(lang.hb_latency_cycles < vision.hb_latency_cycles);
    for r in &rows {
        assert!(r.hb_latency_cycles < r.lb_latency_cycles * 1.5, "{}", r.model);
    }
}

/// Fig. 8: on the small homogeneous accelerator every mapper lands in the
/// same ballpark and MAGMA is the reference (normalized 1.0).
#[test]
fn fig8_homogeneous_comparison_runs() {
    let scores =
        experiments::compare_all_mappers(Setting::S1, TaskType::Vision, Some(16.0), GS, BUDGET, 0);
    assert_eq!(scores.len(), 10);
    let magma = scores.iter().find(|s| s.method == "MAGMA").unwrap();
    assert!((magma.normalized - 1.0).abs() < 1e-9);
    // MAGMA is never (meaningfully) beaten on its own reference instance.
    for s in &scores {
        assert!(s.normalized <= 1.2, "{} at {}", s.method, s.normalized);
    }
}

/// Fig. 9 (reduced): on a heterogeneous accelerator the AI-MT-like mapper
/// falls far behind MAGMA, Herald-like stays closer.
#[test]
fn fig9_heterogeneous_gap() {
    let scores =
        experiments::compare_all_mappers(Setting::S2, TaskType::Mix, Some(16.0), 32, 600, 1);
    let get = |name: &str| scores.iter().find(|s| s.method == name).unwrap().normalized;
    assert!(get("AI-MT-like") < get("MAGMA"));
    assert!(get("AI-MT-like") < get("Herald-like"));
}

/// Fig. 12 (reduced): MAGMA's advantage over the manual mapper does not
/// shrink when bandwidth becomes scarce.
#[test]
fn fig12_bw_sweep_trend() {
    let rows = experiments::bw_sweep(Setting::S2, TaskType::Mix, &[1.0, 16.0], 24, 400, 2);
    assert_eq!(rows.len(), 2);
    let herald_at =
        |i: usize| rows[i].1.iter().find(|s| s.method == "Herald-like").unwrap().normalized;
    // Herald-like relative performance at 1 GB/s is no better than at 16 GB/s.
    assert!(herald_at(0) <= herald_at(1) * 1.1);
}

/// Fig. 13 (reduced): with ample bandwidth the homogeneous S3 wins; the
/// job analysis shows S4 requiring less bandwidth than S3.
#[test]
fn fig13_combination_trends() {
    let rows = experiments::subaccel_combination_study(TaskType::Mix, &[64.0], 24, 400, 3);
    assert_eq!(rows.len(), 3);
    let s3 = rows.iter().find(|r| r.setting == "S3").unwrap();
    let s4 = rows.iter().find(|r| r.setting == "S4").unwrap();
    let s5 = rows.iter().find(|r| r.setting == "S5").unwrap();
    // S4 (heterogeneous) needs less average BW than S3. Its LB core also
    // *lowers* the per-(job, core) average no-stall latency: the HB
    // weight-stationary mapping is poorly utilized on the channel-light
    // early conv layers that dominate the mean, while LB's row-stationary
    // mapping handles them well (the same asymmetry Fig. 7 shows per task).
    assert!(s4.avg_required_bw_gbps < s3.avg_required_bw_gbps);
    assert!(s4.avg_no_stall_cycles < s3.avg_no_stall_cycles);
    // BigLittle has the smallest BW appetite of the three.
    assert!(s5.avg_required_bw_gbps < s3.avg_required_bw_gbps);
}

/// Fig. 14 (reduced): flexible arrays do not lose to fixed arrays.
#[test]
fn fig14_flexible_not_worse() {
    let row = experiments::flexible_vs_fixed(Setting::S1, TaskType::Vision, 16.0, GS, BUDGET, 0);
    assert!(row.flexible_gflops >= row.fixed_gflops * 0.9);
}

/// Fig. 15 (reduced): MAGMA's schedule finishes no later than Herald-like's
/// on a bandwidth-starved heterogeneous instance.
#[test]
fn fig15_schedule_comparison() {
    let cmp = experiments::schedule_comparison(Setting::S5, TaskType::Mix, 1.0, 24, 600, 0);
    assert!(cmp.magma_finish_sec <= cmp.herald_finish_sec * 1.02);
    assert!(cmp.magma_gantt.lines().count() >= 8);
}

/// Fig. 16 (reduced): adding the crossover operators never hurts the final
/// best found at the same budget.
#[test]
fn fig16_ablation_runs() {
    let curves =
        experiments::operator_ablation(Setting::S2, TaskType::Vision, Some(16.0), 24, 400, 10, 0);
    assert_eq!(curves.len(), 3);
    let final_of = |i: usize| curves[i].points.last().unwrap().1;
    assert!(final_of(2) >= final_of(0) * 0.95);
}

/// Fig. 17 (reduced): throughput is not drastically affected by group size,
/// but tiny groups lose.
#[test]
fn fig17_group_size_sweep() {
    let rows =
        experiments::group_size_sweep(Setting::S2, TaskType::Mix, Some(16.0), &[4, 20, 40], 500, 0);
    assert_eq!(rows.len(), 3);
    let tiny = rows[0].1;
    let large = rows[2].1;
    assert!(large >= tiny * 0.8, "tiny {tiny}, large {large}");
}

/// Section IV-F: the search-space size for the paper's example is ~1e81.
#[test]
fn search_space_size_matches_paper() {
    let log = experiments::search_space_log10(60, 4);
    assert!((log - 81.0).abs() < 1.5);
}

/// Table V (reduced): the profile-matched warm start carries the paper's
/// transfer claim on *both* regimes — the transferred solution (Trf-0-ep)
/// beats a full random epoch on the compute-bound vision instance as well as
/// the bandwidth-bound language instance, before any further search.
#[test]
fn table5_warm_start_reduced() {
    // Compute-bound regime: vision jobs at ample bandwidth (this is exactly
    // where index-wrapped adaptation used to lose to a random epoch).
    let vision = experiments::warm_start_study(Setting::S2, TaskType::Vision, Some(16.0), 16, 1, 0);
    assert_eq!(vision.len(), 2);
    let warm = &vision[1];
    assert!(
        warm.transfer_0_epoch >= warm.raw,
        "vision: Trf-0-ep {} below the random epoch {}",
        warm.transfer_0_epoch,
        warm.raw
    );
    assert!(warm.transfer_1_epoch >= warm.transfer_0_epoch * 0.99);
    assert!(warm.transfer_30_epoch <= 1.05);
    assert_eq!(warm.transfer_100_epoch, 1.0);

    // Bandwidth-bound regime: language jobs, where the BW allocator dominates.
    let lang = experiments::warm_start_study(Setting::S2, TaskType::Language, Some(16.0), 16, 1, 0);
    let warm = &lang[1];
    assert!(
        warm.transfer_0_epoch >= warm.raw,
        "language: Trf-0-ep {} below the random epoch {}",
        warm.transfer_0_epoch,
        warm.raw
    );
    // The transferred mapping still recovers ≥90% of the fully re-optimized
    // throughput before any new search (Table V's Trf-0-ep column).
    assert!(warm.transfer_0_epoch >= 0.9, "Trf-0-ep {} too low", warm.transfer_0_epoch);
    assert!(warm.transfer_1_epoch >= warm.transfer_0_epoch * 0.99);
    assert_eq!(warm.transfer_100_epoch, 1.0);
}
