//! Shared reduced-scale instance setup for the integration suites.
//!
//! Every suite needs "a small real M3E problem on setting X": one group of
//! `n` jobs of one task category, a Table III platform at an explicit or
//! default bandwidth, throughput objective. This helper is the single copy
//! of that setup (it used to be re-declared per suite).

// Each integration test target compiles this module independently and none
// uses every helper, so dead-code analysis is per-target noise here.
#![allow(dead_code)]

use magma::prelude::*;

/// Builds a reduced-scale M3E problem: `n` jobs of `task` on `setting`, at
/// `bw` GB/s (or the setting's Table III default when `None`), optimizing
/// throughput. `seed` controls workload generation.
pub fn problem(setting: Setting, task: TaskType, bw: Option<f64>, n: usize, seed: u64) -> M3e {
    let group = WorkloadSpec::single_group(task, n, seed);
    let platform = match bw {
        Some(bw) => settings::build(setting).with_system_bw_gbps(bw),
        None => settings::build(setting),
    };
    M3e::new(platform, group, Objective::Throughput)
}
