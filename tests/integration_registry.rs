//! Registry ↔ hardcoded equivalence suite (CI tier-1).
//!
//! The scenario registry re-expresses the hardcoded experiment space as
//! committed JSON files; this suite locks down that the two paths cannot
//! drift apart:
//!
//! * the **committed** `scenarios/` tree parses, validates and still equals
//!   the builtin definition constructors file-for-file (the tree is
//!   generated, never hand-edited);
//! * registry-resolved S1–S6 platforms are **bit-identical** to
//!   `magma_platform::settings::build`;
//! * registry-resolved mixes produce **bit-identical trace event streams**
//!   to the hardcoded `TenantMix` constructors under every arrival process;
//! * registry-run serving scenarios produce **bit-identical `BENCH`
//!   scenario blocks** to the hardcoded ladder at the same knobs, for all
//!   three arrival scenarios;
//! * the generated sweep stays wide enough for the acceptance criteria
//!   (≥ 20 generated scenarios, a 64-core asymmetric-BW mesh, a flash-crowd
//!   trace) and a generated scenario actually runs end to end.

use std::path::PathBuf;

use magma_model::{zoo, TaskType, TenantMix};
use magma_platform::settings::{self, ServeKnobs};
use magma_platform::Setting;
use magma_registry::{builtin, gen, Registry};
use magma_serve::report::{run_custom_scenario, run_standard_scenarios};
use magma_serve::trace::{generate_trace, Scenario, TraceParams};

/// The committed registry tree, independent of the test CWD.
fn committed_tree() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn committed_registry() -> Registry {
    Registry::load_dir(&committed_tree()).expect("the committed scenarios/ tree validates")
}

/// Knobs small enough for an equivalence run, deterministic and
/// env-independent.
fn tiny_knobs() -> ServeKnobs {
    ServeKnobs {
        requests: 32,
        group_target: 8,
        cold_budget: 30,
        refine_budget: 3,
        ..ServeKnobs::smoke()
    }
}

#[test]
fn committed_tree_matches_builtin_definitions() {
    let registry = committed_registry();
    // Platforms: the six Table III rows, byte-equal as parsed definitions.
    for setting in Setting::ALL {
        let committed = registry
            .platform(&setting.to_string())
            .unwrap_or_else(|| panic!("{setting} missing from the committed tree"));
        assert_eq!(committed, &builtin::platform_def_for(setting), "{setting} drifted");
    }
    // Mixes and traffic scenarios likewise.
    for def in builtin::builtin_mix_defs() {
        assert_eq!(registry.mix(&def.name), Some(&def), "mix {} drifted", def.name);
    }
    for def in builtin::builtin_scenario_defs() {
        assert_eq!(registry.scenario(&def.name), Some(&def), "scenario {} drifted", def.name);
    }
    // Generated definitions too: the committed tree is exactly what
    // `scenario_gen` would write today.
    for def in gen::generated_platform_defs() {
        assert_eq!(registry.platform(&def.name), Some(&def), "platform {} drifted", def.name);
    }
    for def in gen::generated_mix_defs() {
        assert_eq!(registry.mix(&def.name), Some(&def), "mix {} drifted", def.name);
    }
    for def in gen::generated_scenario_defs() {
        assert_eq!(registry.scenario(&def.name), Some(&def), "scenario {} drifted", def.name);
    }
}

#[test]
fn registry_platforms_are_bit_identical_to_hardcoded_settings() {
    let registry = committed_registry();
    for setting in Setting::ALL {
        let built = registry.build_platform(&setting.to_string()).expect("registered");
        assert_eq!(built, settings::build(setting), "{setting} build drifted");
    }
}

#[test]
fn registry_mixes_are_bit_identical_to_hardcoded_mixes() {
    let registry = committed_registry();
    let standard = registry.mix("standard").expect("standard mix").build().expect("builds");
    assert_eq!(standard, TenantMix::standard());
    let repeated = registry.mix("repeated_tenant").expect("repeated mix").build().expect("builds");
    assert_eq!(
        repeated,
        TenantMix::single("recommendation", TaskType::Recommendation, vec![zoo::ncf()])
    );
}

#[test]
fn registry_mixes_generate_bit_identical_trace_streams() {
    let registry = committed_registry();
    let registry_standard = registry.mix("standard").unwrap().build().unwrap();
    let hardcoded = TenantMix::standard();
    // Same mix ⇒ same arrival stream under every arrival process.
    for scenario in [Scenario::Poisson, Scenario::Bursty, Scenario::Drift] {
        let params = TraceParams {
            scenario,
            requests: 64,
            mean_interarrival_sec: 250e-6,
            mini_batch: 4,
            seed: 42,
        };
        assert_eq!(
            generate_trace(&params, &registry_standard),
            generate_trace(&params, &hardcoded),
            "{scenario:?} trace stream drifted"
        );
    }
}

/// The headline equivalence: running the registry's committed scenario
/// files produces bit-identical `BENCH` scenario blocks to the hardcoded
/// ladder at the same knobs — for all four ladder entries, covering all
/// three arrival scenarios, in both serving modes.
#[test]
fn registry_scenarios_reproduce_the_hardcoded_bench_output() {
    let registry = committed_registry();
    let knobs = tiny_knobs();
    // smoke=false so the builtin ladder includes bursty_mix and drift_mix.
    let builtin_report = run_standard_scenarios(&knobs, false);
    for name in ["poisson_mix", "repeated_tenant", "bursty_mix", "drift_mix"] {
        let resolved = registry.resolve(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let custom_report = run_custom_scenario(&knobs, false, &resolved.custom());
        assert_eq!(custom_report.scenario_descriptor.source, "registry");
        for (ladder, custom_ladder, mode) in [
            (&builtin_report.scenarios, &custom_report.scenarios, "primary"),
            (&builtin_report.baseline_scenarios, &custom_report.baseline_scenarios, "baseline"),
        ] {
            let builtin_block = ladder
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("builtin ladder misses {name}"));
            assert_eq!(custom_ladder.len(), 1, "{name}: one scenario per registry report");
            // Bit-identical serialized scenario block — metrics, latency
            // percentiles, cache counters, everything.
            assert_eq!(
                serde_json::to_string(&custom_ladder[0]).unwrap(),
                serde_json::to_string(builtin_block).unwrap(),
                "{name} ({mode} mode) BENCH block drifted from the hardcoded ladder"
            );
        }
    }
}

#[test]
fn generated_sweep_spans_the_acceptance_space() {
    let registry = committed_registry();
    let generated: Vec<String> = registry
        .scenario_names()
        .into_iter()
        .filter(|n| {
            !["poisson_mix", "repeated_tenant", "bursty_mix", "drift_mix"].contains(&n.as_str())
        })
        .collect();
    assert!(generated.len() >= 20, "only {} generated scenarios committed", generated.len());
    // The acceptance endpoints: a 64-core asymmetric-BW mesh and a
    // flash-crowd trace, committed and resolvable.
    let mesh = registry.platform("dc-mesh64-asymbw").expect("64-core mesh committed");
    assert_eq!(mesh.core_count(), 64);
    let flash = registry
        .resolve("dc-mesh64-asymbw-flash-crowd")
        .expect("flash-crowd scenario on the 64-core mesh resolves");
    assert_eq!(flash.scenario, Scenario::Bursty);
    assert_eq!(flash.platform.num_sub_accels(), 64);
}

/// A generated scenario actually runs end to end (small trace) and embeds
/// its registry descriptor in a validating report.
#[test]
fn generated_scenario_runs_end_to_end() {
    let registry = committed_registry();
    let resolved = registry.resolve("edge-duo-steady").expect("resolves");
    let mut knobs = tiny_knobs();
    knobs.requests = 16;
    let report = run_custom_scenario(&knobs, true, &resolved.custom());
    report.validate().expect("registry report validates");
    assert_eq!(report.scenario_descriptor.source, "registry");
    assert_eq!(report.scenario_descriptor.name, "edge-duo-steady");
    assert_eq!(report.scenarios.len(), 1);
    assert_eq!(report.scenarios[0].metrics.jobs, 16);
    // The generated scenario pinned its offered load (0.7) in the file.
    let resolved_load = resolved.offered_load.expect("steady profile pins its load");
    assert!((resolved_load - 0.7).abs() < 1e-12);
}

/// `--scenario <file>` path resolution: a scenario file resolves against
/// the registry named by `MAGMA_SCENARIO_DIR`.
#[test]
fn scenario_files_resolve_via_the_env_registry_root() {
    std::env::set_var("MAGMA_SCENARIO_DIR", committed_tree());
    let file = committed_tree().join("generated/traffic/dc-mesh64-asymbw-flash-crowd.json");
    let resolved = magma_registry::resolve_scenario_file(&file)
        .unwrap_or_else(|e| panic!("scenario file resolves: {e}"));
    assert_eq!(resolved.name, "dc-mesh64-asymbw-flash-crowd");
    assert_eq!(resolved.platform.num_sub_accels(), 64);
    assert!(resolved.descriptor.validate().is_ok());
    std::env::remove_var("MAGMA_SCENARIO_DIR");
}
