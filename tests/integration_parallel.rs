//! Parallel-vs-serial determinism regressions: parallel batch evaluation
//! (`magma_optim::parallel`) may only change wall-clock time, never results.
//!
//! For every optimizer of Table IV the full [`SearchOutcome`] — best
//! fitness, best mapping genes, the per-sample fitness sequence and the
//! convergence curve — must be **bit-identical** between `MAGMA_THREADS=1`
//! and `MAGMA_THREADS=4` at a fixed seed. The suite pins the worker count
//! with [`magma::optim::parallel::with_threads`] (the same override the env
//! knob feeds into) so concurrently running tests cannot race on the
//! process environment.

mod common;

use common::problem;
use magma::optim::parallel::{evaluate_batch_with, with_threads, BatchEvaluator};
use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs one optimizer at a pinned worker count with a fresh, identically
/// seeded RNG.
fn run_at(mapper: &dyn Optimizer, p: &M3e, budget: usize, threads: usize) -> SearchOutcome {
    with_threads(threads, || mapper.search(p, budget, &mut StdRng::seed_from_u64(7)))
}

/// Asserts two outcomes are bit-identical, down to every recorded sample.
fn assert_identical(name: &str, serial: &SearchOutcome, parallel: &SearchOutcome) {
    assert_eq!(
        serial.best_fitness.to_bits(),
        parallel.best_fitness.to_bits(),
        "{name}: best fitness differs ({} vs {})",
        serial.best_fitness,
        parallel.best_fitness
    );
    assert_eq!(serial.best_mapping, parallel.best_mapping, "{name}: best mapping genes differ");
    assert_eq!(
        serial.history.num_samples(),
        parallel.history.num_samples(),
        "{name}: sample counts differ"
    );
    let bits = |xs: &[f64]| xs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(serial.history.samples()),
        bits(parallel.history.samples()),
        "{name}: per-sample fitness sequence differs"
    );
    assert_eq!(
        bits(serial.history.best_curve()),
        bits(parallel.history.best_curve()),
        "{name}: convergence curve differs"
    );
}

/// Every Table IV optimizer produces a bit-identical outcome at 1 and 4
/// worker threads on a real heterogeneous instance.
#[test]
fn all_table_iv_mappers_identical_at_1_and_4_threads() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 12, 0);
    for mapper in all_mappers() {
        let serial = run_at(mapper.as_ref(), &p, 70, 1);
        let parallel = run_at(mapper.as_ref(), &p, 70, 4);
        assert_identical(mapper.name(), &serial, &parallel);
    }
}

/// Random search (the Fig. 10 reference sampler, not part of
/// [`all_mappers`]) holds the same guarantee, across its internal batch
/// boundary (its sampling batch is 1024).
#[test]
fn random_search_identical_at_1_and_4_threads() {
    let p = problem(Setting::S1, TaskType::Vision, Some(16.0), 10, 1);
    let mapper = RandomSearch::new();
    let serial = run_at(&mapper, &p, 1_100, 1);
    let parallel = run_at(&mapper, &p, 1_100, 4);
    assert_identical(mapper.name(), &serial, &parallel);
}

/// Oversubscription far beyond the batch size is also bit-stable (more
/// workers than mappings must clamp, not skew).
#[test]
fn oversubscribed_worker_count_is_identical_too() {
    let p = problem(Setting::S2, TaskType::Language, Some(16.0), 8, 2);
    let mapper = Magma::default();
    let serial = run_at(&mapper, &p, 60, 1);
    let parallel = run_at(&mapper, &p, 60, 64);
    assert_identical("MAGMA@64", &serial, &parallel);
}

/// The raw batch oracle agrees with the serial oracle bit-for-bit on a real
/// problem, at every worker count and through the trait-object path the
/// optimizers use.
#[test]
fn evaluate_batch_matches_serial_oracle_on_real_problem() {
    let p = problem(Setting::S4, TaskType::Mix, None, 16, 3);
    let mut rng = StdRng::seed_from_u64(5);
    let pop: Vec<Mapping> = (0..33).map(|_| Mapping::random(&mut rng, 16, 8)).collect();
    let serial: Vec<f64> = pop.iter().map(|m| p.evaluate(m)).collect();
    for threads in [1, 2, 3, 4, 16] {
        let batch = evaluate_batch_with(&p, &pop, threads);
        assert_eq!(batch.len(), serial.len());
        for (i, (b, s)) in batch.iter().zip(&serial).enumerate() {
            assert_eq!(b.to_bits(), s.to_bits(), "mapping {i} at {threads} threads");
        }
    }
    let dynamic: &dyn MappingProblem = &p;
    let via_trait = with_threads(4, || dynamic.evaluate_batch(&pop));
    assert_eq!(via_trait, serial);
}

/// The warm-start path (seeded initial population) keeps the guarantee:
/// epoch-for-epoch identical refinement regardless of the worker count.
#[test]
fn warm_started_magma_identical_across_thread_counts() {
    let p = problem(Setting::S2, TaskType::Recommendation, Some(16.0), 10, 4);
    let mut rng = StdRng::seed_from_u64(11);
    let seeds: Vec<Mapping> = (0..4).map(|_| Mapping::random(&mut rng, 10, 4)).collect();
    let mapper = Magma::with_warm_start(seeds);
    let serial = run_at(&mapper, &p, 80, 1);
    let parallel = run_at(&mapper, &p, 80, 4);
    assert_identical("MAGMA warm-start", &serial, &parallel);
}
