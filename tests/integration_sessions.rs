//! The session-stepping invariant, locked for every Table IV algorithm:
//! driving a [`SearchSession`] in budget slices of **any** size produces a
//! [`SearchOutcome`] bit-identical to the one-shot [`Optimizer::search`] at
//! the same total budget — same best fitness (to the bit), same best
//! mapping genes, same per-sample fitness sequence and convergence curve —
//! at every worker-thread count.
//!
//! This is the contract the serving layer's overlap mode is built on: if
//! slicing changed any result, interleaving search with execution would
//! trade mapping quality for latency; because it holds, overlap mode is a
//! pure scheduling win.

mod common;

use common::problem;
use magma::optim::parallel::with_threads;
use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const BUDGET: usize = 70;
const SEED: u64 = 7;

/// Drives a fresh session over `p` in slices of `slice` samples until
/// `budget` is spent (or the optimizer is exhausted), checking the step
/// accounting along the way.
fn run_sliced(mapper: &dyn Optimizer, p: &M3e, budget: usize, slice: usize) -> SearchOutcome {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut session = mapper.start(p, &mut rng);
    assert_eq!(session.spent(), 0, "{}: nothing is evaluated before the first step", mapper.name());
    assert!(session.best().is_none(), "{}: no best before the first step", mapper.name());
    loop {
        let remaining = budget - session.spent();
        if remaining == 0 {
            break;
        }
        let report = session.step(slice.min(remaining));
        assert!(report.spent <= slice.min(remaining), "{}: overspent slice", mapper.name());
        assert_eq!(report.total_spent, session.spent(), "{}: accounting drift", mapper.name());
        if report.spent == 0 {
            break;
        }
        let (_, best_fit) = session.best().expect("a sample was evaluated");
        assert_eq!(Some(best_fit), report.best_fitness, "{}: best mismatch", mapper.name());
    }
    session.finish()
}

fn assert_identical(
    name: &str,
    slice: usize,
    threads: usize,
    a: &SearchOutcome,
    b: &SearchOutcome,
) {
    let tag = format!("{name} (slice {slice}, {threads} threads)");
    assert_eq!(a.best_fitness.to_bits(), b.best_fitness.to_bits(), "{tag}: best fitness differs");
    assert_eq!(a.best_mapping, b.best_mapping, "{tag}: best mapping genes differ");
    let bits = |xs: &[f64]| xs.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(a.history.samples()),
        bits(b.history.samples()),
        "{tag}: per-sample fitness sequence differs"
    );
    assert_eq!(
        bits(a.history.best_curve()),
        bits(b.history.best_curve()),
        "{tag}: convergence curve differs"
    );
}

/// Every algorithm of [`Algorithm::ALL`] (the 10 Table IV mappers plus
/// Random) reproduces its one-shot outcome when stepped at slice sizes
/// 1, 7 and the whole budget, under 1 and 4 evaluation workers.
#[test]
fn sessions_reproduce_one_shot_outcomes_at_any_slice_size() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 12, 0);
    for algorithm in Algorithm::ALL {
        let mapper = algorithm.build();
        let reference =
            with_threads(1, || mapper.search(&p, BUDGET, &mut StdRng::seed_from_u64(SEED)));
        for threads in [1usize, 4] {
            for slice in [1usize, 7, BUDGET] {
                let sliced =
                    with_threads(threads, || run_sliced(mapper.as_ref(), &p, BUDGET, slice));
                assert_identical(mapper.name(), slice, threads, &reference, &sliced);
            }
        }
    }
}

/// The seeded-refinement session (`Magma::refine_session`, the serving
/// layer's cache-hit path) holds the same invariant against the one-call
/// `Magma::refine`.
#[test]
fn refine_sessions_reproduce_one_shot_refinement() {
    let p = problem(Setting::S2, TaskType::Recommendation, Some(16.0), 10, 4);
    let mut seed_rng = StdRng::seed_from_u64(11);
    let seeds: Vec<Mapping> = (0..4).map(|_| Mapping::random(&mut seed_rng, 10, 4)).collect();
    let magma = Magma::default();
    for budget in [1usize, 5, 40] {
        let reference = magma.refine(&p, seeds.clone(), budget, &mut StdRng::seed_from_u64(SEED));
        for slice in [1usize, 3, budget] {
            let mut rng = StdRng::seed_from_u64(SEED);
            let mut session = magma.refine_session(&p, seeds.clone(), &mut rng);
            loop {
                let remaining = budget - session.spent();
                if remaining == 0 {
                    break;
                }
                if session.step(slice.min(remaining)).spent == 0 {
                    break;
                }
            }
            let sliced = session.finish();
            assert_identical("MAGMA refine", slice, 1, &reference, &sliced);
        }
    }
}

/// A session is resumable across arbitrarily interleaved step calls: mixing
/// slice sizes mid-run (as the serving simulator's event loop does) is just
/// as bit-identical as a uniform slicing.
#[test]
fn mixed_slice_sizes_are_bit_identical_too() {
    let p = problem(Setting::S2, TaskType::Language, Some(16.0), 8, 2);
    let mapper = Magma::default();
    let reference = mapper.search(&p, 60, &mut StdRng::seed_from_u64(3));
    let mut rng = StdRng::seed_from_u64(3);
    let mut session = mapper.start(&p, &mut rng);
    // 60 = 1 + 9 + 2 + 17 + 31, deliberately straddling the generation
    // boundaries of the 16-strong population.
    for slice in [1usize, 9, 2, 17, 31] {
        let report = session.step(slice);
        assert_eq!(report.spent, slice);
    }
    assert_eq!(session.spent(), 60);
    let sliced = session.finish();
    assert_identical("MAGMA", 0, 1, &reference, &sliced);
}

/// The early-finish (preemption) contract the fleet scheduler is built on:
/// a session abandoned part-way through its budget still yields a valid
/// outcome, bit-identical to the one-shot search at the *spent* budget —
/// whether the cut lands mid-generation (19 is no multiple of any population
/// here) or on a generation boundary (24 = two 12-strong MAGMA generations).
#[test]
fn early_finish_matches_one_shot_at_the_spent_budget() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 12, 0);
    for algorithm in
        [Algorithm::Magma, Algorithm::StdGa, Algorithm::De, Algorithm::Pso, Algorithm::CmaEs]
    {
        let mapper = algorithm.build();
        for spent in [19usize, 24] {
            let reference =
                with_threads(1, || mapper.search(&p, spent, &mut StdRng::seed_from_u64(SEED)));
            let mut rng = StdRng::seed_from_u64(SEED);
            let mut session = mapper.start(&p, &mut rng);
            // Two uneven steps, then abandon far short of the nominal
            // 70-sample budget — exactly what a deadline preemption does.
            assert_eq!(session.step(spent - 7).spent, spent - 7, "{}", mapper.name());
            assert_eq!(session.step(7).spent, 7, "{}", mapper.name());
            assert_eq!(session.spent(), spent, "{}", mapper.name());
            let preempted = session.finish();
            assert_eq!(preempted.history.num_samples(), spent, "{}", mapper.name());
            assert_identical(mapper.name(), spent, 1, &reference, &preempted);
        }
    }
}

/// Finishing a session that never evaluated a single sample panics — there
/// is no mapping to return. This is why every preemption site (the fleet's
/// `SessionScheduler` included) must guard on `spent() > 0` before an early
/// `finish()`.
#[test]
#[should_panic(expected = "at least one mapping")]
fn finishing_an_unstepped_session_panics() {
    let p = problem(Setting::S2, TaskType::Mix, Some(16.0), 8, 0);
    let mapper = Algorithm::Magma.build();
    let mut rng = StdRng::seed_from_u64(0);
    let session = mapper.start(&p, &mut rng);
    let _ = session.finish();
}

/// One-shot heuristics expose the exhaustion contract: the first step spends
/// their single sample, every later step reports zero.
#[test]
fn heuristic_sessions_report_exhaustion() {
    let p = problem(Setting::S2, TaskType::Vision, Some(16.0), 8, 1);
    for algorithm in [Algorithm::HeraldLike, Algorithm::AiMtLike] {
        let mapper = algorithm.build();
        let mut rng = StdRng::seed_from_u64(0);
        let mut session = mapper.start(&p, &mut rng);
        assert_eq!(session.step(10).spent, 1, "{}", mapper.name());
        assert_eq!(session.step(10).spent, 0, "{}", mapper.name());
        assert_eq!(session.spent(), 1, "{}", mapper.name());
        let outcome = session.finish();
        assert_eq!(outcome.history.num_samples(), 1, "{}", mapper.name());
        assert!(outcome.best_fitness > 0.0, "{}", mapper.name());
    }
}
