//! End-to-end pipeline tests: workload → cost model → platform → M3E →
//! schedule, crossing every crate in the workspace.

mod common;

use common::problem;
use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full pipeline produces a physically sensible schedule on every
/// accelerator setting of Table III.
#[test]
fn full_pipeline_runs_on_every_setting() {
    for setting in Setting::ALL {
        let m3e = problem(setting, TaskType::Mix, None, 24, 1);
        let num_accels = m3e.num_accels();

        let mut rng = StdRng::seed_from_u64(9);
        let mapping = Mapping::random(&mut rng, 24, num_accels);
        let schedule = m3e.schedule(&mapping);

        assert_eq!(schedule.segments().len(), 24, "{setting}");
        assert!(schedule.makespan_sec() > 0.0, "{setting}");
        assert!(schedule.throughput_gflops() > 0.0, "{setting}");
        // The aggregate BW draw never exceeds the system budget.
        let budget = m3e.platform().system_bw_gbps();
        for slice in schedule.bw_trace() {
            assert!(slice.alloc_gbps.iter().sum::<f64>() <= budget * (1.0 + 1e-9), "{setting}");
        }
    }
}

/// Throughput can never exceed the platform's peak compute.
#[test]
fn throughput_bounded_by_platform_peak() {
    for setting in [Setting::S1, Setting::S2, Setting::S4] {
        let m3e = problem(setting, TaskType::Mix, None, 40, 3);
        let peak = m3e.platform().peak_gflops();
        let mut rng = StdRng::seed_from_u64(0);
        let report = Magma::default().search(&m3e, 300, &mut rng);
        assert!(
            report.best_fitness <= peak,
            "{setting}: {} GFLOP/s exceeds peak {}",
            report.best_fitness,
            peak
        );
    }
}

/// The same seed end-to-end gives bit-identical results (reproducibility).
#[test]
fn end_to_end_determinism() {
    let run = || {
        MapperBuilder::new()
            .setting(Setting::S2)
            .task(TaskType::Mix)
            .group_size(20)
            .budget(300)
            .seed(123)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best_fitness, b.best_fitness);
    assert_eq!(a.best_mapping, b.best_mapping);
    assert_eq!(a.makespan_sec, b.makespan_sec);
}

/// Raising the system bandwidth never reduces the achievable throughput of
/// the same mapping, and a bigger accelerator never lowers MAGMA's result.
#[test]
fn monotonicity_in_resources() {
    // The helper regenerates the same group for the same (task, n, seed), so
    // every instance below maps an identical workload.
    let small_bw = problem(Setting::S2, TaskType::Mix, Some(1.0), 30, 5);
    let large_bw = problem(Setting::S2, TaskType::Mix, Some(16.0), 30, 5);
    let mut rng = StdRng::seed_from_u64(4);
    let mapping = Mapping::random(&mut rng, 30, 4);
    assert!(large_bw.evaluate(&mapping) >= small_bw.evaluate(&mapping));

    // Compute monotonicity under search (S3 has 8 big cores vs S1's 4 small).
    let mut rng = StdRng::seed_from_u64(4);
    let s1 = Magma::default().search(
        &problem(Setting::S1, TaskType::Mix, Some(256.0), 30, 5),
        400,
        &mut rng,
    );
    let mut rng = StdRng::seed_from_u64(4);
    let s3 = Magma::default().search(
        &problem(Setting::S3, TaskType::Mix, Some(256.0), 30, 5),
        400,
        &mut rng,
    );
    assert!(s3.best_fitness >= s1.best_fitness);
}

/// The objective plumbing works for all four objectives.
#[test]
fn alternative_objectives_are_usable() {
    let group = WorkloadSpec::single_group(TaskType::Vision, 16, 2);
    for objective in [
        Objective::Throughput,
        Objective::Latency,
        Objective::Energy,
        Objective::EnergyDelayProduct,
    ] {
        let m3e = M3e::new(settings::build(Setting::S1), group.clone(), objective);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = Magma::default().search(&m3e, 200, &mut rng);
        assert!(outcome.best_fitness.is_finite(), "{objective}");
    }
}

/// Flexible platforms flow through the whole pipeline.
#[test]
fn flexible_platform_pipeline() {
    let group = WorkloadSpec::single_group(TaskType::Mix, 20, 6);
    let m3e = M3e::new(settings::build_flexible(Setting::S1, 16.0), group, Objective::Throughput);
    let mut rng = StdRng::seed_from_u64(0);
    let outcome = Magma::default().search(&m3e, 200, &mut rng);
    assert!(outcome.best_fitness > 0.0);
}
