//! DNN model zoo, layer shapes and multi-tenant workload generation for the
//! MAGMA reproduction.
//!
//! The paper schedules *jobs* — a job is one DNN layer executed on one
//! mini-batch of activations — drawn from three application domains that are
//! common in inference data centers: **vision**, **language** and
//! **recommendation** (plus a **Mix** task that combines all three). This
//! crate provides:
//!
//! * [`LayerShape`] — the tensor-shape description of a single DNN layer
//!   (convolution, depth-wise convolution, fully-connected / GEMM, attention
//!   projections, embedding lookups), together with MAC/FLOP and tensor-size
//!   accounting.
//! * [`Model`] — a named sequence of layers with a [`TaskType`], and
//!   [`zoo`] — hand-coded layer tables for the models the paper evaluates
//!   (ResNet-50, MobileNetV2, ShuffleNet, GPT-2, MobileBERT, Transformer-XL,
//!   DLRM, Wide&Deep, NCF, ...).
//! * [`Job`], [`Group`] and [`workload`] — mini-batched jobs, dependency-free
//!   groups, and deterministic workload generators for each task type.
//! * [`JobSignature`] — a platform-independent per-job profile (layer class,
//!   compute and data-movement footprint) with a distance metric; the
//!   transfer key of the profile-matched warm start (Table V). Under the
//!   `MAGMA_SIGNATURE_PROFILE` knob a packed per-core latency class can be
//!   attached, letting the metric see platform affinity too.
//! * [`Tenant`], [`TenantMix`] and [`TenantJobStream`] — the co-resident
//!   service owners behind the online serving simulator (`magma-serve`),
//!   each emitting a deterministic job stream from its slice of the zoo.
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Section III (jobs, groups, batched-job tasks) | [`Job`], [`Group`], [`workload`] |
//! | Table II (model zoo: vision / language / recommendation) | [`zoo`] |
//! | Fig. 7 representative models | [`zoo::fig7_models`] |
//! | Section V-C / Table V (warm-start transfer keys) | [`signature`] |
//! | Fig. 17 (group size as a knob) | [`WorkloadSpec::build_groups`] |
//!
//! # Example
//!
//! ```
//! use magma_model::{zoo, workload::WorkloadSpec, TaskType};
//!
//! let resnet = zoo::resnet50();
//! assert!(resnet.layers().len() > 20);
//!
//! // Build a Mix-task workload of 100 jobs, chopped into one group.
//! let spec = WorkloadSpec::new(TaskType::Mix, 100).with_seed(7);
//! let groups = spec.build_groups(100);
//! assert_eq!(groups[0].len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod job;
pub mod layer;
pub mod model;
pub mod signature;
pub mod task;
pub mod tenant;
pub mod workload;
pub mod zoo;

pub use job::{Group, Job, JobId};
pub use layer::LayerShape;
pub use model::Model;
pub use signature::{JobSignature, LayerClass};
pub use task::TaskType;
pub use tenant::{Tenant, TenantJobStream, TenantMix};
pub use workload::WorkloadSpec;
