//! Task / application categories used throughout the paper.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The application domain a job belongs to.
///
/// The paper benchmarks four task mixes: Vision, Language, Recommendation and
/// a combined "Mix" task that draws from all three, mirroring the job mix of a
/// multi-tenant inference data center.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub enum TaskType {
    /// CNN-dominated vision models (image tagging, photo auto-editing, video).
    Vision,
    /// Transformer / RNN language models (voice processing, NLP services).
    Language,
    /// Deep recommendation models (MLP + embedding dominated).
    Recommendation,
    /// A mixture of vision, language and recommendation jobs running together.
    #[default]
    Mix,
}

impl TaskType {
    /// All four task categories, in the order the paper's figures use.
    pub const ALL: [TaskType; 4] =
        [TaskType::Vision, TaskType::Language, TaskType::Recommendation, TaskType::Mix];

    /// The three *pure* (non-Mix) task categories.
    pub const PURE: [TaskType; 3] =
        [TaskType::Vision, TaskType::Language, TaskType::Recommendation];

    /// Short label used in result tables ("Vision", "Lang", "Recom", "Mix").
    pub fn short_name(self) -> &'static str {
        match self {
            TaskType::Vision => "Vision",
            TaskType::Language => "Lang",
            TaskType::Recommendation => "Recom",
            TaskType::Mix => "Mix",
        }
    }

    /// Returns `true` for the Mix task, which combines all pure tasks.
    pub fn is_mix(self) -> bool {
        matches!(self, TaskType::Mix)
    }
}

impl fmt::Display for TaskType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_four_distinct_tasks() {
        let mut v = TaskType::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn pure_excludes_mix() {
        assert!(!TaskType::PURE.contains(&TaskType::Mix));
        assert_eq!(TaskType::PURE.len(), 3);
    }

    #[test]
    fn display_matches_short_name() {
        for t in TaskType::ALL {
            assert_eq!(t.to_string(), t.short_name());
        }
    }

    #[test]
    fn mix_predicate() {
        assert!(TaskType::Mix.is_mix());
        assert!(!TaskType::Vision.is_mix());
    }

    #[test]
    fn serde_round_trip() {
        for t in TaskType::ALL {
            let s = serde_json::to_string(&t).unwrap();
            let back: TaskType = serde_json::from_str(&s).unwrap();
            assert_eq!(t, back);
        }
    }
}
