//! A named DNN model: an ordered list of layers plus task metadata.

use crate::{LayerShape, TaskType};
use serde::{Deserialize, Serialize};

/// A DNN model as a sequence of layer shapes.
///
/// Models are purely descriptive — there are no tensors or parameters here,
/// just the shapes the cost model and mapper need. Construct models via the
/// [`zoo`](crate::zoo) module or [`Model::new`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    task: TaskType,
    layers: Vec<LayerShape>,
}

impl Model {
    /// Creates a model from a name, task category and layer list.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty — an empty model cannot produce jobs.
    pub fn new(name: impl Into<String>, task: TaskType, layers: Vec<LayerShape>) -> Self {
        assert!(!layers.is_empty(), "a model must have at least one layer");
        Model { name: name.into(), task, layers }
    }

    /// The model's human-readable name (e.g. `"ResNet50"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The task category this model belongs to.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// All layers, in execution order.
    pub fn layers(&self) -> &[LayerShape] {
        &self.layers
    }

    /// Layers that actually execute on the accelerator (embedding lookups are
    /// kept on the host, per the paper).
    pub fn accelerator_layers(&self) -> impl Iterator<Item = &LayerShape> {
        self.layers.iter().filter(|l| l.runs_on_accelerator())
    }

    /// Total MACs for one sample across all accelerator layers.
    pub fn total_macs(&self) -> u64 {
        self.accelerator_layers().map(|l| l.macs()).sum()
    }

    /// Total parameter elements across all layers (including host-side ones).
    pub fn total_weight_elems(&self) -> u64 {
        self.layers.iter().map(|l| l.weight_elems()).sum()
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Model {
        Model::new(
            "Tiny",
            TaskType::Vision,
            vec![
                LayerShape::pointwise(8, 3, 8, 8),
                LayerShape::FullyConnected { out_features: 10, in_features: 8 },
            ],
        )
    }

    #[test]
    fn accessors() {
        let m = tiny();
        assert_eq!(m.name(), "Tiny");
        assert_eq!(m.task(), TaskType::Vision);
        assert_eq!(m.num_layers(), 2);
        assert_eq!(m.layers().len(), 2);
    }

    #[test]
    fn total_macs_sums_layers() {
        let m = tiny();
        let expected: u64 = m.layers().iter().map(|l| l.macs()).sum();
        assert_eq!(m.total_macs(), expected);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_panics() {
        let _ = Model::new("Empty", TaskType::Vision, vec![]);
    }

    #[test]
    fn accelerator_layers_skips_embeddings() {
        let m = Model::new(
            "WithEmb",
            TaskType::Recommendation,
            vec![
                LayerShape::EmbeddingLookup { lookups: 26, dim: 64 },
                LayerShape::FullyConnected { out_features: 256, in_features: 512 },
            ],
        );
        assert_eq!(m.accelerator_layers().count(), 1);
        assert_eq!(m.total_macs(), 256 * 512);
    }
}
