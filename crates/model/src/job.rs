//! Jobs (mini-batched layers) and dependency-free groups.

use crate::{LayerShape, TaskType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a job inside a workload. Stable across the lifetime of the
/// workload and used to index the job-analysis table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub usize);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J{}", self.0)
    }
}

/// A schedulable unit of work: one DNN layer applied to one mini-batch of
/// activations (Section III of the paper).
///
/// Jobs inside a [`Group`] have no dependencies on each other, because they
/// come from different models or from independent mini-batches of batched-job
/// tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    id: JobId,
    model: String,
    layer_index: usize,
    layer: LayerShape,
    batch: usize,
    task: TaskType,
}

impl Job {
    /// Creates a job.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or if the layer does not run on the accelerator
    /// (embedding lookups are host-side and never become jobs).
    pub fn new(
        id: JobId,
        model: impl Into<String>,
        layer_index: usize,
        layer: LayerShape,
        batch: usize,
        task: TaskType,
    ) -> Self {
        assert!(batch > 0, "a job must have a non-empty mini-batch");
        assert!(
            layer.runs_on_accelerator(),
            "host-side layers (embedding lookups) cannot become accelerator jobs"
        );
        Job { id, model: model.into(), layer_index, layer, batch, task }
    }

    /// The job's identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Name of the model this layer belongs to.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Index of the layer inside its model.
    pub fn layer_index(&self) -> usize {
        self.layer_index
    }

    /// The layer shape.
    pub fn layer(&self) -> &LayerShape {
        &self.layer
    }

    /// Mini-batch size (number of activations processed together).
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// The task category of the owning model.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// MACs for the whole mini-batch.
    pub fn macs(&self) -> u64 {
        self.layer.macs() * self.batch as u64
    }

    /// FLOPs (2 × MACs) for the whole mini-batch.
    pub fn flops(&self) -> u64 {
        self.macs() * 2
    }

    /// Activation elements (input + output) moved for the whole mini-batch.
    pub fn activation_elems(&self) -> u64 {
        (self.layer.input_elems() + self.layer.output_elems()) * self.batch as u64
    }

    /// Weight elements moved for this job (weights are fetched once per job,
    /// independent of the mini-batch size).
    pub fn weight_elems(&self) -> u64 {
        self.layer.weight_elems()
    }

    /// Total DRAM traffic in elements for the whole mini-batch.
    pub fn total_data_elems(&self) -> u64 {
        self.activation_elems() + self.weight_elems()
    }

    /// MACs per data element for the whole job.
    pub fn arithmetic_intensity(&self) -> f64 {
        let d = self.total_data_elems();
        if d == 0 {
            0.0
        } else {
            self.macs() as f64 / d as f64
        }
    }

    /// Re-numbers the job (used when slicing workloads into groups).
    pub fn with_id(mut self, id: JobId) -> Self {
        self.id = id;
        self
    }
}

impl fmt::Display for Job {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{} {} L{} b{}]",
            self.id, self.model, self.layer, self.layer_index, self.batch
        )
    }
}

/// A dependency-free group of jobs — the unit the mapper optimizes over.
///
/// The host-side control program chops the pool of queued jobs into groups
/// (Section III). The group size is a hyper-parameter (default 100 in the
/// paper's evaluation, swept in Fig. 17).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Group {
    jobs: Vec<Job>,
}

impl Group {
    /// Creates a group from a list of jobs, renumbering their ids to be the
    /// position inside the group (so encodings can index genes by job id).
    pub fn new(jobs: Vec<Job>) -> Self {
        let jobs = jobs.into_iter().enumerate().map(|(i, j)| j.with_id(JobId(i))).collect();
        Group { jobs }
    }

    /// The jobs in this group, ordered by id.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// Number of jobs in the group.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the group is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Iterator over the jobs.
    pub fn iter(&self) -> std::slice::Iter<'_, Job> {
        self.jobs.iter()
    }

    /// Total FLOPs across the group — the numerator of the throughput
    /// objective.
    pub fn total_flops(&self) -> u64 {
        self.jobs.iter().map(|j| j.flops()).sum()
    }

    /// Total MACs across the group.
    pub fn total_macs(&self) -> u64 {
        self.jobs.iter().map(|j| j.macs()).sum()
    }

    /// Count of jobs per task category, in `TaskType::ALL` order (Mix counts
    /// are always zero since jobs carry only pure task tags).
    pub fn task_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for j in &self.jobs {
            let idx = TaskType::ALL.iter().position(|t| *t == j.task()).unwrap();
            h[idx] += 1;
        }
        h
    }
}

impl FromIterator<Job> for Group {
    fn from_iter<I: IntoIterator<Item = Job>>(iter: I) -> Self {
        Group::new(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a Group {
    type Item = &'a Job;
    type IntoIter = std::slice::Iter<'a, Job>;
    fn into_iter(self) -> Self::IntoIter {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job(id: usize) -> Job {
        Job::new(
            JobId(id),
            "ResNet50",
            3,
            LayerShape::Conv2d { k: 64, c: 64, y: 56, x: 56, r: 3, s: 3, stride: 1 },
            4,
            TaskType::Vision,
        )
    }

    #[test]
    fn job_macs_scale_with_batch() {
        let j = sample_job(0);
        assert_eq!(j.macs(), j.layer().macs() * 4);
        assert_eq!(j.flops(), j.macs() * 2);
    }

    #[test]
    fn weights_do_not_scale_with_batch() {
        let j = sample_job(0);
        assert_eq!(j.weight_elems(), j.layer().weight_elems());
    }

    #[test]
    #[should_panic(expected = "non-empty mini-batch")]
    fn zero_batch_panics() {
        let _ = Job::new(JobId(0), "m", 0, LayerShape::pointwise(1, 1, 1, 1), 0, TaskType::Vision);
    }

    #[test]
    #[should_panic(expected = "host-side layers")]
    fn embedding_job_panics() {
        let _ = Job::new(
            JobId(0),
            "m",
            0,
            LayerShape::EmbeddingLookup { lookups: 4, dim: 4 },
            1,
            TaskType::Recommendation,
        );
    }

    #[test]
    fn group_renumbers_ids() {
        let g = Group::new(vec![sample_job(17), sample_job(42), sample_job(3)]);
        let ids: Vec<usize> = g.iter().map(|j| j.id().0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        assert_eq!(g.len(), 3);
        assert!(!g.is_empty());
    }

    #[test]
    fn group_totals() {
        let g = Group::new(vec![sample_job(0), sample_job(1)]);
        assert_eq!(g.total_macs(), 2 * sample_job(0).macs());
        assert_eq!(g.total_flops(), 2 * g.total_macs());
    }

    #[test]
    fn task_histogram_counts_vision() {
        let g = Group::new(vec![sample_job(0), sample_job(1), sample_job(2)]);
        assert_eq!(g.task_histogram(), [3, 0, 0, 0]);
    }

    #[test]
    fn group_from_iterator() {
        let g: Group = (0..5).map(sample_job).collect();
        assert_eq!(g.len(), 5);
    }

    #[test]
    fn display_mentions_model_and_id() {
        let j = sample_job(7);
        let s = j.to_string();
        assert!(s.contains("ResNet50"));
        assert!(s.contains("J7"));
    }
}
