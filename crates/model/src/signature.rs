//! Per-job layer signatures and the distance metric behind profile-matched
//! warm-start transfer (Section V-C, Table V).
//!
//! Warm start works because new jobs of a task category have *statistically
//! similar* profiles to previously solved jobs — but "similar" must be
//! decided per job, not per position: two groups of the same task generated
//! from different request interleavings put different layers at the same
//! index. A [`JobSignature`] condenses one job into a small,
//! platform-independent profile — layer class, mini-batch, compute (MACs) and
//! data-movement (weight/activation elements) footprint — and
//! [`JobSignature::distance`] compares two such profiles in log scale, so the
//! warm-start engine can assign each new job the genes of the most similar
//! stored job instead of the job at the same wrapped index.

use crate::{Group, Job, LayerShape, TaskType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The coarse structural class of a layer, the strongest similarity signal:
/// a convolution should inherit genes from a convolution, never from an
/// embedding-dominated FC, whatever their MAC counts are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerClass {
    /// Standard 2-D convolution (spatial + cross-channel reduction).
    Conv,
    /// Depth-wise convolution (spatial only; memory-intensive).
    DepthwiseConv,
    /// Fully-connected / GEMV layer (weight-heavy, no spatial reuse).
    FullyConnected,
    /// Activation-by-activation matrix multiply (attention scores/values).
    Gemm,
    /// Embedding-table lookup (host-side; never appears in accelerator jobs).
    Embedding,
}

impl From<&LayerShape> for LayerClass {
    fn from(layer: &LayerShape) -> Self {
        match layer {
            LayerShape::Conv2d { .. } => LayerClass::Conv,
            LayerShape::DepthwiseConv2d { .. } => LayerClass::DepthwiseConv,
            LayerShape::FullyConnected { .. } => LayerClass::FullyConnected,
            LayerShape::Gemm { .. } => LayerClass::Gemm,
            LayerShape::EmbeddingLookup { .. } => LayerClass::Embedding,
        }
    }
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A compact, platform-independent profile of one job: what kind of layer it
/// is, how much it computes and how much data it moves.
///
/// Signatures are the transfer key of the warm-start engine (Table V): a
/// stored solution is adapted to a new group by giving each new job the gene
/// block of the stored job with the nearest signature. All quantities are
/// per *job* (mini-batch included), so the same layer at different batch
/// sizes is close but not identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobSignature {
    task: TaskType,
    class: LayerClass,
    batch: usize,
    macs: u64,
    weight_elems: u64,
    activation_elems: u64,
}

impl JobSignature {
    /// Weight of a layer-class mismatch in the distance metric. Chosen to
    /// dominate any realistic magnitude difference: ~16 nats corresponds to
    /// a ~9-million-fold MAC difference, so a conv prefers even a very
    /// differently sized conv over any FC.
    pub const CLASS_MISMATCH_PENALTY: f64 = 16.0;

    /// Weight of a task-category mismatch in the distance metric (relevant
    /// only inside Mix groups, where one group holds several categories).
    pub const TASK_MISMATCH_PENALTY: f64 = 4.0;

    /// Computes the signature of a job.
    pub fn of(job: &Job) -> Self {
        JobSignature {
            task: job.task(),
            class: LayerClass::from(job.layer()),
            batch: job.batch(),
            macs: job.macs(),
            weight_elems: job.weight_elems(),
            activation_elems: job.activation_elems(),
        }
    }

    /// The task category of the profiled job.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// The structural layer class of the profiled job.
    pub fn class(&self) -> LayerClass {
        self.class
    }

    /// The mini-batch size of the profiled job.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// MACs of the whole job (compute footprint).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Weight elements fetched by the job (bandwidth footprint, reused across
    /// the mini-batch).
    pub fn weight_elems(&self) -> u64 {
        self.weight_elems
    }

    /// Activation elements moved by the job (bandwidth footprint that scales
    /// with the mini-batch).
    pub fn activation_elems(&self) -> u64 {
        self.activation_elems
    }

    /// MACs per element of data moved — the roofline position of the job.
    pub fn arithmetic_intensity(&self) -> f64 {
        let data = self.weight_elems + self.activation_elems;
        if data == 0 {
            0.0
        } else {
            self.macs as f64 / data as f64
        }
    }

    /// Distance between two job profiles; `0.0` iff the profiles are
    /// identical, symmetric, and always finite.
    ///
    /// Magnitudes are compared in log scale (L1 over `ln(1 + x)` of MACs,
    /// weight elements and activation elements), so "twice the MACs" costs
    /// the same everywhere on the size spectrum. Categorical mismatches add
    /// [`Self::CLASS_MISMATCH_PENALTY`] / [`Self::TASK_MISMATCH_PENALTY`] on
    /// top, which keeps matching within a layer class (and, in Mix groups,
    /// within a task) whenever a same-class candidate exists.
    pub fn distance(&self, other: &JobSignature) -> f64 {
        let log_gap = |a: u64, b: u64| ((1.0 + a as f64).ln() - (1.0 + b as f64).ln()).abs();
        let mut d = log_gap(self.macs, other.macs)
            + log_gap(self.weight_elems, other.weight_elems)
            + log_gap(self.activation_elems, other.activation_elems);
        if self.class != other.class {
            d += Self::CLASS_MISMATCH_PENALTY;
        }
        if self.task != other.task {
            d += Self::TASK_MISMATCH_PENALTY;
        }
        d
    }
}

impl Job {
    /// The job's [`JobSignature`] (shorthand for [`JobSignature::of`]).
    pub fn signature(&self) -> JobSignature {
        JobSignature::of(self)
    }
}

impl Group {
    /// Signatures of every job in the group, in job-id order — the profile
    /// the warm-start engine stores next to a solved mapping and matches new
    /// groups against.
    pub fn signatures(&self) -> Vec<JobSignature> {
        self.iter().map(JobSignature::of).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, WorkloadSpec};

    fn conv_job(id: usize, k: usize, batch: usize) -> Job {
        Job::new(
            JobId(id),
            "m",
            0,
            LayerShape::Conv2d { k, c: 64, y: 28, x: 28, r: 3, s: 3, stride: 1 },
            batch,
            TaskType::Vision,
        )
    }

    fn fc_job(id: usize, out: usize) -> Job {
        Job::new(
            JobId(id),
            "m",
            1,
            LayerShape::FullyConnected { out_features: out, in_features: 1024 },
            4,
            TaskType::Language,
        )
    }

    #[test]
    fn identical_jobs_have_zero_distance() {
        let a = conv_job(0, 128, 4).signature();
        let b = conv_job(1, 128, 4).signature();
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_finite() {
        let a = conv_job(0, 128, 4).signature();
        let b = fc_job(1, 1000).signature();
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b).is_finite());
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn class_mismatch_dominates_size_mismatch() {
        let small_conv = conv_job(0, 8, 4).signature();
        let big_conv = conv_job(1, 512, 4).signature();
        let fc = fc_job(2, 512).signature();
        // A conv is closer to a conv 64x its size than to any FC.
        assert!(small_conv.distance(&big_conv) < small_conv.distance(&fc));
    }

    #[test]
    fn batch_scales_compute_but_not_weights() {
        let b4 = conv_job(0, 64, 4).signature();
        let b8 = conv_job(1, 64, 8).signature();
        assert_eq!(b4.weight_elems(), b8.weight_elems());
        assert_eq!(b8.macs(), 2 * b4.macs());
        assert!(b4.distance(&b8) > 0.0);
    }

    #[test]
    fn group_signatures_cover_all_jobs_in_order() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 20, 3);
        let sigs = group.signatures();
        assert_eq!(sigs.len(), 20);
        for (job, sig) in group.iter().zip(&sigs) {
            assert_eq!(job.signature(), *sig);
            assert_eq!(sig.class(), LayerClass::from(job.layer()));
        }
    }

    #[test]
    fn arithmetic_intensity_matches_job() {
        let j = conv_job(0, 64, 4);
        assert!((j.signature().arithmetic_intensity() - j.arithmetic_intensity()).abs() < 1e-12);
    }

    #[test]
    fn layer_class_maps_every_shape() {
        assert_eq!(LayerClass::from(&LayerShape::pointwise(1, 1, 1, 1)), LayerClass::Conv);
        assert_eq!(
            LayerClass::from(&LayerShape::EmbeddingLookup { lookups: 1, dim: 1 }),
            LayerClass::Embedding
        );
        assert_eq!(LayerClass::Conv.to_string(), "Conv");
    }
}
