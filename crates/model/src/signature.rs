//! Per-job layer signatures and the distance metric behind profile-matched
//! warm-start transfer (Section V-C, Table V).
//!
//! Warm start works because new jobs of a task category have *statistically
//! similar* profiles to previously solved jobs — but "similar" must be
//! decided per job, not per position: two groups of the same task generated
//! from different request interleavings put different layers at the same
//! index. A [`JobSignature`] condenses one job into a small,
//! platform-independent profile — layer class, mini-batch, compute (MACs) and
//! data-movement (weight/activation elements) footprint — and
//! [`JobSignature::distance`] compares two such profiles in log scale, so the
//! warm-start engine can assign each new job the genes of the most similar
//! stored job instead of the job at the same wrapped index.

use crate::{Group, Job, LayerShape, TaskType};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The coarse structural class of a layer, the strongest similarity signal:
/// a convolution should inherit genes from a convolution, never from an
/// embedding-dominated FC, whatever their MAC counts are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum LayerClass {
    /// Standard 2-D convolution (spatial + cross-channel reduction).
    Conv,
    /// Depth-wise convolution (spatial only; memory-intensive).
    DepthwiseConv,
    /// Fully-connected / GEMV layer (weight-heavy, no spatial reuse).
    FullyConnected,
    /// Activation-by-activation matrix multiply (attention scores/values).
    Gemm,
    /// Embedding-table lookup (host-side; never appears in accelerator jobs).
    Embedding,
}

impl From<&LayerShape> for LayerClass {
    fn from(layer: &LayerShape) -> Self {
        match layer {
            LayerShape::Conv2d { .. } => LayerClass::Conv,
            LayerShape::DepthwiseConv2d { .. } => LayerClass::DepthwiseConv,
            LayerShape::FullyConnected { .. } => LayerClass::FullyConnected,
            LayerShape::Gemm { .. } => LayerClass::Gemm,
            LayerShape::EmbeddingLookup { .. } => LayerClass::Embedding,
        }
    }
}

impl fmt::Display for LayerClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A compact, platform-independent profile of one job: what kind of layer it
/// is, how much it computes and how much data it moves.
///
/// Signatures are the transfer key of the warm-start engine (Table V): a
/// stored solution is adapted to a new group by giving each new job the gene
/// block of the stored job with the nearest signature. All quantities are
/// per *job* (mini-batch included), so the same layer at different batch
/// sizes is close but not identical.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct JobSignature {
    task: TaskType,
    class: LayerClass,
    batch: usize,
    macs: u64,
    weight_elems: u64,
    activation_elems: u64,
    core_class: u32,
}

// Hand-written so signatures persisted before `core_class` existed (e.g. a
// serialized warm-start SolutionHistory) still load: a missing field means
// "no platform profile attached" (0). The vendored serde derive cannot
// express per-field defaults.
impl serde::Deserialize for JobSignature {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.as_map().is_none() {
            return Err(serde::DeError::mismatch("object", v));
        }
        fn field<T: serde::Deserialize>(v: &serde::Value, name: &str) -> Result<T, serde::DeError> {
            serde::Deserialize::from_value(v.get(name))
                .map_err(|e| serde::DeError::custom(format!("field {name}: {e}")))
        }
        Ok(JobSignature {
            task: field(v, "task")?,
            class: field(v, "class")?,
            batch: field(v, "batch")?,
            macs: field(v, "macs")?,
            weight_elems: field(v, "weight_elems")?,
            activation_elems: field(v, "activation_elems")?,
            core_class: match v.get("core_class") {
                serde::Value::Null => 0,
                other => serde::Deserialize::from_value(other)
                    .map_err(|e| serde::DeError::custom(format!("field core_class: {e}")))?,
            },
        })
    }
}

impl JobSignature {
    /// Weight of a layer-class mismatch in the distance metric. Chosen to
    /// dominate any realistic magnitude difference: ~16 nats corresponds to
    /// a ~9-million-fold MAC difference, so a conv prefers even a very
    /// differently sized conv over any FC.
    pub const CLASS_MISMATCH_PENALTY: f64 = 16.0;

    /// Weight of a task-category mismatch in the distance metric (relevant
    /// only inside Mix groups, where one group holds several categories).
    pub const TASK_MISMATCH_PENALTY: f64 = 4.0;

    /// Penalty when two profiled jobs prefer *different* cores (their
    /// fastest-core indices disagree). Applied only when both signatures
    /// carry a core class (see [`JobSignature::with_core_class`]); chosen
    /// well below [`Self::CLASS_MISMATCH_PENALTY`] so platform affinity
    /// refines shape matching but never overrides the layer class.
    pub const AFFINITY_MISMATCH_PENALTY: f64 = 2.0;

    /// Weight per octave of best-core no-stall latency difference between two
    /// profiled jobs (again only when both carry a core class).
    pub const LATENCY_CLASS_WEIGHT: f64 = 0.25;

    /// Presence flag of the packed core class (bit 31). A `core_class` of 0
    /// means "no platform profile attached".
    const CORE_CLASS_PRESENT: u32 = 0x8000_0000;

    /// Computes the signature of a job.
    pub fn of(job: &Job) -> Self {
        JobSignature {
            task: job.task(),
            class: LayerClass::from(job.layer()),
            batch: job.batch(),
            macs: job.macs(),
            weight_elems: job.weight_elems(),
            activation_elems: job.activation_elems(),
            core_class: 0,
        }
    }

    /// Packs a platform profile — the per-core no-stall latencies of the job
    /// from the job-analysis table — into a core class: the index of the
    /// fastest core (the job's *affinity*, low byte) and the octave-quantized
    /// best-core latency (bits 8..24, in octaves above 1 ns). The result is
    /// never 0, so an attached profile is always distinguishable from an
    /// unprofiled signature.
    ///
    /// This is the seam behind the `MAGMA_SIGNATURE_PROFILE` knob: the
    /// shape-only signature cannot see that two similarly sized jobs prefer
    /// different cores of a heterogeneous platform; the packed class lets
    /// [`JobSignature::distance`] tell them apart (see ROADMAP's "shape-only
    /// metric" residual).
    ///
    /// # Panics
    ///
    /// Panics if `no_stall_seconds` is empty.
    pub fn encode_core_class(no_stall_seconds: &[f64]) -> u32 {
        assert!(!no_stall_seconds.is_empty(), "a platform has at least one core");
        let mut fastest = 0usize;
        for (i, &lat) in no_stall_seconds.iter().enumerate() {
            if lat < no_stall_seconds[fastest] {
                fastest = i;
            }
        }
        let best = no_stall_seconds[fastest];
        let octaves = if best.is_finite() && best > 0.0 {
            (best / 1e-9).max(1.0).ln() / std::f64::consts::LN_2
        } else {
            0.0
        };
        let latency_class = (octaves.round() as i64).clamp(0, 0xFFFF) as u32;
        Self::CORE_CLASS_PRESENT | (latency_class << 8) | (fastest.min(0xFF) as u32)
    }

    /// Returns a copy with the given packed core class attached (0 detaches).
    pub fn with_core_class(mut self, core_class: u32) -> Self {
        self.core_class = core_class;
        self
    }

    /// The packed core class, or 0 when no platform profile is attached.
    pub fn core_class(&self) -> u32 {
        self.core_class
    }

    /// Whether a platform profile is attached to this signature.
    pub fn has_core_class(&self) -> bool {
        self.core_class & Self::CORE_CLASS_PRESENT != 0
    }

    /// The preferred (fastest) core index of an attached profile.
    fn affinity(&self) -> u32 {
        self.core_class & 0xFF
    }

    /// The octave-quantized best-core latency of an attached profile.
    fn latency_class(&self) -> u32 {
        (self.core_class >> 8) & 0xFFFF
    }

    /// The task category of the profiled job.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// The structural layer class of the profiled job.
    pub fn class(&self) -> LayerClass {
        self.class
    }

    /// The mini-batch size of the profiled job.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// MACs of the whole job (compute footprint).
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Weight elements fetched by the job (bandwidth footprint, reused across
    /// the mini-batch).
    pub fn weight_elems(&self) -> u64 {
        self.weight_elems
    }

    /// Activation elements moved by the job (bandwidth footprint that scales
    /// with the mini-batch).
    pub fn activation_elems(&self) -> u64 {
        self.activation_elems
    }

    /// MACs per element of data moved — the roofline position of the job.
    pub fn arithmetic_intensity(&self) -> f64 {
        let data = self.weight_elems + self.activation_elems;
        if data == 0 {
            0.0
        } else {
            self.macs as f64 / data as f64
        }
    }

    /// Distance between two job profiles; `0.0` iff the profiles are
    /// identical, symmetric, and always finite.
    ///
    /// Magnitudes are compared in log scale (L1 over `ln(1 + x)` of MACs,
    /// weight elements and activation elements), so "twice the MACs" costs
    /// the same everywhere on the size spectrum. Categorical mismatches add
    /// [`Self::CLASS_MISMATCH_PENALTY`] / [`Self::TASK_MISMATCH_PENALTY`] on
    /// top, which keeps matching within a layer class (and, in Mix groups,
    /// within a task) whenever a same-class candidate exists.
    ///
    /// When **both** signatures carry a platform profile (a packed core
    /// class, attached by `magma_m3e::attach_core_classes` under the
    /// `MAGMA_SIGNATURE_PROFILE` knob), the distance additionally sees the
    /// platform: [`Self::AFFINITY_MISMATCH_PENALTY`] when the jobs prefer
    /// different cores, plus [`Self::LATENCY_CLASS_WEIGHT`] per octave of
    /// best-core latency difference. Unprofiled signatures (the default) are
    /// compared exactly as before the knob existed.
    pub fn distance(&self, other: &JobSignature) -> f64 {
        let log_gap = |a: u64, b: u64| ((1.0 + a as f64).ln() - (1.0 + b as f64).ln()).abs();
        let mut d = log_gap(self.macs, other.macs)
            + log_gap(self.weight_elems, other.weight_elems)
            + log_gap(self.activation_elems, other.activation_elems);
        if self.class != other.class {
            d += Self::CLASS_MISMATCH_PENALTY;
        }
        if self.task != other.task {
            d += Self::TASK_MISMATCH_PENALTY;
        }
        if self.has_core_class() && other.has_core_class() {
            if self.affinity() != other.affinity() {
                d += Self::AFFINITY_MISMATCH_PENALTY;
            }
            d += Self::LATENCY_CLASS_WEIGHT
                * (self.latency_class() as f64 - other.latency_class() as f64).abs();
        }
        d
    }
}

impl Job {
    /// The job's [`JobSignature`] (shorthand for [`JobSignature::of`]).
    pub fn signature(&self) -> JobSignature {
        JobSignature::of(self)
    }
}

impl Group {
    /// Signatures of every job in the group, in job-id order — the profile
    /// the warm-start engine stores next to a solved mapping and matches new
    /// groups against.
    pub fn signatures(&self) -> Vec<JobSignature> {
        self.iter().map(JobSignature::of).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JobId, WorkloadSpec};

    fn conv_job(id: usize, k: usize, batch: usize) -> Job {
        Job::new(
            JobId(id),
            "m",
            0,
            LayerShape::Conv2d { k, c: 64, y: 28, x: 28, r: 3, s: 3, stride: 1 },
            batch,
            TaskType::Vision,
        )
    }

    fn fc_job(id: usize, out: usize) -> Job {
        Job::new(
            JobId(id),
            "m",
            1,
            LayerShape::FullyConnected { out_features: out, in_features: 1024 },
            4,
            TaskType::Language,
        )
    }

    #[test]
    fn identical_jobs_have_zero_distance() {
        let a = conv_job(0, 128, 4).signature();
        let b = conv_job(1, 128, 4).signature();
        assert_eq!(a.distance(&b), 0.0);
    }

    #[test]
    fn distance_is_symmetric_and_finite() {
        let a = conv_job(0, 128, 4).signature();
        let b = fc_job(1, 1000).signature();
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b).is_finite());
        assert!(a.distance(&b) > 0.0);
    }

    #[test]
    fn class_mismatch_dominates_size_mismatch() {
        let small_conv = conv_job(0, 8, 4).signature();
        let big_conv = conv_job(1, 512, 4).signature();
        let fc = fc_job(2, 512).signature();
        // A conv is closer to a conv 64x its size than to any FC.
        assert!(small_conv.distance(&big_conv) < small_conv.distance(&fc));
    }

    #[test]
    fn batch_scales_compute_but_not_weights() {
        let b4 = conv_job(0, 64, 4).signature();
        let b8 = conv_job(1, 64, 8).signature();
        assert_eq!(b4.weight_elems(), b8.weight_elems());
        assert_eq!(b8.macs(), 2 * b4.macs());
        assert!(b4.distance(&b8) > 0.0);
    }

    #[test]
    fn group_signatures_cover_all_jobs_in_order() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 20, 3);
        let sigs = group.signatures();
        assert_eq!(sigs.len(), 20);
        for (job, sig) in group.iter().zip(&sigs) {
            assert_eq!(job.signature(), *sig);
            assert_eq!(sig.class(), LayerClass::from(job.layer()));
        }
    }

    #[test]
    fn arithmetic_intensity_matches_job() {
        let j = conv_job(0, 64, 4);
        assert!((j.signature().arithmetic_intensity() - j.arithmetic_intensity()).abs() < 1e-12);
    }

    #[test]
    fn core_class_round_trips_through_packing() {
        let cc = JobSignature::encode_core_class(&[3e-3, 1e-3, 2e-3, 4e-3]);
        let sig = conv_job(0, 64, 4).signature().with_core_class(cc);
        assert!(sig.has_core_class());
        assert_eq!(sig.core_class(), cc);
        assert_eq!(sig.affinity(), 1, "core 1 has the lowest latency");
        // 1 ms above the 1 ns reference is ~20 octaves.
        assert_eq!(sig.latency_class(), 20);
        // Detaching restores the unprofiled signature.
        let plain = sig.with_core_class(0);
        assert!(!plain.has_core_class());
        assert_eq!(plain, conv_job(0, 64, 4).signature());
    }

    #[test]
    fn unprofiled_signatures_ignore_the_profile_term() {
        // A/B: the same pair of jobs, with and without attached profiles.
        let a = conv_job(0, 64, 4).signature();
        let b = conv_job(1, 64, 4).signature();
        assert_eq!(a.distance(&b), 0.0);
        // Attaching a profile to only one side must change nothing (the
        // term needs both sides to be profiled).
        let a_profiled = a.with_core_class(JobSignature::encode_core_class(&[1e-3, 2e-3]));
        assert_eq!(a_profiled.distance(&b), 0.0);
    }

    #[test]
    fn profile_term_separates_shape_identical_jobs_with_different_affinity() {
        // Two stored jobs with identical shapes but different core
        // affinities, and a new job that prefers core 1. Shape-only distance
        // ties; the profiled distance must prefer the same-affinity twin.
        let shape = conv_job(0, 64, 4).signature();
        let stored_core0 = shape.with_core_class(JobSignature::encode_core_class(&[1e-3, 2e-3]));
        let stored_core1 = shape.with_core_class(JobSignature::encode_core_class(&[2e-3, 1e-3]));
        let fresh = shape.with_core_class(JobSignature::encode_core_class(&[2e-3, 1e-3]));

        // A/B: without profiles the two stored candidates are indistinguishable.
        assert_eq!(
            fresh.with_core_class(0).distance(&stored_core0.with_core_class(0)),
            fresh.with_core_class(0).distance(&stored_core1.with_core_class(0)),
        );
        // With profiles the same-affinity candidate wins by the penalty gap.
        assert!(fresh.distance(&stored_core1) < fresh.distance(&stored_core0));
        assert_eq!(
            fresh.distance(&stored_core0) - fresh.distance(&stored_core1),
            JobSignature::AFFINITY_MISMATCH_PENALTY
        );
    }

    #[test]
    fn profile_term_stays_below_class_mismatch() {
        // Affinity refines matching but must never override the layer class:
        // a conv with the "wrong" affinity still beats any FC.
        let conv = conv_job(0, 64, 4).signature();
        let other_conv = conv.with_core_class(JobSignature::encode_core_class(&[2e-3, 1e-3]));
        let fc = fc_job(1, 512)
            .signature()
            .with_core_class(JobSignature::encode_core_class(&[1e-3, 2e-3]));
        let fresh = conv.with_core_class(JobSignature::encode_core_class(&[1e-3, 2e-3]));
        assert!(fresh.distance(&other_conv) < fresh.distance(&fc));
    }

    #[test]
    fn signature_serde_round_trips() {
        let sig = conv_job(0, 64, 4)
            .signature()
            .with_core_class(JobSignature::encode_core_class(&[1e-3, 2e-3]));
        let json = serde_json::to_string(&sig).unwrap();
        let back: JobSignature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, sig);
    }

    #[test]
    fn deserializes_pre_core_class_json() {
        // Signatures persisted before the core_class field existed (PR 2's
        // SolutionHistory format) must still load, as unprofiled.
        let sig = conv_job(0, 64, 4).signature();
        let json = serde_json::to_string(&sig).unwrap();
        let old = json.replace(",\"core_class\":0", "").replace("\"core_class\":0,", "");
        assert!(!old.contains("core_class"), "surgery failed: {old}");
        let back: JobSignature = serde_json::from_str(&old).unwrap();
        assert_eq!(back, sig);
        assert!(!back.has_core_class());
    }

    #[test]
    fn layer_class_maps_every_shape() {
        assert_eq!(LayerClass::from(&LayerShape::pointwise(1, 1, 1, 1)), LayerClass::Conv);
        assert_eq!(
            LayerClass::from(&LayerShape::EmbeddingLookup { lookups: 1, dim: 1 }),
            LayerClass::Embedding
        );
        assert_eq!(LayerClass::Conv.to_string(), "Conv");
    }
}
