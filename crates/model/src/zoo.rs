//! Hand-coded layer tables for the DNN models the paper evaluates.
//!
//! The tables are representative rather than bit-exact: every model listed in
//! the paper's methodology (Section VI-A) is present with its characteristic
//! layer mix (CONV-heavy vision models, FC/attention-heavy language models,
//! small-FC recommendation models), which is what the cost model and the
//! mapper actually consume.

use crate::{LayerShape, Model, TaskType};

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

fn conv(k: usize, c: usize, y: usize, x: usize, r: usize, s: usize, stride: usize) -> LayerShape {
    LayerShape::Conv2d { k, c, y, x, r, s, stride }
}

fn dwconv(c: usize, y: usize, x: usize, r: usize, s: usize, stride: usize) -> LayerShape {
    LayerShape::DepthwiseConv2d { c, y, x, r, s, stride }
}

fn fc(out_features: usize, in_features: usize) -> LayerShape {
    LayerShape::FullyConnected { out_features, in_features }
}

/// One transformer block, modelled (as the paper does) as a set of FC/GEMM
/// layers: Q/K/V projections, attention score and context matmuls, the output
/// projection and the two feed-forward layers.
fn transformer_block(hidden: usize, ff: usize, seq: usize, layers: &mut Vec<LayerShape>) {
    // Q, K, V projections (per token, seq handled by batch dimension of jobs;
    // we fold the sequence length into the GEMM shapes for attention).
    layers.push(fc(hidden, hidden)); // Q
    layers.push(fc(hidden, hidden)); // K
    layers.push(fc(hidden, hidden)); // V

    // Attention score (seq x seq x hidden) and context (seq x hidden x seq).
    layers.push(LayerShape::Gemm { m: seq, n: seq, kdim: hidden });
    layers.push(LayerShape::Gemm { m: seq, n: hidden, kdim: seq });
    // Output projection + feed-forward.
    layers.push(fc(hidden, hidden));
    layers.push(fc(ff, hidden));
    layers.push(fc(hidden, ff));
}

// ---------------------------------------------------------------------------
// Vision models
// ---------------------------------------------------------------------------

/// ResNet-50 (He et al.): 7×7 stem, four bottleneck stages, FC head.
pub fn resnet50() -> Model {
    let mut l = vec![conv(64, 3, 112, 112, 7, 7, 2)];
    // (blocks, in_c, mid_c, out_c, spatial)
    let stages: [(usize, usize, usize, usize, usize); 4] = [
        (3, 64, 64, 256, 56),
        (4, 256, 128, 512, 28),
        (6, 512, 256, 1024, 14),
        (3, 1024, 512, 2048, 7),
    ];
    for (blocks, in_c, mid, out, sp) in stages {
        for b in 0..blocks {
            let cin = if b == 0 { in_c } else { out };
            l.push(LayerShape::pointwise(mid, cin, sp, sp));
            l.push(conv(mid, mid, sp, sp, 3, 3, 1));
            l.push(LayerShape::pointwise(out, mid, sp, sp));
            if b == 0 {
                // projection shortcut
                l.push(LayerShape::pointwise(out, cin, sp, sp));
            }
        }
    }
    l.push(fc(1000, 2048));
    Model::new("ResNet50", TaskType::Vision, l)
}

/// MobileNetV2 (Sandler et al.): inverted residual blocks with depth-wise
/// convolutions — the canonical memory-intensive vision model.
pub fn mobilenet_v2() -> Model {
    let mut l = vec![conv(32, 3, 112, 112, 3, 3, 2)];
    // (expansion, out_c, repeats, spatial, stride-of-first)
    let cfg: [(usize, usize, usize, usize, usize); 7] = [
        (1, 16, 1, 112, 1),
        (6, 24, 2, 56, 2),
        (6, 32, 3, 28, 2),
        (6, 64, 4, 14, 2),
        (6, 96, 3, 14, 1),
        (6, 160, 3, 7, 2),
        (6, 320, 1, 7, 1),
    ];
    let mut in_c = 32;
    for (t, out_c, n, sp, _stride) in cfg {
        for _ in 0..n {
            let exp = in_c * t;
            if t != 1 {
                l.push(LayerShape::pointwise(exp, in_c, sp, sp));
            }
            l.push(dwconv(exp, sp, sp, 3, 3, 1));
            l.push(LayerShape::pointwise(out_c, exp, sp, sp));
            in_c = out_c;
        }
    }
    l.push(LayerShape::pointwise(1280, 320, 7, 7));
    l.push(fc(1000, 1280));
    Model::new("MobileNetV2", TaskType::Vision, l)
}

/// ShuffleNet (Zhang et al.): grouped pointwise + depth-wise units.
pub fn shufflenet() -> Model {
    let mut l = vec![conv(24, 3, 112, 112, 3, 3, 2)];
    let stages: [(usize, usize, usize); 3] = [(4, 240, 28), (8, 480, 14), (4, 960, 7)];
    let mut in_c = 24;
    for (repeats, out_c, sp) in stages {
        for _ in 0..repeats {
            l.push(LayerShape::pointwise(out_c / 4, in_c, sp, sp));
            l.push(dwconv(out_c / 4, sp, sp, 3, 3, 1));
            l.push(LayerShape::pointwise(out_c, out_c / 4, sp, sp));
            in_c = out_c;
        }
    }
    l.push(fc(1000, 960));
    Model::new("ShuffleNet", TaskType::Vision, l)
}

/// VGG-16 (Simonyan & Zisserman): large dense 3×3 convolutions + 3 FCs.
pub fn vgg16() -> Model {
    let mut l = Vec::new();
    let cfg: [(usize, usize, usize); 5] =
        [(64, 2, 224), (128, 2, 112), (256, 3, 56), (512, 3, 28), (512, 3, 14)];
    let mut in_c = 3;
    for (out_c, repeats, sp) in cfg {
        for _ in 0..repeats {
            l.push(conv(out_c, in_c, sp, sp, 3, 3, 1));
            in_c = out_c;
        }
    }
    l.push(fc(4096, 512 * 7 * 7));
    l.push(fc(4096, 4096));
    l.push(fc(1000, 4096));
    Model::new("VGG16", TaskType::Vision, l)
}

/// SqueezeNet (Iandola et al.): fire modules (squeeze 1×1 + expand 1×1/3×3).
pub fn squeezenet() -> Model {
    let mut l = vec![conv(96, 3, 111, 111, 7, 7, 2)];
    let fires: [(usize, usize, usize, usize); 8] = [
        (96, 16, 64, 55),
        (128, 16, 64, 55),
        (128, 32, 128, 27),
        (256, 32, 128, 27),
        (256, 48, 192, 13),
        (384, 48, 192, 13),
        (384, 64, 256, 13),
        (512, 64, 256, 13),
    ];
    for (in_c, squeeze, expand, sp) in fires {
        l.push(LayerShape::pointwise(squeeze, in_c, sp, sp));
        l.push(LayerShape::pointwise(expand, squeeze, sp, sp));
        l.push(conv(expand, squeeze, sp, sp, 3, 3, 1));
    }
    l.push(LayerShape::pointwise(1000, 512, 13, 13));
    Model::new("SqueezeNet", TaskType::Vision, l)
}

/// GoogLeNet / Inception-v1 (Szegedy et al.), inception branches flattened.
pub fn googlenet() -> Model {
    let mut l = vec![
        conv(64, 3, 112, 112, 7, 7, 2),
        LayerShape::pointwise(64, 64, 56, 56),
        conv(192, 64, 56, 56, 3, 3, 1),
    ];
    // (in_c, b1, b3r, b3, b5r, b5, pool_proj, spatial)
    type InceptionSpec = (usize, usize, usize, usize, usize, usize, usize, usize);
    let inceptions: [InceptionSpec; 9] = [
        (192, 64, 96, 128, 16, 32, 32, 28),
        (256, 128, 128, 192, 32, 96, 64, 28),
        (480, 192, 96, 208, 16, 48, 64, 14),
        (512, 160, 112, 224, 24, 64, 64, 14),
        (512, 128, 128, 256, 24, 64, 64, 14),
        (512, 112, 144, 288, 32, 64, 64, 14),
        (528, 256, 160, 320, 32, 128, 128, 14),
        (832, 256, 160, 320, 32, 128, 128, 7),
        (832, 384, 192, 384, 48, 128, 128, 7),
    ];
    for (in_c, b1, b3r, b3, b5r, b5, pp, sp) in inceptions {
        l.push(LayerShape::pointwise(b1, in_c, sp, sp));
        l.push(LayerShape::pointwise(b3r, in_c, sp, sp));
        l.push(conv(b3, b3r, sp, sp, 3, 3, 1));
        l.push(LayerShape::pointwise(b5r, in_c, sp, sp));
        l.push(conv(b5, b5r, sp, sp, 5, 5, 1));
        l.push(LayerShape::pointwise(pp, in_c, sp, sp));
    }
    l.push(fc(1000, 1024));
    Model::new("GoogLeNet", TaskType::Vision, l)
}

/// MnasNet (Tan et al.): mobile NAS model, depth-wise separable blocks.
pub fn mnasnet() -> Model {
    let mut l = vec![conv(32, 3, 112, 112, 3, 3, 2), dwconv(32, 112, 112, 3, 3, 1)];
    l.push(LayerShape::pointwise(16, 32, 112, 112));
    let cfg: [(usize, usize, usize, usize, usize); 6] = [
        (3, 24, 3, 56, 3),
        (3, 40, 3, 28, 5),
        (6, 80, 3, 14, 5),
        (6, 96, 2, 14, 3),
        (6, 192, 4, 7, 5),
        (6, 320, 1, 7, 3),
    ];
    let mut in_c = 16;
    for (t, out_c, n, sp, kernel) in cfg {
        for _ in 0..n {
            let exp = in_c * t;
            l.push(LayerShape::pointwise(exp, in_c, sp, sp));
            l.push(dwconv(exp, sp, sp, kernel, kernel, 1));
            l.push(LayerShape::pointwise(out_c, exp, sp, sp));
            in_c = out_c;
        }
    }
    l.push(LayerShape::pointwise(1280, 320, 7, 7));
    l.push(fc(1000, 1280));
    Model::new("MnasNet", TaskType::Vision, l)
}

// ---------------------------------------------------------------------------
// Language models
// ---------------------------------------------------------------------------

/// GPT-2 (small): 12 transformer blocks, hidden 768, sequence length 256.
pub fn gpt2() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 256, dim: 768 }];
    for _ in 0..12 {
        transformer_block(768, 3072, 256, &mut l);
    }
    l.push(fc(50257, 768));
    Model::new("GPT2", TaskType::Language, l)
}

/// BERT-base: 12 transformer blocks, hidden 768, sequence length 128.
pub fn bert_base() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 128, dim: 768 }];
    for _ in 0..12 {
        transformer_block(768, 3072, 128, &mut l);
    }
    l.push(fc(768, 768));
    Model::new("BERT-base", TaskType::Language, l)
}

/// MobileBERT: 24 thin transformer blocks (hidden 128, bottlenecked FFN).
pub fn mobilebert() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 128, dim: 128 }];
    for _ in 0..24 {
        transformer_block(128, 512, 128, &mut l);
    }
    l.push(fc(128, 128));
    Model::new("MobileBert", TaskType::Language, l)
}

/// Transformer-XL (base): 16 blocks, hidden 410, FFN 2100, long context 512.
pub fn transformer_xl() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 512, dim: 410 }];
    for _ in 0..16 {
        transformer_block(410, 2100, 512, &mut l);
    }
    l.push(fc(410, 410));
    Model::new("TransformerXL", TaskType::Language, l)
}

/// XLNet (base): 12 blocks, hidden 768, sequence 384 (two-stream folded).
pub fn xlnet() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 384, dim: 768 }];
    for _ in 0..12 {
        transformer_block(768, 3072, 384, &mut l);
    }
    l.push(fc(768, 768));
    Model::new("XLNet", TaskType::Language, l)
}

/// An ELMo-style bi-LSTM language model; recurrent cells modelled as FCs.
pub fn elmo() -> Model {
    let mut l = vec![LayerShape::EmbeddingLookup { lookups: 128, dim: 512 }];
    for _ in 0..2 {
        // Per direction: 4 gate matrices on input + 4 on hidden state.
        for _ in 0..2 {
            l.push(fc(4 * 4096, 512));
            l.push(fc(4 * 4096, 4096));
            l.push(fc(512, 4096)); // projection
        }
    }
    l.push(fc(512, 1024));
    Model::new("ELMo", TaskType::Language, l)
}

// ---------------------------------------------------------------------------
// Recommendation models
// ---------------------------------------------------------------------------

/// DLRM (Naumov et al.): embedding lookups (host) + bottom/top MLP towers.
pub fn dlrm() -> Model {
    let l = vec![
        LayerShape::EmbeddingLookup { lookups: 26, dim: 64 },
        // bottom MLP 13-512-256-64
        fc(512, 13),
        fc(256, 512),
        fc(64, 256),
        // feature interaction approximated as a small GEMM
        LayerShape::Gemm { m: 27, n: 27, kdim: 64 },
        // top MLP 512-256-1
        fc(512, 479),
        fc(256, 512),
        fc(1, 256),
    ];
    Model::new("DLRM", TaskType::Recommendation, l)
}

/// Wide & Deep (Cheng et al.): wide linear part + deep MLP tower.
pub fn wide_deep() -> Model {
    let l = vec![
        LayerShape::EmbeddingLookup { lookups: 40, dim: 32 },
        fc(1024, 1280),
        fc(512, 1024),
        fc(256, 512),
        fc(1, 256),
    ];
    Model::new("WideDeep", TaskType::Recommendation, l)
}

/// Neural Collaborative Filtering (He et al.): tiny MLP on user/item factors.
pub fn ncf() -> Model {
    let l = vec![
        LayerShape::EmbeddingLookup { lookups: 2, dim: 64 },
        fc(256, 128),
        fc(128, 256),
        fc(64, 128),
        fc(1, 64),
    ];
    Model::new("NCF", TaskType::Recommendation, l)
}

/// Deep Interest Network (Zhou et al.): attention over behaviour sequence +
/// MLP tower.
pub fn din() -> Model {
    let l = vec![
        LayerShape::EmbeddingLookup { lookups: 100, dim: 32 },
        // local-activation attention MLPs over 100 behaviours
        LayerShape::Gemm { m: 100, n: 36, kdim: 128 },
        fc(36, 128),
        fc(1, 36),
        // top tower
        fc(200, 288),
        fc(80, 200),
        fc(2, 80),
    ];
    Model::new("DIN", TaskType::Recommendation, l)
}

/// Deep Interest Evolution Network: GRU-augmented DIN; GRU gates as FCs.
pub fn dien() -> Model {
    let l = vec![
        LayerShape::EmbeddingLookup { lookups: 100, dim: 32 },
        // GRU over the behaviour sequence (3 gates × (input + hidden))
        fc(3 * 64, 32),
        fc(3 * 64, 64),
        // AUGRU second pass
        fc(3 * 64, 64),
        fc(3 * 64, 64),
        // attention + top tower
        LayerShape::Gemm { m: 100, n: 64, kdim: 64 },
        fc(200, 256),
        fc(80, 200),
        fc(2, 80),
    ];
    Model::new("DIEN", TaskType::Recommendation, l)
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// All vision models in the zoo.
pub fn vision_models() -> Vec<Model> {
    vec![resnet50(), mobilenet_v2(), shufflenet(), vgg16(), squeezenet(), googlenet(), mnasnet()]
}

/// All language models in the zoo.
pub fn language_models() -> Vec<Model> {
    vec![gpt2(), bert_base(), mobilebert(), transformer_xl(), xlnet(), elmo()]
}

/// All recommendation models in the zoo.
pub fn recommendation_models() -> Vec<Model> {
    vec![dlrm(), wide_deep(), ncf(), din(), dien()]
}

/// Models belonging to a task category. For [`TaskType::Mix`] this returns
/// the union of all three categories.
pub fn models_for_task(task: TaskType) -> Vec<Model> {
    match task {
        TaskType::Vision => vision_models(),
        TaskType::Language => language_models(),
        TaskType::Recommendation => recommendation_models(),
        TaskType::Mix => {
            let mut all = vision_models();
            all.extend(language_models());
            all.extend(recommendation_models());
            all
        }
    }
}

/// The three representative models per task used in Fig. 7 of the paper.
pub fn fig7_models() -> Vec<Model> {
    vec![
        mobilenet_v2(),
        resnet50(),
        shufflenet(),
        gpt2(),
        mobilebert(),
        transformer_xl(),
        dlrm(),
        wide_deep(),
        ncf(),
    ]
}

/// Looks a model up by (case-insensitive) name.
pub fn by_name(name: &str) -> Option<Model> {
    models_for_task(TaskType::Mix).into_iter().find(|m| m.name().eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_is_populated() {
        assert_eq!(vision_models().len(), 7);
        assert_eq!(language_models().len(), 6);
        assert_eq!(recommendation_models().len(), 5);
        assert_eq!(models_for_task(TaskType::Mix).len(), 18);
    }

    #[test]
    fn all_models_have_accelerator_work() {
        for m in models_for_task(TaskType::Mix) {
            assert!(m.total_macs() > 0, "{} has no MACs", m.name());
            assert!(m.accelerator_layers().count() > 0, "{} has no accel layers", m.name());
        }
    }

    #[test]
    fn tasks_are_tagged_consistently() {
        for m in vision_models() {
            assert_eq!(m.task(), TaskType::Vision);
        }
        for m in language_models() {
            assert_eq!(m.task(), TaskType::Language);
        }
        for m in recommendation_models() {
            assert_eq!(m.task(), TaskType::Recommendation);
        }
    }

    #[test]
    fn vision_models_are_compute_heavier_per_layer_than_recom() {
        let avg = |ms: Vec<Model>| {
            let (macs, layers): (u64, usize) = ms
                .iter()
                .map(|m| (m.total_macs(), m.accelerator_layers().count()))
                .fold((0, 0), |(a, b), (c, d)| (a + c, b + d));
            macs as f64 / layers as f64
        };
        assert!(avg(vision_models()) > avg(recommendation_models()));
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("resnet50").is_some());
        assert!(by_name("DLRM").is_some());
        assert!(by_name("NoSuchNet").is_none());
    }

    #[test]
    fn resnet50_parameter_count_is_plausible() {
        // Real ResNet-50 has ~25.5M parameters; our table should be within 2x.
        let params = resnet50().total_weight_elems();
        assert!(params > 12_000_000 && params < 60_000_000, "params = {params}");
    }

    #[test]
    fn mobilenet_has_depthwise_layers() {
        let n_dw = mobilenet_v2()
            .layers()
            .iter()
            .filter(|l| matches!(l, LayerShape::DepthwiseConv2d { .. }))
            .count();
        assert!(n_dw >= 10);
    }

    #[test]
    fn fig7_models_cover_all_three_tasks() {
        let ms = fig7_models();
        assert_eq!(ms.len(), 9);
        for t in TaskType::PURE {
            assert_eq!(ms.iter().filter(|m| m.task() == t).count(), 3);
        }
    }

    #[test]
    fn recommendation_models_keep_embeddings_on_host() {
        for m in recommendation_models() {
            let has_emb =
                m.layers().iter().any(|l| matches!(l, LayerShape::EmbeddingLookup { .. }));
            assert!(has_emb, "{} should describe its embedding tables", m.name());
        }
    }
}
