//! Tensor-shape descriptions of DNN layers and their arithmetic/data costs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a single DNN layer, as seen by the mapper.
///
/// All shapes describe the work for **one sample** (batch size 1); a
/// [`Job`](crate::Job) multiplies by its mini-batch size. Dimension naming
/// follows the MAESTRO convention used in the paper:
///
/// * `k` — output channels, `c` — input channels,
/// * `y`/`x` — output feature-map height/width,
/// * `r`/`s` — filter height/width,
/// * FC/GEMM layers use `m`×`n`×`kdim` (`out_features` × `batch-dim` ×
///   `in_features`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerShape {
    /// Standard 2-D convolution.
    Conv2d {
        /// Output channels.
        k: usize,
        /// Input channels.
        c: usize,
        /// Output feature-map height.
        y: usize,
        /// Output feature-map width.
        x: usize,
        /// Filter height.
        r: usize,
        /// Filter width.
        s: usize,
        /// Convolution stride (same in both spatial dimensions).
        stride: usize,
    },
    /// Depth-wise 2-D convolution (one filter per channel, no cross-channel
    /// reduction). Memory-intensive relative to its MAC count.
    DepthwiseConv2d {
        /// Channels (input == output).
        c: usize,
        /// Output feature-map height.
        y: usize,
        /// Output feature-map width.
        x: usize,
        /// Filter height.
        r: usize,
        /// Filter width.
        s: usize,
        /// Convolution stride.
        stride: usize,
    },
    /// Fully-connected layer / GEMV for one sample: `out_features` ×
    /// `in_features` weight matrix applied to an `in_features` vector.
    FullyConnected {
        /// Output features.
        out_features: usize,
        /// Input features.
        in_features: usize,
    },
    /// General matrix multiply `m × kdim` times `kdim × n` (used for
    /// attention score/value matmuls where both operands are activations).
    Gemm {
        /// Rows of the output.
        m: usize,
        /// Columns of the output.
        n: usize,
        /// Contraction dimension.
        kdim: usize,
    },
    /// Embedding-table lookup: `lookups` gathers of `dim`-wide rows.
    ///
    /// The paper keeps embedding lookups on the CPU host; they are included
    /// here so model descriptions are complete, but workload generation skips
    /// them (see [`LayerShape::runs_on_accelerator`]).
    EmbeddingLookup {
        /// Number of table lookups per sample.
        lookups: usize,
        /// Embedding dimension.
        dim: usize,
    },
}

impl LayerShape {
    /// Convenience constructor for a pointwise (1×1) convolution.
    pub fn pointwise(k: usize, c: usize, y: usize, x: usize) -> Self {
        LayerShape::Conv2d { k, c, y, x, r: 1, s: 1, stride: 1 }
    }

    /// Number of multiply-accumulate operations for one sample.
    pub fn macs(&self) -> u64 {
        match *self {
            LayerShape::Conv2d { k, c, y, x, r, s, .. } => {
                k as u64 * c as u64 * y as u64 * x as u64 * r as u64 * s as u64
            }
            LayerShape::DepthwiseConv2d { c, y, x, r, s, .. } => {
                c as u64 * y as u64 * x as u64 * r as u64 * s as u64
            }
            LayerShape::FullyConnected { out_features, in_features } => {
                out_features as u64 * in_features as u64
            }
            LayerShape::Gemm { m, n, kdim } => m as u64 * n as u64 * kdim as u64,
            // A lookup is a copy, not a MAC; count zero compute.
            LayerShape::EmbeddingLookup { .. } => 0,
        }
    }

    /// Floating-point operations (2 × MACs) for one sample.
    pub fn flops(&self) -> u64 {
        self.macs() * 2
    }

    /// Number of weight (parameter) elements that must be fetched.
    pub fn weight_elems(&self) -> u64 {
        match *self {
            LayerShape::Conv2d { k, c, r, s, .. } => k as u64 * c as u64 * r as u64 * s as u64,
            LayerShape::DepthwiseConv2d { c, r, s, .. } => c as u64 * r as u64 * s as u64,
            LayerShape::FullyConnected { out_features, in_features } => {
                out_features as u64 * in_features as u64
            }
            // Both GEMM operands are activations.
            LayerShape::Gemm { .. } => 0,
            LayerShape::EmbeddingLookup { lookups, dim } => lookups as u64 * dim as u64,
        }
    }

    /// Number of input-activation elements for one sample.
    pub fn input_elems(&self) -> u64 {
        match *self {
            LayerShape::Conv2d { c, y, x, r, s, stride, .. } => {
                let in_y = y * stride + r.saturating_sub(stride);
                let in_x = x * stride + s.saturating_sub(stride);
                c as u64 * in_y as u64 * in_x as u64
            }
            LayerShape::DepthwiseConv2d { c, y, x, r, s, stride } => {
                let in_y = y * stride + r.saturating_sub(stride);
                let in_x = x * stride + s.saturating_sub(stride);
                c as u64 * in_y as u64 * in_x as u64
            }
            LayerShape::FullyConnected { in_features, .. } => in_features as u64,
            LayerShape::Gemm { m, n, kdim } => (m as u64 * kdim as u64) + (kdim as u64 * n as u64),
            LayerShape::EmbeddingLookup { lookups, .. } => lookups as u64,
        }
    }

    /// Number of output-activation elements for one sample.
    pub fn output_elems(&self) -> u64 {
        match *self {
            LayerShape::Conv2d { k, y, x, .. } => k as u64 * y as u64 * x as u64,
            LayerShape::DepthwiseConv2d { c, y, x, .. } => c as u64 * y as u64 * x as u64,
            LayerShape::FullyConnected { out_features, .. } => out_features as u64,
            LayerShape::Gemm { m, n, .. } => m as u64 * n as u64,
            LayerShape::EmbeddingLookup { lookups, dim } => lookups as u64 * dim as u64,
        }
    }

    /// Total tensor traffic (weights + inputs + outputs) for one sample, in
    /// elements. This is the data that must cross the DRAM↔accelerator
    /// boundary at least once.
    pub fn total_data_elems(&self) -> u64 {
        self.weight_elems() + self.input_elems() + self.output_elems()
    }

    /// Arithmetic intensity: MACs per element of data moved. Memory-bound
    /// layers (depth-wise conv, small FCs) have low intensity.
    pub fn arithmetic_intensity(&self) -> f64 {
        let data = self.total_data_elems();
        if data == 0 {
            return 0.0;
        }
        self.macs() as f64 / data as f64
    }

    /// Whether this layer is executed on the accelerator at all. Embedding
    /// lookups are kept on the CPU host, per the paper's assumption.
    pub fn runs_on_accelerator(&self) -> bool {
        !matches!(self, LayerShape::EmbeddingLookup { .. })
    }

    /// Whether this layer is convolution-like (has spatial reuse).
    pub fn is_conv_like(&self) -> bool {
        matches!(self, LayerShape::Conv2d { .. } | LayerShape::DepthwiseConv2d { .. })
    }

    /// Whether this layer is GEMM/FC-like (no spatial filter reuse).
    pub fn is_gemm_like(&self) -> bool {
        matches!(self, LayerShape::FullyConnected { .. } | LayerShape::Gemm { .. })
    }

    /// A short human-readable kind label, used in schedules and reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerShape::Conv2d { .. } => "CONV",
            LayerShape::DepthwiseConv2d { .. } => "DWCONV",
            LayerShape::FullyConnected { .. } => "FC",
            LayerShape::Gemm { .. } => "GEMM",
            LayerShape::EmbeddingLookup { .. } => "EMB",
        }
    }
}

impl fmt::Display for LayerShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LayerShape::Conv2d { k, c, y, x, r, s, stride } => {
                write!(f, "CONV k{k} c{c} y{y} x{x} r{r} s{s} st{stride}")
            }
            LayerShape::DepthwiseConv2d { c, y, x, r, s, stride } => {
                write!(f, "DWCONV c{c} y{y} x{x} r{r} s{s} st{stride}")
            }
            LayerShape::FullyConnected { out_features, in_features } => {
                write!(f, "FC {out_features}x{in_features}")
            }
            LayerShape::Gemm { m, n, kdim } => write!(f, "GEMM {m}x{n}x{kdim}"),
            LayerShape::EmbeddingLookup { lookups, dim } => write!(f, "EMB {lookups}x{dim}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn conv_macs_and_weights() {
        let l = LayerShape::Conv2d { k: 64, c: 3, y: 112, x: 112, r: 7, s: 7, stride: 2 };
        assert_eq!(l.macs(), 64 * 3 * 112 * 112 * 7 * 7);
        assert_eq!(l.weight_elems(), 64 * 3 * 7 * 7);
        assert!(l.is_conv_like());
        assert!(!l.is_gemm_like());
    }

    #[test]
    fn pointwise_constructor_is_1x1() {
        let l = LayerShape::pointwise(128, 64, 28, 28);
        match l {
            LayerShape::Conv2d { r, s, stride, .. } => {
                assert_eq!((r, s, stride), (1, 1, 1));
            }
            _ => panic!("pointwise should be Conv2d"),
        }
        assert_eq!(l.macs(), 128 * 64 * 28 * 28);
    }

    #[test]
    fn depthwise_has_low_intensity_vs_regular_conv() {
        let dw = LayerShape::DepthwiseConv2d { c: 256, y: 14, x: 14, r: 3, s: 3, stride: 1 };
        let conv = LayerShape::Conv2d { k: 256, c: 256, y: 14, x: 14, r: 3, s: 3, stride: 1 };
        assert!(dw.arithmetic_intensity() < conv.arithmetic_intensity());
    }

    #[test]
    fn fc_counts() {
        let l = LayerShape::FullyConnected { out_features: 1000, in_features: 2048 };
        assert_eq!(l.macs(), 1000 * 2048);
        assert_eq!(l.weight_elems(), 1000 * 2048);
        assert_eq!(l.input_elems(), 2048);
        assert_eq!(l.output_elems(), 1000);
        assert!(l.is_gemm_like());
    }

    #[test]
    fn gemm_has_no_weights() {
        let l = LayerShape::Gemm { m: 128, n: 128, kdim: 64 };
        assert_eq!(l.weight_elems(), 0);
        assert_eq!(l.macs(), 128 * 128 * 64);
    }

    #[test]
    fn embedding_runs_on_host() {
        let l = LayerShape::EmbeddingLookup { lookups: 26, dim: 64 };
        assert!(!l.runs_on_accelerator());
        assert_eq!(l.macs(), 0);
        assert!(l.weight_elems() > 0);
    }

    #[test]
    fn flops_is_twice_macs() {
        let l = LayerShape::FullyConnected { out_features: 10, in_features: 20 };
        assert_eq!(l.flops(), 2 * l.macs());
    }

    #[test]
    fn display_contains_kind() {
        let l = LayerShape::pointwise(8, 8, 4, 4);
        assert!(l.to_string().contains("CONV"));
        assert_eq!(l.kind_name(), "CONV");
    }

    #[test]
    fn stride_one_input_size_includes_halo() {
        let l = LayerShape::Conv2d { k: 1, c: 1, y: 10, x: 10, r: 3, s: 3, stride: 1 };
        // 10*1 + 3-1 = 12
        assert_eq!(l.input_elems(), 12 * 12);
    }

    proptest! {
        #[test]
        fn conv_macs_monotonic_in_channels(
            k in 1usize..64, c in 1usize..64, y in 1usize..32, x in 1usize..32,
            r in 1usize..5, s in 1usize..5,
        ) {
            let a = LayerShape::Conv2d { k, c, y, x, r, s, stride: 1 };
            let b = LayerShape::Conv2d { k: k + 1, c, y, x, r, s, stride: 1 };
            prop_assert!(b.macs() > a.macs());
        }

        #[test]
        fn total_data_is_sum_of_parts(
            m in 1usize..4096, n in 1usize..4096,
        ) {
            let l = LayerShape::FullyConnected { out_features: m, in_features: n };
            prop_assert_eq!(
                l.total_data_elems(),
                l.weight_elems() + l.input_elems() + l.output_elems()
            );
        }

        #[test]
        fn arithmetic_intensity_nonnegative(
            c in 1usize..512, y in 1usize..64, x in 1usize..64,
        ) {
            let l = LayerShape::DepthwiseConv2d { c, y, x, r: 3, s: 3, stride: 1 };
            prop_assert!(l.arithmetic_intensity() >= 0.0);
        }
    }
}
