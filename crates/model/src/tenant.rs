//! Tenants: the co-resident model owners of an online serving system.
//!
//! The paper's premise (Sections I & III) is a *multi-tenant* accelerator:
//! several application owners — a vision service, a language service, a
//! recommendation service — share one multi-core platform, and the host sees
//! an interleaved stream of their inference jobs. The static experiments of
//! the paper pre-form that stream into fixed groups; the online serving
//! simulator (`magma-serve`) instead draws arrivals from a [`TenantMix`],
//! one [`Tenant`] per co-resident service.
//!
//! Each tenant owns a slice of the [`zoo`] and emits jobs through
//! a [`TenantJobStream`]: a deterministic round-robin over its models'
//! accelerator layers, exactly mirroring how [`crate::workload`] interleaves
//! queued requests. Determinism matters twice — the serving simulator must be
//! bit-reproducible at a fixed seed, and a periodic per-tenant job stream is
//! what makes repeated-tenant traffic actually *repeat* (the property the
//! signature-keyed mapping cache exploits).

use crate::{zoo, Job, JobId, LayerShape, Model, TaskType};

/// One co-resident service: a named owner of a set of models, with a traffic
/// weight used when sampling which tenant the next arrival belongs to and an
/// optional per-tenant SLA contract multiplier.
#[derive(Debug, Clone, PartialEq)]
pub struct Tenant {
    name: String,
    task: TaskType,
    models: Vec<Model>,
    weight: f64,
    sla_multiplier: Option<f64>,
}

impl Tenant {
    /// Creates a tenant owning `models`, with relative traffic `weight` and
    /// no per-tenant SLA contract (the serving layer's uniform bound
    /// applies; see [`Tenant::with_sla_multiplier`]).
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty, if none of the models has a layer that
    /// runs on the accelerator, or if `weight` is not finite and positive.
    pub fn new(name: impl Into<String>, task: TaskType, models: Vec<Model>, weight: f64) -> Self {
        assert!(!models.is_empty(), "a tenant must own at least one model");
        assert!(
            models.iter().any(|m| m.accelerator_layers().next().is_some()),
            "a tenant's models must contain at least one accelerator layer"
        );
        assert!(weight.is_finite() && weight > 0.0, "tenant weight must be finite and positive");
        Tenant { name: name.into(), task, models, weight, sla_multiplier: None }
    }

    /// Attaches a per-tenant SLA contract: the serving layer's baseline SLA
    /// bound is scaled by `multiplier` for this tenant's jobs (e.g. `0.5`
    /// for a latency-critical tenant on half the uniform bound, `2.0` for a
    /// batch tenant tolerating twice the bound). Tenants without a
    /// multiplier keep the uniform bound.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is not finite and positive.
    pub fn with_sla_multiplier(mut self, multiplier: f64) -> Self {
        assert!(
            multiplier.is_finite() && multiplier > 0.0,
            "an SLA multiplier must be finite and positive"
        );
        self.sla_multiplier = Some(multiplier);
        self
    }

    /// The per-tenant SLA multiplier, if one was contracted.
    pub fn sla_multiplier(&self) -> Option<f64> {
        self.sla_multiplier
    }

    /// The SLA bound this tenant is held to, given the serving layer's
    /// baseline bound: `base_sla_sec` scaled by the contracted multiplier,
    /// or the baseline itself without a contract.
    pub fn effective_sla_sec(&self, base_sla_sec: f64) -> f64 {
        base_sla_sec * self.sla_multiplier.unwrap_or(1.0)
    }

    /// The tenant's human-readable name (appears in per-tenant metrics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The application domain of the tenant's traffic.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// The models this tenant serves requests from.
    pub fn models(&self) -> &[Model] {
        &self.models
    }

    /// The tenant's relative traffic weight.
    pub fn weight(&self) -> f64 {
        self.weight
    }

    /// A job stream over this tenant's models at the given mini-batch size.
    pub fn job_stream(&self, mini_batch: usize) -> TenantJobStream {
        TenantJobStream::new(self, mini_batch)
    }
}

/// The set of tenants sharing the platform, with weighted traffic sampling.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantMix {
    tenants: Vec<Tenant>,
}

impl TenantMix {
    /// Creates a mix from an explicit tenant list.
    ///
    /// # Panics
    ///
    /// Panics if `tenants` is empty.
    pub fn new(tenants: Vec<Tenant>) -> Self {
        assert!(!tenants.is_empty(), "a tenant mix must contain at least one tenant");
        TenantMix { tenants }
    }

    /// The standard data-center mix: one equally weighted tenant per pure
    /// task category (vision, language, recommendation), each owning the
    /// zoo's full model set for its category — the serving analogue of the
    /// paper's Mix task.
    pub fn standard() -> Self {
        TenantMix::new(vec![
            Tenant::new("vision", TaskType::Vision, zoo::vision_models(), 1.0),
            Tenant::new("language", TaskType::Language, zoo::language_models(), 1.0),
            Tenant::new(
                "recommendation",
                TaskType::Recommendation,
                zoo::recommendation_models(),
                1.0,
            ),
        ])
    }

    /// A single-tenant mix — the repeated-tenant traffic pattern where the
    /// same service's job windows recur and the mapping cache pays off.
    pub fn single(name: impl Into<String>, task: TaskType, models: Vec<Model>) -> Self {
        TenantMix::new(vec![Tenant::new(name, task, models, 1.0)])
    }

    /// A synthetic fleet-scale mix of `n` tenants, deterministic in `seed`
    /// and free of any ambient RNG (a splitmix64 hash assigns models).
    ///
    /// Tenant `k` owns a single model drawn from the full zoo (hashed by
    /// `seed`, so different seeds shuffle ownership), its traffic weight
    /// follows a Zipf-like `1/(1+k)^0.7` tail — a few head tenants dominate,
    /// the long tail trickles, which is what makes signature-keyed caching
    /// and affinity routing meaningful at fleet scale — and a deterministic
    /// fraction carry SLA contracts: every 5th tenant is latency-critical
    /// (multiplier 0.5), every 7th-plus-3 is batch-tolerant (2.0).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn synthetic(n: usize, seed: u64) -> Self {
        assert!(n > 0, "a synthetic mix needs at least one tenant");
        let zoo_models: Vec<Model> = zoo::vision_models()
            .into_iter()
            .chain(zoo::language_models())
            .chain(zoo::recommendation_models())
            .collect();
        let tenants = (0..n)
            .map(|k| {
                let model =
                    zoo_models[(splitmix64(seed ^ k as u64) as usize) % zoo_models.len()].clone();
                let task = model.task();
                let weight = 1.0 / (1.0 + k as f64).powf(0.7);
                let tenant = Tenant::new(format!("t{k:05}"), task, vec![model], weight);
                if k % 5 == 0 {
                    tenant.with_sla_multiplier(0.5)
                } else if k % 7 == 3 {
                    tenant.with_sla_multiplier(2.0)
                } else {
                    tenant
                }
            })
            .collect();
        TenantMix::new(tenants)
    }

    /// Attaches per-tenant SLA contracts to an existing mix, in tenant
    /// order: `multipliers[i]` becomes tenant `i`'s SLA multiplier (see
    /// [`Tenant::with_sla_multiplier`]). The idiomatic way to build, e.g., a
    /// standard mix where the vision tenant is latency-critical:
    /// `TenantMix::standard().with_sla_multipliers(&[0.5, 1.0, 2.0])`.
    ///
    /// # Panics
    ///
    /// Panics if `multipliers.len() != self.len()` or any multiplier is not
    /// finite and positive.
    pub fn with_sla_multipliers(mut self, multipliers: &[f64]) -> Self {
        assert_eq!(multipliers.len(), self.tenants.len(), "one SLA multiplier per tenant");
        self.tenants = self
            .tenants
            .into_iter()
            .zip(multipliers)
            .map(|(t, &x)| t.with_sla_multiplier(x))
            .collect();
        self
    }

    /// The tenants in the mix.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// Number of tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether the mix is empty (never true for a constructed mix).
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Picks a tenant index given per-tenant effective weights and a uniform
    /// draw `u` in `[0, 1)`. Exposed so trace generators can modulate the
    /// weights over time (tenant-mix drift) while keeping selection
    /// deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != self.len()` or if no weight is positive.
    pub fn pick(&self, weights: &[f64], u: f64) -> usize {
        assert_eq!(weights.len(), self.tenants.len(), "one weight per tenant");
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        assert!(total > 0.0, "at least one tenant weight must be positive");
        let mut target = u.clamp(0.0, 1.0) * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if target < w {
                    return i;
                }
                target -= w;
            }
        }
        // Rounding at u ≈ 1.0 lands past the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0).unwrap()
    }
}

/// A deterministic, endless job stream for one tenant.
///
/// Jobs are produced by round-robining over the tenant's models and walking
/// each model's accelerator layers in order, wrapping around — the exact
/// interleaving of [`crate::workload::build_jobs_from_models`], but
/// incremental, so an online simulator can pull one job per request. The
/// stream is a pure function of the tenant (no RNG): a tenant's k-th job is
/// always the same, which makes repeated-tenant traffic periodic.
#[derive(Debug, Clone)]
pub struct TenantJobStream {
    models: Vec<Model>,
    layer_lists: Vec<Vec<(usize, LayerShape)>>,
    cursors: Vec<usize>,
    next_model: usize,
    mini_batch: usize,
}

impl TenantJobStream {
    /// Creates the stream at the given mini-batch size.
    ///
    /// # Panics
    ///
    /// Panics if `mini_batch == 0`.
    pub fn new(tenant: &Tenant, mini_batch: usize) -> Self {
        assert!(mini_batch > 0, "mini-batch must be non-zero");
        let layer_lists = tenant
            .models
            .iter()
            .map(|m| {
                m.layers()
                    .iter()
                    .enumerate()
                    .filter(|(_, l)| l.runs_on_accelerator())
                    .map(|(i, l)| (i, *l))
                    .collect()
            })
            .collect();
        TenantJobStream {
            models: tenant.models.clone(),
            layer_lists,
            cursors: vec![0; tenant.models.len()],
            next_model: 0,
            mini_batch,
        }
    }

    /// Produces the next job of the stream with the given id.
    pub fn next_job(&mut self, id: JobId) -> Job {
        loop {
            let m = self.next_model % self.models.len();
            self.next_model += 1;
            let layers = &self.layer_lists[m];
            if layers.is_empty() {
                continue;
            }
            let (layer_index, layer) = layers[self.cursors[m] % layers.len()];
            self.cursors[m] += 1;
            return Job::new(
                id,
                self.models[m].name(),
                layer_index,
                layer,
                self.mini_batch,
                self.models[m].task(),
            );
        }
    }

    /// The length of the stream's period in emitted jobs: after this many
    /// jobs every model cursor and the round-robin position are back at their
    /// initial state, so the stream repeats exactly.
    pub fn period(&self) -> usize {
        let nonempty: Vec<usize> =
            self.layer_lists.iter().map(|l| l.len()).filter(|&n| n > 0).collect();
        nonempty.iter().fold(1, |acc, &n| lcm(acc, n)) * nonempty.len().max(1)
    }
}

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit hash used for
/// deterministic synthetic-mix assignment without pulling an RNG into the
/// model crate.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: usize, b: usize) -> usize {
    a / gcd(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mix_covers_all_pure_tasks() {
        let mix = TenantMix::standard();
        assert_eq!(mix.len(), 3);
        assert!(!mix.is_empty());
        for (tenant, task) in mix.tenants().iter().zip(TaskType::PURE) {
            assert_eq!(tenant.task(), task);
            assert!(tenant.weight() > 0.0);
            assert!(!tenant.models().is_empty());
        }
    }

    #[test]
    fn single_mix_has_one_tenant() {
        let mix = TenantMix::single("recom", TaskType::Recommendation, vec![zoo::ncf()]);
        assert_eq!(mix.len(), 1);
        assert_eq!(mix.tenants()[0].name(), "recom");
    }

    #[test]
    fn pick_is_weight_proportional_and_total_order_stable() {
        let mix = TenantMix::standard();
        // u in the first third → tenant 0, middle third → 1, last third → 2.
        assert_eq!(mix.pick(&[1.0, 1.0, 1.0], 0.0), 0);
        assert_eq!(mix.pick(&[1.0, 1.0, 1.0], 0.5), 1);
        assert_eq!(mix.pick(&[1.0, 1.0, 1.0], 0.999), 2);
        // Zero weights are skipped entirely.
        assert_eq!(mix.pick(&[0.0, 1.0, 0.0], 0.7), 1);
        // u == 1.0 still lands on the last positive weight.
        assert_eq!(mix.pick(&[1.0, 1.0, 0.0], 1.0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one tenant weight")]
    fn pick_rejects_all_zero_weights() {
        let mix = TenantMix::single("v", TaskType::Vision, vec![zoo::shufflenet()]);
        let _ = mix.pick(&[0.0], 0.5);
    }

    #[test]
    fn synthetic_mix_is_deterministic_and_fleet_shaped() {
        let a = TenantMix::synthetic(100, 42);
        assert_eq!(a, TenantMix::synthetic(100, 42));
        assert_ne!(a, TenantMix::synthetic(100, 43), "the seed must shuffle model ownership");
        assert_eq!(a.len(), 100);
        // Zipf head dominates the tail.
        assert!(a.tenants()[0].weight() > a.tenants()[99].weight() * 10.0);
        // The deterministic contract pattern: every 5th tight, 7th+3 loose.
        assert_eq!(a.tenants()[0].sla_multiplier(), Some(0.5));
        assert_eq!(a.tenants()[3].sla_multiplier(), Some(2.0));
        assert_eq!(a.tenants()[1].sla_multiplier(), None);
        // Every tenant emits jobs.
        for t in a.tenants() {
            assert_eq!(t.models().len(), 1);
            assert!(t.weight() > 0.0);
        }
    }

    #[test]
    fn job_stream_matches_workload_interleaving() {
        // The incremental stream must produce exactly the jobs of the batch
        // generator over the same model list.
        let tenant = Tenant::new("v", TaskType::Vision, zoo::vision_models(), 1.0);
        let batch = crate::workload::build_jobs_from_models(tenant.models(), 40, 4);
        let mut stream = tenant.job_stream(4);
        for want in batch {
            let got = stream.next_job(want.id());
            assert_eq!(got, want);
        }
    }

    #[test]
    fn job_stream_is_periodic() {
        let tenant = Tenant::new("r", TaskType::Recommendation, vec![zoo::ncf()], 1.0);
        let period = tenant.job_stream(4).period();
        assert!(period > 0);
        let mut a = tenant.job_stream(4);
        let first: Vec<Job> = (0..period).map(|i| a.next_job(JobId(i))).collect();
        let second: Vec<Job> = (0..period).map(|i| a.next_job(JobId(i))).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn job_stream_mini_batch_is_propagated() {
        let tenant = Tenant::new("l", TaskType::Language, zoo::language_models(), 2.0);
        let mut stream = tenant.job_stream(8);
        for i in 0..10 {
            assert_eq!(stream.next_job(JobId(i)).batch(), 8);
        }
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn tenant_without_models_panics() {
        let _ = Tenant::new("empty", TaskType::Vision, vec![], 1.0);
    }

    #[test]
    fn sla_multiplier_defaults_to_the_uniform_bound() {
        let t = Tenant::new("v", TaskType::Vision, vec![zoo::shufflenet()], 1.0);
        assert_eq!(t.sla_multiplier(), None);
        assert_eq!(t.effective_sla_sec(3.0), 3.0);
        let tight = t.with_sla_multiplier(0.5);
        assert_eq!(tight.sla_multiplier(), Some(0.5));
        assert_eq!(tight.effective_sla_sec(3.0), 1.5);
    }

    #[test]
    fn mix_threads_sla_multipliers_in_tenant_order() {
        let mix = TenantMix::standard().with_sla_multipliers(&[0.5, 1.0, 2.0]);
        let m: Vec<Option<f64>> = mix.tenants().iter().map(|t| t.sla_multiplier()).collect();
        assert_eq!(m, vec![Some(0.5), Some(1.0), Some(2.0)]);
    }

    #[test]
    #[should_panic(expected = "one SLA multiplier per tenant")]
    fn mismatched_sla_multiplier_count_panics() {
        let _ = TenantMix::standard().with_sla_multipliers(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn non_positive_sla_multiplier_panics() {
        let t = Tenant::new("v", TaskType::Vision, vec![zoo::shufflenet()], 1.0);
        let _ = t.with_sla_multiplier(0.0);
    }
}
