//! Deterministic multi-tenant workload generation.
//!
//! A workload mimics the batched-job tasks of an inference data center: many
//! independent mini-batches of layers from several co-resident models. The
//! host chops the job pool into dependency-free [`Group`]s that the mapper
//! schedules one at a time.

use crate::{zoo, Group, Job, JobId, Model, TaskType};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Default mini-batch size used when slicing batched activations into jobs.
pub const DEFAULT_MINI_BATCH: usize = 4;

/// Specification of a synthetic multi-tenant workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    task: TaskType,
    num_jobs: usize,
    mini_batch: usize,
    seed: u64,
}

impl WorkloadSpec {
    /// Creates a workload of `num_jobs` jobs drawn from the models of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `num_jobs == 0`.
    pub fn new(task: TaskType, num_jobs: usize) -> Self {
        assert!(num_jobs > 0, "a workload must contain at least one job");
        WorkloadSpec { task, num_jobs, mini_batch: DEFAULT_MINI_BATCH, seed: 0 }
    }

    /// Sets the RNG seed used to interleave models (default 0).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mini-batch size per job (default [`DEFAULT_MINI_BATCH`]).
    ///
    /// # Panics
    ///
    /// Panics if `mini_batch == 0`.
    pub fn with_mini_batch(mut self, mini_batch: usize) -> Self {
        assert!(mini_batch > 0, "mini-batch must be non-zero");
        self.mini_batch = mini_batch;
        self
    }

    /// The task category of this workload.
    pub fn task(&self) -> TaskType {
        self.task
    }

    /// Number of jobs the workload will contain.
    pub fn num_jobs(&self) -> usize {
        self.num_jobs
    }

    /// The mini-batch size per job.
    pub fn mini_batch(&self) -> usize {
        self.mini_batch
    }

    /// Generates the job pool.
    ///
    /// Jobs are produced by round-robining over the task's models with a
    /// seeded shuffle of the model order, walking each model's accelerator
    /// layers in order and wrapping around until `num_jobs` jobs exist. This
    /// mirrors how hundreds of queued inference requests from co-resident
    /// models interleave.
    pub fn build_jobs(&self) -> Vec<Job> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut models = zoo::models_for_task(self.task);
        models.shuffle(&mut rng);
        build_jobs_from_models(&models, self.num_jobs, self.mini_batch)
    }

    /// Generates the job pool and chops it into dependency-free groups of
    /// `group_size` jobs (the last group may be smaller).
    ///
    /// # Panics
    ///
    /// Panics if `group_size == 0`.
    pub fn build_groups(&self, group_size: usize) -> Vec<Group> {
        assert!(group_size > 0, "group size must be non-zero");
        let jobs = self.build_jobs();
        jobs.chunks(group_size).map(|c| Group::new(c.to_vec())).collect()
    }

    /// Convenience: builds a single group containing exactly `group_size`
    /// jobs (the workload is sized to match).
    pub fn single_group(task: TaskType, group_size: usize, seed: u64) -> Group {
        WorkloadSpec::new(task, group_size)
            .with_seed(seed)
            .build_groups(group_size)
            .into_iter()
            .next()
            .expect("group_size > 0 always yields one group")
    }
}

/// Builds `num_jobs` jobs by interleaving the accelerator layers of the given
/// models, each as a mini-batch of `mini_batch` samples.
///
/// Exposed for callers that want to control the exact model list (e.g. the
/// warm-start experiments, which need several *different* groups of the same
/// task type).
pub fn build_jobs_from_models(models: &[Model], num_jobs: usize, mini_batch: usize) -> Vec<Job> {
    assert!(!models.is_empty(), "need at least one model to build jobs");
    assert!(mini_batch > 0);
    // Per-model cursor over its accelerator layers.
    let layer_lists: Vec<Vec<(usize, crate::LayerShape)>> = models
        .iter()
        .map(|m| {
            m.layers()
                .iter()
                .enumerate()
                .filter(|(_, l)| l.runs_on_accelerator())
                .map(|(i, l)| (i, *l))
                .collect()
        })
        .collect();
    let mut cursors = vec![0usize; models.len()];
    let mut jobs = Vec::with_capacity(num_jobs);
    let mut mi = 0usize;
    while jobs.len() < num_jobs {
        let m = mi % models.len();
        let layers = &layer_lists[m];
        if !layers.is_empty() {
            let (layer_index, layer) = layers[cursors[m] % layers.len()];
            cursors[m] += 1;
            jobs.push(Job::new(
                JobId(jobs.len()),
                models[m].name(),
                layer_index,
                layer,
                mini_batch,
                models[m].task(),
            ));
        }
        mi += 1;
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn builds_requested_number_of_jobs() {
        let spec = WorkloadSpec::new(TaskType::Vision, 250).with_seed(1);
        assert_eq!(spec.build_jobs().len(), 250);
    }

    #[test]
    fn groups_cover_all_jobs() {
        let spec = WorkloadSpec::new(TaskType::Language, 230).with_seed(3);
        let groups = spec.build_groups(100);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 230);
        assert_eq!(groups[2].len(), 30);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = WorkloadSpec::new(TaskType::Mix, 100).with_seed(9).build_jobs();
        let b = WorkloadSpec::new(TaskType::Mix, 100).with_seed(9).build_jobs();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::new(TaskType::Mix, 100).with_seed(1).build_jobs();
        let b = WorkloadSpec::new(TaskType::Mix, 100).with_seed(2).build_jobs();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_workload_contains_all_three_tasks() {
        let jobs = WorkloadSpec::new(TaskType::Mix, 200).with_seed(0).build_jobs();
        for t in TaskType::PURE {
            assert!(jobs.iter().any(|j| j.task() == t), "missing {t}");
        }
    }

    #[test]
    fn pure_workload_contains_only_its_task() {
        let jobs = WorkloadSpec::new(TaskType::Recommendation, 120).with_seed(0).build_jobs();
        assert!(jobs.iter().all(|j| j.task() == TaskType::Recommendation));
    }

    #[test]
    fn single_group_has_exact_size() {
        let g = WorkloadSpec::single_group(TaskType::Mix, 60, 5);
        assert_eq!(g.len(), 60);
    }

    #[test]
    fn mini_batch_is_propagated() {
        let jobs = WorkloadSpec::new(TaskType::Vision, 10).with_mini_batch(8).build_jobs();
        assert!(jobs.iter().all(|j| j.batch() == 8));
    }

    #[test]
    #[should_panic(expected = "at least one job")]
    fn zero_jobs_panics() {
        let _ = WorkloadSpec::new(TaskType::Vision, 0);
    }

    #[test]
    fn no_embedding_jobs_are_generated() {
        let jobs = WorkloadSpec::new(TaskType::Recommendation, 300).with_seed(0).build_jobs();
        assert!(jobs.iter().all(|j| j.layer().runs_on_accelerator()));
    }

    proptest! {
        #[test]
        fn group_ids_are_contiguous(n in 1usize..300, gs in 1usize..120, seed in 0u64..50) {
            let groups = WorkloadSpec::new(TaskType::Mix, n).with_seed(seed).build_groups(gs);
            for g in groups {
                for (i, j) in g.iter().enumerate() {
                    prop_assert_eq!(j.id().0, i);
                }
            }
        }

        #[test]
        fn workload_size_always_honored(n in 1usize..500, seed in 0u64..20) {
            let jobs = WorkloadSpec::new(TaskType::Vision, n).with_seed(seed).build_jobs();
            prop_assert_eq!(jobs.len(), n);
        }
    }
}
