//! The accelerator platform: several sub-accelerator cores sharing one
//! system-bandwidth budget.

use magma_cost::SubAccelConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default system bandwidth for Small accelerators (GB/s), Section VI-A3.
pub const DEFAULT_SMALL_BW_GBPS: f64 = 16.0;

/// Default system bandwidth for Large accelerators (GB/s), Section VI-A3.
pub const DEFAULT_LARGE_BW_GBPS: f64 = 256.0;

/// A multi-core accelerator: an ordered list of sub-accelerator cores plus
/// the shared system bandwidth (min of DRAM/HBM BW and PCIe/M.2 BW).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorPlatform {
    name: String,
    sub_accels: Vec<SubAccelConfig>,
    system_bw_gbps: f64,
}

impl AcceleratorPlatform {
    /// Creates a platform from a list of sub-accelerators and a system
    /// bandwidth budget in GB/s.
    ///
    /// # Panics
    ///
    /// Panics if `sub_accels` is empty or `system_bw_gbps` is not positive.
    pub fn new(
        name: impl Into<String>,
        sub_accels: Vec<SubAccelConfig>,
        system_bw_gbps: f64,
    ) -> Self {
        assert!(!sub_accels.is_empty(), "a platform needs at least one sub-accelerator");
        assert!(system_bw_gbps > 0.0, "system bandwidth must be positive");
        AcceleratorPlatform { name: name.into(), sub_accels, system_bw_gbps }
    }

    /// The platform's name (e.g. `"S4"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sub-accelerator cores, in index order (the order genes refer to).
    pub fn sub_accels(&self) -> &[SubAccelConfig] {
        &self.sub_accels
    }

    /// Number of sub-accelerator cores.
    pub fn num_sub_accels(&self) -> usize {
        self.sub_accels.len()
    }

    /// The shared system bandwidth in GB/s.
    pub fn system_bw_gbps(&self) -> f64 {
        self.system_bw_gbps
    }

    /// Returns a copy with a different system bandwidth (used by the BW
    /// sweeps of Fig. 12/13).
    pub fn with_system_bw_gbps(mut self, bw: f64) -> Self {
        assert!(bw > 0.0, "system bandwidth must be positive");
        self.system_bw_gbps = bw;
        self
    }

    /// Returns a copy with every core's PE-array shape marked flexible
    /// (Section VI-F) and the buffers set to the flexible-accelerator sizes
    /// (1 KB SL per PE, 2 MB SG per core).
    pub fn into_flexible(mut self) -> Self {
        self.name = format!("{}-flex", self.name);
        self.sub_accels = self
            .sub_accels
            .into_iter()
            .map(|c| {
                let name = format!("{}-flex", c.name());
                SubAccelConfig::new(name, c.pe_rows(), c.pe_cols(), c.dataflow(), 2 * 1024 * 1024)
                    .with_sl_bytes(1024)
                    .with_frequency_mhz(c.frequency_mhz())
                    .with_flexible_shape(true)
            })
            .collect();
        self
    }

    /// Whether every core has the same PE count, dataflow and buffers.
    pub fn is_homogeneous(&self) -> bool {
        let first = &self.sub_accels[0];
        self.sub_accels.iter().all(|c| {
            c.num_pes() == first.num_pes()
                && c.dataflow() == first.dataflow()
                && c.sg_bytes() == first.sg_bytes()
        })
    }

    /// Total number of PEs across all cores.
    pub fn total_pes(&self) -> usize {
        self.sub_accels.iter().map(|c| c.num_pes()).sum()
    }

    /// Aggregate peak throughput in GFLOP/s across all cores.
    pub fn peak_gflops(&self) -> f64 {
        self.sub_accels.iter().map(|c| c.peak_gflops()).sum()
    }

    /// A one-line-per-core description used by reports.
    pub fn describe(&self) -> String {
        let mut s = format!(
            "{}: {} cores, system BW {} GB/s\n",
            self.name,
            self.num_sub_accels(),
            self.system_bw_gbps
        );
        for c in &self.sub_accels {
            s.push_str(&format!("  {c}\n"));
        }
        s
    }
}

impl fmt::Display for AcceleratorPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} cores, {} GB/s)", self.name, self.num_sub_accels(), self.system_bw_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_cost::DataflowStyle;

    fn core(name: &str, rows: usize, df: DataflowStyle) -> SubAccelConfig {
        SubAccelConfig::new(name, rows, 64, df, 146 * 1024)
    }

    #[test]
    fn homogeneity_detection() {
        let homog = AcceleratorPlatform::new(
            "h",
            vec![
                core("a", 32, DataflowStyle::HighBandwidth),
                core("b", 32, DataflowStyle::HighBandwidth),
            ],
            16.0,
        );
        assert!(homog.is_homogeneous());
        let hetero = AcceleratorPlatform::new(
            "x",
            vec![
                core("a", 32, DataflowStyle::HighBandwidth),
                core("b", 32, DataflowStyle::LowBandwidth),
            ],
            16.0,
        );
        assert!(!hetero.is_homogeneous());
    }

    #[test]
    fn totals() {
        let p = AcceleratorPlatform::new(
            "p",
            vec![
                core("a", 32, DataflowStyle::HighBandwidth),
                core("b", 64, DataflowStyle::HighBandwidth),
            ],
            16.0,
        );
        assert_eq!(p.total_pes(), 32 * 64 + 64 * 64);
        assert!(p.peak_gflops() > 0.0);
        assert_eq!(p.num_sub_accels(), 2);
    }

    #[test]
    fn bw_override() {
        let p =
            AcceleratorPlatform::new("p", vec![core("a", 32, DataflowStyle::HighBandwidth)], 16.0)
                .with_system_bw_gbps(1.0);
        assert_eq!(p.system_bw_gbps(), 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_platform_panics() {
        let _ = AcceleratorPlatform::new("empty", vec![], 16.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nonpositive_bw_panics() {
        let _ =
            AcceleratorPlatform::new("p", vec![core("a", 32, DataflowStyle::HighBandwidth)], 0.0);
    }

    #[test]
    fn flexible_conversion_preserves_pe_count_and_dataflow() {
        let p = AcceleratorPlatform::new(
            "p",
            vec![
                core("a", 32, DataflowStyle::HighBandwidth),
                core("b", 32, DataflowStyle::LowBandwidth),
            ],
            16.0,
        );
        let f = p.clone().into_flexible();
        assert_eq!(f.total_pes(), p.total_pes());
        for (a, b) in p.sub_accels().iter().zip(f.sub_accels()) {
            assert_eq!(a.dataflow(), b.dataflow());
            assert!(b.flexible_shape());
            assert_eq!(b.sg_bytes(), 2 * 1024 * 1024);
        }
        assert!(f.name().ends_with("-flex"));
    }

    #[test]
    fn describe_lists_every_core() {
        let p = AcceleratorPlatform::new(
            "p",
            vec![
                core("a", 32, DataflowStyle::HighBandwidth),
                core("b", 32, DataflowStyle::LowBandwidth),
            ],
            16.0,
        );
        let d = p.describe();
        assert!(d.contains("a [") && d.contains("b ["));
    }
}
