//! The six accelerator settings of Table III, their default bandwidths, and
//! the process-wide runtime knobs (`MAGMA_THREADS`).

use crate::platform::{AcceleratorPlatform, DEFAULT_LARGE_BW_GBPS, DEFAULT_SMALL_BW_GBPS};
use magma_cost::{DataflowStyle, SubAccelConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reads the `MAGMA_THREADS` environment knob: how many worker threads batch
/// fitness evaluation (`magma_optim::parallel`) may use.
///
/// Unset, empty, unparsable or zero values fall back to the machine's
/// available parallelism (itself falling back to 1), so the knob can never
/// disable evaluation. The result is always ≥ 1; `MAGMA_THREADS=1` forces
/// fully serial evaluation.
pub fn magma_threads() -> usize {
    match std::env::var("MAGMA_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// The accelerator settings evaluated in the paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// Small homogeneous: 4 × (32-row PE array, HB dataflow, 146 KB buffer).
    S1,
    /// Small heterogeneous: 3 × (32, HB, 146 KB) + 1 × (32, LB, 110 KB).
    S2,
    /// Large homogeneous: 8 × (128, HB, 580 KB).
    S3,
    /// Large heterogeneous: 7 × (128, HB, 580 KB) + 1 × (128, LB, 434 KB).
    S4,
    /// Large heterogeneous Big.Little: 3 × (128, HB) + 1 × (128, LB) +
    /// 3 × (64, HB) + 1 × (64, LB).
    S5,
    /// Large scale-up (16 cores): 7 × (128, HB) + 1 × (128, LB) +
    /// 7 × (64, HB) + 1 × (64, LB).
    S6,
}

impl Setting {
    /// All six settings in Table III order.
    pub const ALL: [Setting; 6] =
        [Setting::S1, Setting::S2, Setting::S3, Setting::S4, Setting::S5, Setting::S6];

    /// Whether the setting is one of the Small-class accelerators.
    pub fn is_small(self) -> bool {
        matches!(self, Setting::S1 | Setting::S2)
    }

    /// The default system bandwidth the paper pairs with this setting.
    pub fn default_bw_gbps(self) -> f64 {
        if self.is_small() {
            DEFAULT_SMALL_BW_GBPS
        } else {
            DEFAULT_LARGE_BW_GBPS
        }
    }

    /// The bandwidth sweep range the paper uses for this accelerator class
    /// (DDR1–DDR4 / PCIe for Small, DDR4–HBM / PCIe3–6 for Large).
    pub fn bw_sweep_gbps(self) -> Vec<f64> {
        if self.is_small() {
            vec![1.0, 4.0, 8.0, 16.0]
        } else {
            vec![1.0, 16.0, 64.0, 256.0]
        }
    }

    /// The paper's descriptive name for the setting.
    pub fn description(self) -> &'static str {
        match self {
            Setting::S1 => "Small Homogeneous",
            Setting::S2 => "Small Heterogeneous",
            Setting::S3 => "Large Homogeneous",
            Setting::S4 => "Large Heterogeneous",
            Setting::S5 => "Large Heterogeneous BigLittle",
            Setting::S6 => "Large Scale-up",
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

const KB: usize = 1024;

fn hb(name: String, rows: usize, sg_kb: usize) -> SubAccelConfig {
    SubAccelConfig::new(name, rows, 64, DataflowStyle::HighBandwidth, sg_kb * KB)
}

fn lb(name: String, rows: usize, sg_kb: usize) -> SubAccelConfig {
    SubAccelConfig::new(name, rows, 64, DataflowStyle::LowBandwidth, sg_kb * KB)
}

/// Builds a [`Setting`] with its default system bandwidth.
pub fn build(setting: Setting) -> AcceleratorPlatform {
    build_with_bw(setting, setting.default_bw_gbps())
}

/// Builds a [`Setting`] with an explicit system bandwidth in GB/s.
pub fn build_with_bw(setting: Setting, bw_gbps: f64) -> AcceleratorPlatform {
    let mut cores = Vec::new();
    match setting {
        Setting::S1 => {
            for i in 0..4 {
                cores.push(hb(format!("S1-hb{i}"), 32, 146));
            }
        }
        Setting::S2 => {
            for i in 0..3 {
                cores.push(hb(format!("S2-hb{i}"), 32, 146));
            }
            cores.push(lb("S2-lb0".into(), 32, 110));
        }
        Setting::S3 => {
            for i in 0..8 {
                cores.push(hb(format!("S3-hb{i}"), 128, 580));
            }
        }
        Setting::S4 => {
            for i in 0..7 {
                cores.push(hb(format!("S4-hb{i}"), 128, 580));
            }
            cores.push(lb("S4-lb0".into(), 128, 434));
        }
        Setting::S5 => {
            for i in 0..3 {
                cores.push(hb(format!("S5-big-hb{i}"), 128, 580));
            }
            cores.push(lb("S5-big-lb0".into(), 128, 434));
            for i in 0..3 {
                cores.push(hb(format!("S5-lit-hb{i}"), 64, 291));
            }
            cores.push(lb("S5-lit-lb0".into(), 64, 218));
        }
        Setting::S6 => {
            for i in 0..7 {
                cores.push(hb(format!("S6-big-hb{i}"), 128, 580));
            }
            cores.push(lb("S6-big-lb0".into(), 128, 434));
            for i in 0..7 {
                cores.push(hb(format!("S6-lit-hb{i}"), 64, 291));
            }
            cores.push(lb("S6-lit-lb0".into(), 64, 218));
        }
    }
    AcceleratorPlatform::new(setting.to_string(), cores, bw_gbps)
}

/// Builds the flexible-PE-array variant of a setting (Section VI-F): the same
/// cores with run-time configurable array shapes, 1 KB SLs and 2 MB SGs.
pub fn build_flexible(setting: Setting, bw_gbps: f64) -> AcceleratorPlatform {
    build_with_bw(setting, bw_gbps).into_flexible()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_table_iii() {
        assert_eq!(build(Setting::S1).num_sub_accels(), 4);
        assert_eq!(build(Setting::S2).num_sub_accels(), 4);
        assert_eq!(build(Setting::S3).num_sub_accels(), 8);
        assert_eq!(build(Setting::S4).num_sub_accels(), 8);
        assert_eq!(build(Setting::S5).num_sub_accels(), 8);
        assert_eq!(build(Setting::S6).num_sub_accels(), 16);
    }

    #[test]
    fn homogeneity_matches_table_iii() {
        assert!(build(Setting::S1).is_homogeneous());
        assert!(build(Setting::S3).is_homogeneous());
        for s in [Setting::S2, Setting::S4, Setting::S5, Setting::S6] {
            assert!(!build(s).is_homogeneous(), "{s} should be heterogeneous");
        }
    }

    #[test]
    fn default_bandwidths() {
        assert_eq!(build(Setting::S1).system_bw_gbps(), 16.0);
        assert_eq!(build(Setting::S4).system_bw_gbps(), 256.0);
    }

    #[test]
    fn s5_is_a_strict_subset_of_s6_in_compute() {
        assert!(build(Setting::S5).total_pes() < build(Setting::S4).total_pes());
        assert!(build(Setting::S6).total_pes() > build(Setting::S4).total_pes());
    }

    #[test]
    fn pe_array_widths_are_64() {
        for s in Setting::ALL {
            for c in build(s).sub_accels() {
                assert_eq!(c.pe_cols(), 64, "{s} core {}", c.name());
            }
        }
    }

    #[test]
    fn heterogeneous_settings_contain_both_dataflows() {
        for s in [Setting::S2, Setting::S4, Setting::S5, Setting::S6] {
            let p = build(s);
            let has_hb =
                p.sub_accels().iter().any(|c| c.dataflow() == DataflowStyle::HighBandwidth);
            let has_lb = p.sub_accels().iter().any(|c| c.dataflow() == DataflowStyle::LowBandwidth);
            assert!(has_hb && has_lb, "{s}");
        }
    }

    #[test]
    fn bw_sweep_ranges() {
        assert_eq!(Setting::S2.bw_sweep_gbps(), vec![1.0, 4.0, 8.0, 16.0]);
        assert_eq!(Setting::S4.bw_sweep_gbps(), vec![1.0, 16.0, 64.0, 256.0]);
    }

    #[test]
    fn flexible_builder_marks_cores_flexible() {
        let p = build_flexible(Setting::S1, 16.0);
        assert!(p.sub_accels().iter().all(|c| c.flexible_shape()));
    }

    #[test]
    fn core_names_are_unique() {
        for s in Setting::ALL {
            let p = build(s);
            let mut names: Vec<&str> = p.sub_accels().iter().map(|c| c.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), p.num_sub_accels(), "{s}");
        }
    }

    #[test]
    fn magma_threads_is_at_least_one() {
        // The knob may or may not be set in the ambient environment; either
        // way the resolved count must be usable as a worker-pool size.
        assert!(magma_threads() >= 1);
    }

    #[test]
    fn descriptions_are_distinct() {
        let mut d: Vec<&str> = Setting::ALL.iter().map(|s| s.description()).collect();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 6);
    }
}
