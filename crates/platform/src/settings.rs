//! The six accelerator settings of Table III, their default bandwidths, and
//! the process-wide runtime knobs (`MAGMA_THREADS`, `MAGMA_MEMO`,
//! `MAGMA_SIGNATURE_PROFILE` and the `MAGMA_SERVE_*` family read by
//! [`ServeKnobs`]).

use crate::platform::{AcceleratorPlatform, DEFAULT_LARGE_BW_GBPS, DEFAULT_SMALL_BW_GBPS};
use magma_cost::{DataflowStyle, SubAccelConfig};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reads the `MAGMA_THREADS` environment knob: how many worker threads batch
/// fitness evaluation (`magma_optim::parallel`) may use.
///
/// Unset, empty, unparsable or zero values fall back to the machine's
/// available parallelism (itself falling back to 1), so the knob can never
/// disable evaluation. The result is always ≥ 1; `MAGMA_THREADS=1` forces
/// fully serial evaluation.
pub fn magma_threads() -> usize {
    match std::env::var("MAGMA_THREADS").ok().and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
    }
}

/// Reads the `MAGMA_MEMO` environment knob: whether the M3E fitness
/// evaluator memoizes per-(job, core) launch costs (streamed bytes, required
/// bandwidth, energy) across evaluations instead of re-deriving them from
/// the analysis table inside the bandwidth-allocator replay.
///
/// Default **on** — memoization is bit-identical to the fresh path (the
/// cached values are produced by the very same expressions, and the A/B
/// proptests in `magma-m3e` and `tests/integration_pool.rs` lock that down)
/// and only trims per-evaluation work. Set `MAGMA_MEMO=0` (or `off`) to opt
/// out, e.g. to measure the memoization win itself.
pub fn magma_memo() -> bool {
    env_flag("MAGMA_MEMO", true)
}

/// Reads the `MAGMA_SIGNATURE_PROFILE` environment knob: whether `M3e`
/// attaches a packed per-core latency class to every job signature it
/// computes, so `JobSignature::distance` (and therefore profile-matched warm
/// start and the serving-layer mapping cache) sees platform affinity on top
/// of layer shape.
///
/// Default **on** since the cache-calibration sweep (`cache_sweep`, the
/// committed `BENCH_cache.json`): with the nearest-key probe enabled, the
/// profiled metric matches or beats the shape-only metric on hit quality at
/// the calibrated operating point, and it only refines candidate *ranking* —
/// cache keys ignore the core class, so hit/miss behaviour with the probe
/// disabled is unchanged. Set `MAGMA_SIGNATURE_PROFILE=0` (or `off`) to
/// restore PR 2's shape-only metric.
pub fn magma_signature_profile() -> bool {
    env_flag("MAGMA_SIGNATURE_PROFILE", true)
}

/// Parses environment variable `name` into `T`, falling back to `default`
/// when unset, empty or unparsable. This is the single parse/default path
/// every `MAGMA_*` knob family goes through; the malformed-value fallback is
/// unit-tested once, centrally, on [`parse_or`].
pub fn env_parse<T: std::str::FromStr>(name: &str, default: T) -> T {
    parse_or(std::env::var(name).ok().as_deref(), default)
}

/// Pure core of [`env_parse`]: parses `raw` (the environment value, if the
/// variable was set) into `T`, falling back to `default` when absent, empty,
/// whitespace-only or unparsable. Split out so the fallback semantics are
/// testable without mutating the process environment.
pub fn parse_or<T: std::str::FromStr>(raw: Option<&str>, default: T) -> T {
    raw.and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Reads a boolean environment knob: `0`, `off` or `false` (any case,
/// surrounding whitespace ignored) disable it, anything else — including the
/// empty string — leaves it enabled. Unset falls back to `default`.
pub fn env_flag(name: &str, default: bool) -> bool {
    flag_or(std::env::var(name).ok().as_deref(), default)
}

/// Pure core of [`env_flag`], testable without mutating the environment.
pub fn flag_or(raw: Option<&str>, default: bool) -> bool {
    match raw {
        Some(v) => {
            let v = v.trim();
            !(v == "0" || v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("false"))
        }
        None => default,
    }
}

/// The `MAGMA_SERVE_*` knob family configuring the online serving simulator
/// (`magma-serve` / the `serve_sim` binary).
///
/// | Variable | Field | Meaning |
/// |---|---|---|
/// | `MAGMA_SERVE_REQUESTS` | `requests` | arrivals per simulated scenario |
/// | `MAGMA_SERVE_GROUP` | `group_target` | dispatch-group size target of the admission batcher |
/// | `MAGMA_SERVE_MAX_WAIT_X` | `max_wait_x` | admission deadline, in multiples of one mean batch-formation window (`group_target × mean inter-arrival`) |
/// | `MAGMA_SERVE_CACHE_CAP` | `cache_capacity` | bounded LRU capacity of the signature-keyed mapping cache |
/// | `MAGMA_SERVE_COLD_BUDGET` | `cold_budget` | sampling budget of a full (cache-miss) MAGMA search |
/// | `MAGMA_SERVE_REFINE_BUDGET` | `refine_budget` | sampling budget of a cache-hit refinement |
/// | `MAGMA_SERVE_QUANT` | `quant_step` | log-scale quantization step of the cache key (nats) |
/// | `MAGMA_SERVE_LOAD` | `offered_load` | offered load relative to the calibrated (unoptimized) service rate |
/// | `MAGMA_SERVE_SLA_X` | `sla_x` | per-job SLA bound, in multiples of one batch window + calibrated service time |
/// | `MAGMA_SERVE_OVERHEAD_US` | `overhead_us_per_sample` | virtual mapper cost charged per search sample, in µs |
/// | `MAGMA_SERVE_OVERLAP` | `overlap` | `0`/`off`/`false` disables overlap mode (search slices interleaved with execution); default on |
/// | `MAGMA_SERVE_SLICE` | `search_slice` | samples per search slice in overlap mode |
/// | `MAGMA_SERVE_CACHE_EPSILON` | `cache_epsilon` | nearest-key cache probe threshold (mean signature distance); `0` = exact-key only |
/// | `MAGMA_SERVE_CACHE_PATH` | `cache_path` | mapping-cache persistence file: loaded (if present) before a run, saved after — warm restarts; empty/unset disables |
/// | `MAGMA_SERVE_SEED` | `seed` | trace/search seed |
#[derive(Debug, Clone, PartialEq)]
pub struct ServeKnobs {
    /// Arrivals per simulated scenario.
    pub requests: usize,
    /// Dispatch-group size target of the admission batcher.
    pub group_target: usize,
    /// Admission deadline in batch-formation windows.
    pub max_wait_x: f64,
    /// Capacity of the signature-keyed mapping cache (bounded LRU).
    pub cache_capacity: usize,
    /// Sampling budget of a full (cache-miss) MAGMA search.
    pub cold_budget: usize,
    /// Sampling budget of a cache-hit refinement (the "≤ 10% of cold" lever).
    pub refine_budget: usize,
    /// Log-scale quantization step of the cache key, in nats.
    pub quant_step: f64,
    /// Offered load relative to the calibrated service rate.
    pub offered_load: f64,
    /// Per-job SLA bound in batch windows (see `magma-serve` docs).
    pub sla_x: f64,
    /// Virtual mapper cost charged per search sample, in microseconds.
    pub overhead_us_per_sample: f64,
    /// Whether the simulator overlaps search with accelerator execution
    /// (default on): a group's search advances in budget slices while the
    /// previous group executes, instead of serializing search and execution
    /// on one timeline.
    pub overlap: bool,
    /// Samples per search slice in overlap mode. Slicing never changes any
    /// search result (the session-stepping invariant); it is purely the
    /// granularity at which the virtual mapper clock advances.
    pub search_slice: usize,
    /// Nearest-key cache probe threshold: on an exact-key miss, a stored
    /// solution whose signatures are within this mean `JobSignature`
    /// distance of the group's is still served as a (near) hit. `0.0`
    /// disables the probe (exact-key only — the pre-calibration default,
    /// one `MAGMA_SERVE_CACHE_EPSILON=0` away).
    pub cache_epsilon: f64,
    /// Mapping-cache persistence file: when set, the simulator loads the
    /// cache from this path before the run (if the file exists) and saves
    /// it back afterwards, so a restart starts warm. `None` (the default)
    /// keeps the cache in-memory only. The fleet simulator derives one file
    /// per shard by appending `.shard<i>`.
    pub cache_path: Option<String>,
    /// Trace/search seed.
    pub seed: u64,
}

impl ServeKnobs {
    /// Full-scale defaults: the scenario sizes `serve_sim` runs without
    /// `--smoke`.
    pub fn full() -> Self {
        ServeKnobs {
            requests: 400,
            group_target: 30,
            max_wait_x: 2.0,
            cache_capacity: 64,
            cold_budget: 600,
            // Calibrated by the `cache_sweep` frontier: at the calibrated
            // epsilon the 5%-of-cold refinement matches the 10% one on
            // quality (0.993 vs 0.994) with lower mean e2e, so hits ship
            // the cheaper budget.
            refine_budget: 30,
            quant_step: 1.0,
            offered_load: 0.7,
            sla_x: 3.0,
            overhead_us_per_sample: 1.0,
            overlap: true,
            search_slice: 32,
            // Calibrated by the `cache_sweep` frontier (the committed
            // `BENCH_cache.json`): the largest probe threshold whose
            // matched quality — mean mapped GFLOP/s per dispatch vs the
            // probe-off run on the same trace — stays ≥ 0.95 (measured
            // 0.993 at a 21% mix-trace hit rate; epsilon 2 already costs
            // 6–10%). `MAGMA_SERVE_CACHE_EPSILON=0` restores the
            // exact-key behaviour that shipped before the calibration.
            cache_epsilon: 1.0,
            cache_path: None,
            seed: 0,
        }
    }

    /// CI-friendly smoke defaults: tiny trace, tiny budgets, same shape.
    pub fn smoke() -> Self {
        ServeKnobs {
            requests: 96,
            group_target: 8,
            cache_capacity: 16,
            cold_budget: 60,
            refine_budget: 6,
            // Smoke groups are tiny (8 jobs), so mean signature distances
            // between mix-trace groups run larger than at full scale — the
            // full-scale calibrated 1.0 finds no neighbours at all here.
            // CI must still exercise the near-hit path, so smoke keeps the
            // looser threshold (its own `cache_sweep --smoke` frontier
            // admits it: near hits beat cold search at this scale).
            cache_epsilon: 3.0,
            ..Self::full()
        }
    }

    /// Reads the knob family from the environment on top of the smoke or
    /// full defaults. Zero values for counts/budgets are clamped to 1 so a
    /// misconfigured environment can never produce a degenerate simulator.
    pub fn from_env(smoke: bool) -> Self {
        let d = if smoke { Self::smoke() } else { Self::full() };
        ServeKnobs {
            requests: env_parse("MAGMA_SERVE_REQUESTS", d.requests).max(1),
            group_target: env_parse("MAGMA_SERVE_GROUP", d.group_target).max(1),
            max_wait_x: env_parse("MAGMA_SERVE_MAX_WAIT_X", d.max_wait_x).max(0.0),
            cache_capacity: env_parse("MAGMA_SERVE_CACHE_CAP", d.cache_capacity).max(1),
            cold_budget: env_parse("MAGMA_SERVE_COLD_BUDGET", d.cold_budget).max(1),
            refine_budget: env_parse("MAGMA_SERVE_REFINE_BUDGET", d.refine_budget).max(1),
            quant_step: env_parse("MAGMA_SERVE_QUANT", d.quant_step).max(1e-6),
            offered_load: env_parse("MAGMA_SERVE_LOAD", d.offered_load).max(1e-3),
            sla_x: env_parse("MAGMA_SERVE_SLA_X", d.sla_x).max(0.0),
            overhead_us_per_sample: env_parse("MAGMA_SERVE_OVERHEAD_US", d.overhead_us_per_sample)
                .max(0.0),
            overlap: env_flag("MAGMA_SERVE_OVERLAP", d.overlap),
            search_slice: env_parse("MAGMA_SERVE_SLICE", d.search_slice).max(1),
            cache_epsilon: env_parse("MAGMA_SERVE_CACHE_EPSILON", d.cache_epsilon).max(0.0),
            cache_path: std::env::var("MAGMA_SERVE_CACHE_PATH")
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .or(d.cache_path),
            seed: env_parse("MAGMA_SERVE_SEED", d.seed),
        }
    }
}

/// The scheduling policy of the fleet's concurrent session scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum FleetPolicy {
    /// Round-robin over live sessions with a fixed slice
    /// (`MAGMA_SERVE_SLICE`) — the single-queue simulator's quantum,
    /// generalized to many sessions. No preemption.
    Uniform,
    /// Earliest-deadline-first session selection with deadline-aware slice
    /// sizing (urgent sessions get big slices, relaxed ones small), plus
    /// deadline preemption: a live session whose group deadline has passed
    /// is `finish()`-ed early and executes its best-so-far mapping.
    #[default]
    Deadline,
}

impl fmt::Display for FleetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetPolicy::Uniform => f.write_str("uniform"),
            FleetPolicy::Deadline => f.write_str("deadline"),
        }
    }
}

impl std::str::FromStr for FleetPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "uniform" => Ok(FleetPolicy::Uniform),
            "deadline" => Ok(FleetPolicy::Deadline),
            other => Err(format!("unknown fleet policy {other:?} (expected uniform|deadline)")),
        }
    }
}

/// The `MAGMA_FLEET_*` knob family configuring the multi-shard fleet
/// simulator (`magma-serve`'s fleet layer / the `fleet_sim` binary), layered
/// on top of the [`ServeKnobs`] budgets.
///
/// | Variable | Field | Meaning |
/// |---|---|---|
/// | `MAGMA_FLEET_SHARDS` | `shards` | platform shards in the fleet (the bench ladder overrides per rung) |
/// | `MAGMA_FLEET_SETTINGS` | `shard_settings` | comma list of Table III settings cycled across shards (e.g. `S2,S4`) |
/// | `MAGMA_FLEET_REQUESTS` | `requests` | arrivals per fleet scenario |
/// | `MAGMA_FLEET_TENANTS` | `tenants` | synthetic-mix tenant count |
/// | `MAGMA_FLEET_LOAD` | `offered_load` | offered load relative to **one** calibrated reference shard |
/// | `MAGMA_FLEET_MAX_LIVE` | `max_live` | concurrent live search sessions per shard mapper |
/// | `MAGMA_FLEET_POLICY` | `policy` | `uniform` or `deadline` (see [`FleetPolicy`]) |
/// | `MAGMA_FLEET_MIN_SLICE` | `min_slice` | slice floor for deadline-aware sizing (graceful past-deadline degradation) |
/// | `MAGMA_FLEET_PREEMPT` | `preempt_margin` | value-preemption threshold: a full shard preempts its least-valuable session for a group ≥ this × its value; `0` disables |
/// | `MAGMA_FLEET_SHARED_CACHE` | `shared_cache_capacity` | entry capacity of the fleet-wide shared cache tier behind the per-shard caches; `0` disables the tier |
/// | `MAGMA_FLEET_TENANT_QUOTA` | `shared_tenant_quota` | max shared-tier entries per publishing tenant (its own LRU entry is evicted first); `0` = no quota |
#[derive(Debug, Clone, PartialEq)]
pub struct FleetKnobs {
    /// The underlying serving knobs (budgets, cache geometry, group target,
    /// SLA tolerance, per-sample overhead, slice, seed). The fleet reads
    /// everything except `requests`/`offered_load`, which it carries itself
    /// at fleet-appropriate defaults.
    pub serve: ServeKnobs,
    /// Platform shards in the fleet.
    pub shards: usize,
    /// Table III settings cycled across shards (shard `i` gets
    /// `shard_settings[i % len]`); a single entry means a homogeneous fleet.
    pub shard_settings: Vec<Setting>,
    /// Arrivals per fleet scenario.
    pub requests: usize,
    /// Synthetic-mix tenant count (`TenantMix::synthetic` — thousands of
    /// tenants at full scale).
    pub tenants: usize,
    /// Offered load relative to one calibrated reference shard. Calibration
    /// uses an *unoptimized* random mapping, so the optimized serving
    /// pipeline absorbs several × of this before saturating — the default
    /// is high enough to actually drown a 1-shard fleet, which is what
    /// makes the shard ladder show throughput scaling.
    pub offered_load: f64,
    /// Concurrent live search sessions per shard mapper.
    pub max_live: usize,
    /// The session scheduler policy.
    pub policy: FleetPolicy,
    /// Slice floor of deadline-aware sizing: a group already past its
    /// deadline at admission still advances by at least this many samples
    /// (so its early finish has a best mapping) instead of panicking or
    /// spinning.
    pub min_slice: usize,
    /// Value-preemption threshold (0 disables): when a shard is full, an
    /// incoming group whose value is at least `preempt_margin ×` the least
    /// valuable live session's value finishes that session early to take
    /// its slot.
    pub preempt_margin: f64,
    /// Entry capacity of the fleet-wide shared cache tier: a shard-cache
    /// miss falls through to this tier before cold-searching, and every
    /// completed mapping is published to both tiers. `0` disables the tier
    /// (each shard keeps only its own cache, the pre-PR-8 behaviour).
    pub shared_cache_capacity: usize,
    /// Per-tenant entry quota over the shared tier's LRU (a tenant over
    /// quota evicts its own least recently used entry first); `0` disables
    /// the quota.
    pub shared_tenant_quota: usize,
}

impl FleetKnobs {
    /// Full-scale defaults: the fleet sizes `fleet_sim` runs without
    /// `--smoke`.
    pub fn full() -> Self {
        FleetKnobs {
            serve: ServeKnobs::full(),
            shards: 4,
            shard_settings: vec![Setting::S2],
            requests: 20_000,
            tenants: 1_000,
            offered_load: 32.0,
            max_live: 4,
            policy: FleetPolicy::Deadline,
            min_slice: 4,
            preempt_margin: 2.0,
            shared_cache_capacity: 256,
            shared_tenant_quota: 8,
        }
    }

    /// CI-friendly smoke defaults: tiny trace and tenant count, same shape.
    pub fn smoke() -> Self {
        FleetKnobs {
            serve: ServeKnobs::smoke(),
            requests: 400,
            tenants: 32,
            shared_cache_capacity: 32,
            shared_tenant_quota: 4,
            ..Self::full()
        }
    }

    /// Reads the knob family from the environment on top of the smoke or
    /// full defaults (including the underlying `MAGMA_SERVE_*` family).
    /// Counts are clamped to 1 and the settings list to valid Table III
    /// names, so a misconfigured environment can never produce a degenerate
    /// fleet.
    pub fn from_env(smoke: bool) -> Self {
        let d = if smoke { Self::smoke() } else { Self::full() };
        let shard_settings = match std::env::var("MAGMA_FLEET_SETTINGS") {
            Ok(list) => {
                let parsed: Vec<Setting> =
                    list.split(',').filter_map(|s| s.trim().parse().ok()).collect();
                if parsed.is_empty() {
                    d.shard_settings.clone()
                } else {
                    parsed
                }
            }
            Err(_) => d.shard_settings.clone(),
        };
        FleetKnobs {
            serve: ServeKnobs::from_env(smoke),
            shards: env_parse("MAGMA_FLEET_SHARDS", d.shards).max(1),
            shard_settings,
            requests: env_parse("MAGMA_FLEET_REQUESTS", d.requests).max(1),
            tenants: env_parse("MAGMA_FLEET_TENANTS", d.tenants).max(1),
            offered_load: env_parse("MAGMA_FLEET_LOAD", d.offered_load).max(1e-3),
            max_live: env_parse("MAGMA_FLEET_MAX_LIVE", d.max_live).max(1),
            policy: std::env::var("MAGMA_FLEET_POLICY")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d.policy),
            min_slice: env_parse("MAGMA_FLEET_MIN_SLICE", d.min_slice).max(1),
            preempt_margin: env_parse("MAGMA_FLEET_PREEMPT", d.preempt_margin).max(0.0),
            shared_cache_capacity: env_parse("MAGMA_FLEET_SHARED_CACHE", d.shared_cache_capacity),
            shared_tenant_quota: env_parse("MAGMA_FLEET_TENANT_QUOTA", d.shared_tenant_quota),
        }
    }
}

/// The `MAGMA_SERVER_*` knob family configuring the wall-clock RPC serving
/// daemon (`magma-server` / the `magma_server` and `loadgen` binaries),
/// layered on top of the [`FleetKnobs`] fleet shape (which itself layers on
/// the [`ServeKnobs`] budgets).
///
/// | Variable | Field | Meaning |
/// |---|---|---|
/// | `MAGMA_SERVER_ADDR` | `addr` | TCP listen/connect address of the daemon |
/// | `MAGMA_SERVER_BACKLOG_SEC` | `max_backlog_sec` | admission threshold: a submit is answered `Busy` when every shard's projected mapper backlog (the router's load metric, in seconds) exceeds this |
/// | `MAGMA_SERVER_PENDING` | `pending_per_shard` | bounded admission queue: planned groups a shard may hold beyond its live sessions before submits bounce |
/// | `MAGMA_SERVER_TIMEOUT_SEC` | `timeout_sec` | session timeout: a group still searching this long after admission is cancelled via early `finish()` |
/// | `MAGMA_SERVER_MAX_FRAME` | `max_frame_bytes` | RPC frame size bound; oversized frames are rejected and the connection dropped |
/// | `MAGMA_SERVER_RATE` | `rate` | loadgen target submission rate, in groups per wall-clock second |
/// | `MAGMA_SERVER_REQUESTS` | `requests` | loadgen trace length (arrivals replayed over the wire) |
#[derive(Debug, Clone, PartialEq)]
pub struct ServerKnobs {
    /// The underlying fleet shape: shard count and settings, session
    /// scheduler policy/budgets, dispatch budgets, cache geometry and
    /// persistence (`MAGMA_SERVE_CACHE_PATH` + `.shard<i>`), shared-tier
    /// size, seed. The daemon reads everything except the virtual-clock
    /// trace knobs (`requests` / `offered_load`), which have no wall-clock
    /// meaning server-side.
    pub fleet: FleetKnobs,
    /// TCP address the daemon binds and the loadgen connects to. Port `0`
    /// binds an ephemeral port (the daemon prints the resolved address).
    pub addr: String,
    /// `Busy` threshold on the projected per-shard mapper backlog in
    /// seconds — the same load metric the shard router balances on
    /// (session backlog × per-sample overhead + accelerator queue). The
    /// retry-after hint is the overload beyond this bound.
    pub max_backlog_sec: f64,
    /// Bounded admission queue per shard: planned groups waiting for a
    /// scheduler slot. Submits bounce with `Busy` when every admissible
    /// shard's queue is full.
    pub pending_per_shard: usize,
    /// Wall-clock session timeout in seconds: a group searching longer than
    /// this after admission is finished early (its best-so-far mapping
    /// executes) and reported `timed_out`.
    pub timeout_sec: f64,
    /// Maximum RPC frame payload size in bytes; larger frames are rejected.
    pub max_frame_bytes: usize,
    /// Loadgen target submission rate in groups per second of wall time.
    pub rate: f64,
    /// Loadgen trace length: arrivals generated from the scenario and
    /// replayed over the wire.
    pub requests: usize,
}

impl ServerKnobs {
    /// Full-scale defaults: what `magma_server` / `loadgen` run without
    /// `--smoke`.
    pub fn full() -> Self {
        ServerKnobs {
            fleet: FleetKnobs::full(),
            addr: "127.0.0.1:4270".to_string(),
            max_backlog_sec: 4.0,
            pending_per_shard: 8,
            timeout_sec: 30.0,
            max_frame_bytes: 8 * 1024 * 1024,
            rate: 8.0,
            requests: 1_600,
        }
    }

    /// CI-friendly smoke defaults: tiny trace, tighter timeout, same shape.
    pub fn smoke() -> Self {
        ServerKnobs {
            fleet: FleetKnobs::smoke(),
            timeout_sec: 10.0,
            rate: 16.0,
            requests: 96,
            ..Self::full()
        }
    }

    /// Reads the knob family from the environment on top of the smoke or
    /// full defaults (including the underlying `MAGMA_FLEET_*` and
    /// `MAGMA_SERVE_*` families). Counts and durations are clamped so a
    /// misconfigured environment can never produce a degenerate server.
    pub fn from_env(smoke: bool) -> Self {
        let d = if smoke { Self::smoke() } else { Self::full() };
        ServerKnobs {
            fleet: FleetKnobs::from_env(smoke),
            addr: std::env::var("MAGMA_SERVER_ADDR")
                .ok()
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty())
                .unwrap_or(d.addr),
            max_backlog_sec: env_parse("MAGMA_SERVER_BACKLOG_SEC", d.max_backlog_sec).max(1e-3),
            pending_per_shard: env_parse("MAGMA_SERVER_PENDING", d.pending_per_shard).max(1),
            timeout_sec: env_parse("MAGMA_SERVER_TIMEOUT_SEC", d.timeout_sec).max(1e-3),
            max_frame_bytes: env_parse("MAGMA_SERVER_MAX_FRAME", d.max_frame_bytes).max(1024),
            rate: env_parse("MAGMA_SERVER_RATE", d.rate).max(1e-3),
            requests: env_parse("MAGMA_SERVER_REQUESTS", d.requests).max(1),
        }
    }
}

/// The accelerator settings evaluated in the paper (Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Setting {
    /// Small homogeneous: 4 × (32-row PE array, HB dataflow, 146 KB buffer).
    S1,
    /// Small heterogeneous: 3 × (32, HB, 146 KB) + 1 × (32, LB, 110 KB).
    S2,
    /// Large homogeneous: 8 × (128, HB, 580 KB).
    S3,
    /// Large heterogeneous: 7 × (128, HB, 580 KB) + 1 × (128, LB, 434 KB).
    S4,
    /// Large heterogeneous Big.Little: 3 × (128, HB) + 1 × (128, LB) +
    /// 3 × (64, HB) + 1 × (64, LB).
    S5,
    /// Large scale-up (16 cores): 7 × (128, HB) + 1 × (128, LB) +
    /// 7 × (64, HB) + 1 × (64, LB).
    S6,
}

impl Setting {
    /// All six settings in Table III order.
    pub const ALL: [Setting; 6] =
        [Setting::S1, Setting::S2, Setting::S3, Setting::S4, Setting::S5, Setting::S6];

    /// Whether the setting is one of the Small-class accelerators.
    pub fn is_small(self) -> bool {
        matches!(self, Setting::S1 | Setting::S2)
    }

    /// The default system bandwidth the paper pairs with this setting.
    pub fn default_bw_gbps(self) -> f64 {
        if self.is_small() {
            DEFAULT_SMALL_BW_GBPS
        } else {
            DEFAULT_LARGE_BW_GBPS
        }
    }

    /// The bandwidth sweep range the paper uses for this accelerator class
    /// (DDR1–DDR4 / PCIe for Small, DDR4–HBM / PCIe3–6 for Large).
    pub fn bw_sweep_gbps(self) -> Vec<f64> {
        if self.is_small() {
            vec![1.0, 4.0, 8.0, 16.0]
        } else {
            vec![1.0, 16.0, 64.0, 256.0]
        }
    }

    /// The paper's descriptive name for the setting.
    pub fn description(self) -> &'static str {
        match self {
            Setting::S1 => "Small Homogeneous",
            Setting::S2 => "Small Heterogeneous",
            Setting::S3 => "Large Homogeneous",
            Setting::S4 => "Large Heterogeneous",
            Setting::S5 => "Large Heterogeneous BigLittle",
            Setting::S6 => "Large Scale-up",
        }
    }
}

impl fmt::Display for Setting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::str::FromStr for Setting {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_uppercase().as_str() {
            "S1" => Ok(Setting::S1),
            "S2" => Ok(Setting::S2),
            "S3" => Ok(Setting::S3),
            "S4" => Ok(Setting::S4),
            "S5" => Ok(Setting::S5),
            "S6" => Ok(Setting::S6),
            other => Err(format!("unknown setting {other:?} (expected S1..S6)")),
        }
    }
}

const KB: usize = 1024;

fn hb(name: String, rows: usize, sg_kb: usize) -> SubAccelConfig {
    SubAccelConfig::new(name, rows, 64, DataflowStyle::HighBandwidth, sg_kb * KB)
}

fn lb(name: String, rows: usize, sg_kb: usize) -> SubAccelConfig {
    SubAccelConfig::new(name, rows, 64, DataflowStyle::LowBandwidth, sg_kb * KB)
}

/// Builds a [`Setting`] with its default system bandwidth.
pub fn build(setting: Setting) -> AcceleratorPlatform {
    build_with_bw(setting, setting.default_bw_gbps())
}

/// Builds a [`Setting`] with an explicit system bandwidth in GB/s.
pub fn build_with_bw(setting: Setting, bw_gbps: f64) -> AcceleratorPlatform {
    let mut cores = Vec::new();
    match setting {
        Setting::S1 => {
            for i in 0..4 {
                cores.push(hb(format!("S1-hb{i}"), 32, 146));
            }
        }
        Setting::S2 => {
            for i in 0..3 {
                cores.push(hb(format!("S2-hb{i}"), 32, 146));
            }
            cores.push(lb("S2-lb0".into(), 32, 110));
        }
        Setting::S3 => {
            for i in 0..8 {
                cores.push(hb(format!("S3-hb{i}"), 128, 580));
            }
        }
        Setting::S4 => {
            for i in 0..7 {
                cores.push(hb(format!("S4-hb{i}"), 128, 580));
            }
            cores.push(lb("S4-lb0".into(), 128, 434));
        }
        Setting::S5 => {
            for i in 0..3 {
                cores.push(hb(format!("S5-big-hb{i}"), 128, 580));
            }
            cores.push(lb("S5-big-lb0".into(), 128, 434));
            for i in 0..3 {
                cores.push(hb(format!("S5-lit-hb{i}"), 64, 291));
            }
            cores.push(lb("S5-lit-lb0".into(), 64, 218));
        }
        Setting::S6 => {
            for i in 0..7 {
                cores.push(hb(format!("S6-big-hb{i}"), 128, 580));
            }
            cores.push(lb("S6-big-lb0".into(), 128, 434));
            for i in 0..7 {
                cores.push(hb(format!("S6-lit-hb{i}"), 64, 291));
            }
            cores.push(lb("S6-lit-lb0".into(), 64, 218));
        }
    }
    AcceleratorPlatform::new(setting.to_string(), cores, bw_gbps)
}

/// Builds the flexible-PE-array variant of a setting (Section VI-F): the same
/// cores with run-time configurable array shapes, 1 KB SLs and 2 MB SGs.
pub fn build_flexible(setting: Setting, bw_gbps: f64) -> AcceleratorPlatform {
    build_with_bw(setting, bw_gbps).into_flexible()
}

/// What platform a simulation runs on: a Table III [`Setting`] built on
/// demand, or an arbitrary pre-built [`AcceleratorPlatform`] (e.g. one loaded
/// from the scenario registry). The serving simulators consume this instead
/// of a bare `Setting`, so registry-defined platforms run through exactly the
/// same code path as the paper's six.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformSpec {
    /// One of the paper's Table III settings, built with its default
    /// bandwidth via [`build`].
    Setting(Setting),
    /// A fully specified platform (registry-loaded or hand-constructed).
    Custom(AcceleratorPlatform),
}

impl PlatformSpec {
    /// Materializes the platform this spec describes.
    pub fn build(&self) -> AcceleratorPlatform {
        match self {
            PlatformSpec::Setting(s) => build(*s),
            PlatformSpec::Custom(p) => p.clone(),
        }
    }

    /// A short label for reports: the Table III name (`"S2"`) or the custom
    /// platform's own name.
    pub fn label(&self) -> String {
        match self {
            PlatformSpec::Setting(s) => s.to_string(),
            PlatformSpec::Custom(p) => p.name().to_string(),
        }
    }
}

impl From<Setting> for PlatformSpec {
    fn from(s: Setting) -> Self {
        PlatformSpec::Setting(s)
    }
}

impl fmt::Display for PlatformSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_counts_match_table_iii() {
        assert_eq!(build(Setting::S1).num_sub_accels(), 4);
        assert_eq!(build(Setting::S2).num_sub_accels(), 4);
        assert_eq!(build(Setting::S3).num_sub_accels(), 8);
        assert_eq!(build(Setting::S4).num_sub_accels(), 8);
        assert_eq!(build(Setting::S5).num_sub_accels(), 8);
        assert_eq!(build(Setting::S6).num_sub_accels(), 16);
    }

    #[test]
    fn homogeneity_matches_table_iii() {
        assert!(build(Setting::S1).is_homogeneous());
        assert!(build(Setting::S3).is_homogeneous());
        for s in [Setting::S2, Setting::S4, Setting::S5, Setting::S6] {
            assert!(!build(s).is_homogeneous(), "{s} should be heterogeneous");
        }
    }

    #[test]
    fn default_bandwidths() {
        assert_eq!(build(Setting::S1).system_bw_gbps(), 16.0);
        assert_eq!(build(Setting::S4).system_bw_gbps(), 256.0);
    }

    #[test]
    fn s5_is_a_strict_subset_of_s6_in_compute() {
        assert!(build(Setting::S5).total_pes() < build(Setting::S4).total_pes());
        assert!(build(Setting::S6).total_pes() > build(Setting::S4).total_pes());
    }

    #[test]
    fn pe_array_widths_are_64() {
        for s in Setting::ALL {
            for c in build(s).sub_accels() {
                assert_eq!(c.pe_cols(), 64, "{s} core {}", c.name());
            }
        }
    }

    #[test]
    fn heterogeneous_settings_contain_both_dataflows() {
        for s in [Setting::S2, Setting::S4, Setting::S5, Setting::S6] {
            let p = build(s);
            let has_hb =
                p.sub_accels().iter().any(|c| c.dataflow() == DataflowStyle::HighBandwidth);
            let has_lb = p.sub_accels().iter().any(|c| c.dataflow() == DataflowStyle::LowBandwidth);
            assert!(has_hb && has_lb, "{s}");
        }
    }

    #[test]
    fn bw_sweep_ranges() {
        assert_eq!(Setting::S2.bw_sweep_gbps(), vec![1.0, 4.0, 8.0, 16.0]);
        assert_eq!(Setting::S4.bw_sweep_gbps(), vec![1.0, 16.0, 64.0, 256.0]);
    }

    #[test]
    fn flexible_builder_marks_cores_flexible() {
        let p = build_flexible(Setting::S1, 16.0);
        assert!(p.sub_accels().iter().all(|c| c.flexible_shape()));
    }

    #[test]
    fn core_names_are_unique() {
        for s in Setting::ALL {
            let p = build(s);
            let mut names: Vec<&str> = p.sub_accels().iter().map(|c| c.name()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), p.num_sub_accels(), "{s}");
        }
    }

    #[test]
    fn magma_threads_is_at_least_one() {
        // The knob may or may not be set in the ambient environment; either
        // way the resolved count must be usable as a worker-pool size.
        assert!(magma_threads() >= 1);
    }

    #[test]
    fn serve_knobs_defaults_are_sane() {
        let full = ServeKnobs::full();
        let smoke = ServeKnobs::smoke();
        // Smoke must be a strict shrink of full on every cost-bearing knob.
        assert!(smoke.requests < full.requests);
        assert!(smoke.group_target < full.group_target);
        assert!(smoke.cold_budget < full.cold_budget);
        assert!(smoke.refine_budget < full.refine_budget);
        // The refinement budget is the "≤ 10% of cold" acceptance lever.
        assert!(full.refine_budget * 10 <= full.cold_budget);
        assert!(smoke.refine_budget * 10 <= smoke.cold_budget);
        // Overlap mode defaults on; since the cache_sweep calibration the
        // nearest-key probe defaults on too (BENCH_cache.json documents the
        // frontier), with exact-key-only one `MAGMA_SERVE_CACHE_EPSILON=0`
        // away. Persistence stays opt-in.
        assert!(full.overlap && smoke.overlap);
        assert!(full.search_slice >= 1);
        assert!(full.cache_epsilon > 0.0 && smoke.cache_epsilon > 0.0);
        assert_eq!(full.cache_path, None);
        // from_env falls back to the defaults when the knobs are unset (the
        // ambient test environment never sets MAGMA_SERVE_*).
        assert_eq!(ServeKnobs::from_env(true), smoke);
        assert_eq!(ServeKnobs::from_env(false), full);
    }

    #[test]
    fn setting_parses_from_table_iii_names() {
        assert_eq!("s4".parse::<Setting>().unwrap(), Setting::S4);
        assert_eq!(" S1 ".parse::<Setting>().unwrap(), Setting::S1);
        assert!("S7".parse::<Setting>().is_err());
        for s in Setting::ALL {
            assert_eq!(s.to_string().parse::<Setting>().unwrap(), s);
        }
    }

    #[test]
    fn fleet_knobs_defaults_are_sane() {
        let full = FleetKnobs::full();
        let smoke = FleetKnobs::smoke();
        // Smoke shrinks the cost-bearing fleet knobs, same shape otherwise.
        assert!(smoke.requests < full.requests);
        assert!(smoke.tenants < full.tenants);
        assert_eq!(smoke.policy, full.policy);
        assert!(full.tenants >= 1_000, "full scale means thousands of tenants");
        assert!(full.offered_load > 1.0, "the shard ladder needs an overloaded 1-shard rung");
        assert_eq!(full.policy, FleetPolicy::Deadline);
        assert!(full.min_slice >= 1 && full.max_live >= 1 && full.shards >= 1);
        // The shared tier defaults on, bigger than one shard cache, and
        // smoke keeps the same shape at a smaller size.
        assert!(full.shared_cache_capacity > full.serve.cache_capacity);
        assert!(smoke.shared_cache_capacity > smoke.serve.cache_capacity);
        assert!(full.shared_tenant_quota > 0 && smoke.shared_tenant_quota > 0);
        // from_env falls back to the defaults when the knobs are unset (the
        // ambient test environment never sets MAGMA_FLEET_*).
        assert_eq!(FleetKnobs::from_env(true), smoke);
        assert_eq!(FleetKnobs::from_env(false), full);
    }

    #[test]
    fn server_knobs_defaults_are_sane() {
        let full = ServerKnobs::full();
        let smoke = ServerKnobs::smoke();
        // Smoke shrinks the wall-clock cost (trace length, timeout), keeps
        // the shape, and stays on a loopback address.
        assert!(smoke.requests < full.requests);
        assert!(smoke.timeout_sec <= full.timeout_sec);
        assert!(full.addr.starts_with("127.0.0.1") && smoke.addr == full.addr);
        assert!(full.max_backlog_sec > 0.0 && full.rate > 0.0);
        assert!(full.pending_per_shard >= 1 && smoke.pending_per_shard >= 1);
        // A frame must comfortably hold a serialized dispatch group.
        assert!(full.max_frame_bytes >= 1024 * 1024);
        // from_env falls back to the defaults when the knobs are unset (the
        // ambient test environment never sets MAGMA_SERVER_*).
        assert_eq!(ServerKnobs::from_env(true), smoke);
        assert_eq!(ServerKnobs::from_env(false), full);
    }

    #[test]
    fn fleet_policy_parses_case_insensitively() {
        assert_eq!("deadline".parse::<FleetPolicy>().unwrap(), FleetPolicy::Deadline);
        assert_eq!("UNIFORM".parse::<FleetPolicy>().unwrap(), FleetPolicy::Uniform);
        assert!("edf".parse::<FleetPolicy>().is_err());
        assert_eq!(FleetPolicy::default(), FleetPolicy::Deadline);
        assert_eq!(FleetPolicy::Deadline.to_string(), "deadline");
    }

    #[test]
    fn memoization_defaults_on() {
        // The ambient test environment never sets MAGMA_MEMO, so the
        // memoized evaluator path is the default.
        assert!(magma_memo());
    }

    #[test]
    fn signature_profile_defaults_on() {
        // The ambient test environment never sets MAGMA_SIGNATURE_PROFILE,
        // so the profiled metric (calibrated default since the cache_sweep)
        // is what every search and cache probe sees.
        assert!(magma_signature_profile());
    }

    #[test]
    fn parse_or_falls_back_on_malformed_values() {
        // The single, central test of the malformed-value fallback every
        // MAGMA_* knob family shares (via env_parse): absent, empty,
        // whitespace-only and unparsable values all yield the default;
        // well-formed values (with surrounding whitespace) parse.
        assert_eq!(parse_or::<usize>(None, 7), 7);
        assert_eq!(parse_or::<usize>(Some(""), 7), 7);
        assert_eq!(parse_or::<usize>(Some("   "), 7), 7);
        assert_eq!(parse_or::<usize>(Some("banana"), 7), 7);
        assert_eq!(parse_or::<usize>(Some("-3"), 7), 7); // unsigned: no parse
        assert_eq!(parse_or::<usize>(Some("3.5"), 7), 7);
        assert_eq!(parse_or::<usize>(Some(" 12 "), 7), 12);
        assert_eq!(parse_or::<f64>(Some("not-a-float"), 1.5), 1.5);
        assert_eq!(parse_or::<f64>(Some(" 0.25 "), 1.5), 0.25);
        assert_eq!(parse_or::<u64>(Some("18446744073709551616"), 9), 9); // overflow
        assert_eq!(parse_or::<FleetPolicy>(Some("edf"), FleetPolicy::Uniform), {
            FleetPolicy::Uniform
        });
        assert_eq!(parse_or(Some("deadline"), FleetPolicy::Uniform), FleetPolicy::Deadline);
    }

    #[test]
    fn flag_or_disables_only_on_explicit_off_values() {
        for off in ["0", "off", "OFF", "Off", "false", "FALSE", " 0 ", " off "] {
            assert!(!flag_or(Some(off), true), "{off:?} should disable");
            assert!(!flag_or(Some(off), false), "{off:?} should disable");
        }
        for on in ["1", "on", "yes", "", "   ", "banana", "2"] {
            assert!(flag_or(Some(on), true), "{on:?} should enable");
            assert!(flag_or(Some(on), false), "{on:?} should enable");
        }
        assert!(flag_or(None, true));
        assert!(!flag_or(None, false));
    }

    #[test]
    fn platform_spec_builds_and_labels() {
        for s in Setting::ALL {
            let spec = PlatformSpec::from(s);
            assert_eq!(spec.build(), build(s));
            assert_eq!(spec.label(), s.to_string());
            assert_eq!(spec.to_string(), s.to_string());
        }
        let custom = PlatformSpec::Custom(build_with_bw(Setting::S2, 4.0));
        assert_eq!(custom.label(), "S2");
        assert_eq!(custom.build().system_bw_gbps(), 4.0);
        assert_ne!(custom, PlatformSpec::Setting(Setting::S2));
    }

    #[test]
    fn descriptions_are_distinct() {
        let mut d: Vec<&str> = Setting::ALL.iter().map(|s| s.description()).collect();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 6);
    }
}
