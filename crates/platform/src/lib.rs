//! Multi-core accelerator platform model and the paper's S1–S6 settings.
//!
//! An [`AcceleratorPlatform`] is a set of sub-accelerator cores
//! ([`SubAccelConfig`](magma_cost::SubAccelConfig)) that share the *system
//! bandwidth* — the minimum of the host-memory bandwidth and the
//! host-to-accelerator link bandwidth — through an interconnect the scheduler
//! is agnostic to.
//!
//! The [`settings`] module constructs the six accelerator configurations of
//! Table III (S1–S6) and their flexible-PE-array variants used in
//! Section VI-F.
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Table III (accelerator settings S1–S6) | [`Setting`], [`settings::build`] |
//! | Fig. 12 (system-bandwidth sweep) | [`AcceleratorPlatform::with_system_bw_gbps`] |
//! | Fig. 13 (sub-accelerator combinations S3/S4/S5) | [`settings::build_with_bw`] |
//! | Fig. 14 / Section VI-F (flexible PE arrays) | [`settings::build_flexible`] |
//!
//! # Example
//!
//! ```
//! use magma_platform::{settings, Setting};
//!
//! let s4 = settings::build(Setting::S4).with_system_bw_gbps(256.0);
//! assert_eq!(s4.num_sub_accels(), 8);
//! assert!(!s4.is_homogeneous());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod platform;
pub mod settings;

pub use platform::AcceleratorPlatform;
pub use settings::{PlatformSpec, Setting};
