//! MAESTRO-like analytical cost model for DNN sub-accelerators.
//!
//! The paper uses the MAESTRO cost model to profile every job on every
//! sub-accelerator before the mapping search starts; the search itself only
//! consumes two numbers per (job, sub-accelerator) pair:
//!
//! * **no-stall latency** — cycles to run the job assuming memory bandwidth is
//!   never the bottleneck, and
//! * **no-stall (required) bandwidth** — the minimum DRAM bandwidth that keeps
//!   the job compute-bound.
//!
//! This crate reimplements that analytical model from scratch. Given a
//! [`LayerShape`](magma_model::LayerShape), a mini-batch size and a
//! [`SubAccelConfig`] (PE array, buffer sizes, dataflow style, clock), it
//! produces a [`CostEstimate`] with the two quantities above plus DRAM
//! traffic, utilization and an energy proxy.
//!
//! Two dataflow styles are modelled, following the paper's evaluation:
//!
//! * [`DataflowStyle::HighBandwidth`] (HB) — NVDLA-inspired weight-stationary
//!   dataflow that parallelizes across channel dimensions. Compute-efficient
//!   on channel-heavy layers (late CNN layers, FC/attention) but re-streams
//!   activations per weight tile, so it is bandwidth-hungry.
//! * [`DataflowStyle::LowBandwidth`] (LB) — Eyeriss-inspired row-stationary
//!   dataflow that parallelizes across activation (spatial) dimensions.
//!   Excellent on early CNN layers and depth-wise convolutions and very light
//!   on bandwidth, but poorly utilized on FC/GEMM layers.
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Section IV-D2 (cost-model profiling, no-stall latency / required BW) | [`CostModel::estimate`], [`CostEstimate`] |
//! | Fig. 7 (HB vs LB per-model characteristics) | [`DataflowStyle`] |
//! | Table III (per-core PE arrays, buffers, clocks) | [`SubAccelConfig`] |
//! | Fig. 14 / Section VI-F (flexible PE-array shapes) | [`best_flexible_shape`] |
//!
//! # Example
//!
//! ```
//! use magma_cost::{CostModel, DataflowStyle, SubAccelConfig};
//! use magma_model::LayerShape;
//!
//! let hb = SubAccelConfig::new("hb", 128, 64, DataflowStyle::HighBandwidth, 580 * 1024);
//! let lb = SubAccelConfig::new("lb", 128, 64, DataflowStyle::LowBandwidth, 434 * 1024);
//! let layer = LayerShape::FullyConnected { out_features: 768, in_features: 768 };
//!
//! let model = CostModel::default();
//! let on_hb = model.estimate(&layer, 4, &hb);
//! let on_lb = model.estimate(&layer, 4, &lb);
//!
//! // HB finishes the FC much faster but demands far more bandwidth.
//! assert!(on_hb.no_stall_cycles < on_lb.no_stall_cycles);
//! assert!(on_hb.required_bw_gbps > on_lb.required_bw_gbps);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataflow;
pub mod estimate;
pub mod flexible;
pub mod model;
pub mod subaccel;

pub use dataflow::DataflowStyle;
pub use estimate::CostEstimate;
pub use flexible::{best_flexible_shape, FlexibleChoice};
pub use model::CostModel;
pub use subaccel::SubAccelConfig;
