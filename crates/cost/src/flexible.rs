//! Flexible PE-array shape selection (Section VI-F of the paper).
//!
//! FPGA/CGRA-style accelerators keep the number of PEs fixed but can
//! reconfigure the logical `rows × cols` shape of the array per layer. The
//! paper picks the shape that maximizes PE utilization (minimizes latency) by
//! aligning the array dimensions with the layer's parallelizable dimensions;
//! [`best_flexible_shape`] performs that search by enumerating the divisor
//! pairs of the PE count and evaluating each with the cost model.

use crate::{CostEstimate, CostModel, SubAccelConfig};
use magma_model::LayerShape;
use serde::{Deserialize, Serialize};

/// The outcome of the flexible-shape search for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlexibleChoice {
    /// Chosen PE-array height.
    pub rows: usize,
    /// Chosen PE-array width.
    pub cols: usize,
    /// Cost estimate under the chosen shape.
    pub estimate: CostEstimate,
}

/// Enumerates all `rows × cols` factorizations of `n`.
fn divisor_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    let mut d = 1;
    while d * d <= n {
        if n.is_multiple_of(d) {
            pairs.push((d, n / d));
            if d != n / d {
                pairs.push((n / d, d));
            }
        }
        d += 1;
    }
    pairs.sort_unstable();
    pairs
}

/// Finds the PE-array shape (among factorizations of the accelerator's PE
/// count) that minimizes the no-stall latency of `layer`, breaking ties by
/// lower required bandwidth.
///
/// This models the paper's flexible accelerators: the shape is chosen *per
/// layer*, the PE count, buffers and dataflow stay fixed.
///
/// # Panics
///
/// Panics if `batch == 0` or the layer is host-side (propagated from
/// [`CostModel::estimate_with_shape`]).
pub fn best_flexible_shape(
    model: &CostModel,
    layer: &LayerShape,
    batch: usize,
    accel: &SubAccelConfig,
) -> FlexibleChoice {
    let n = accel.num_pes();
    let mut best: Option<FlexibleChoice> = None;
    for (rows, cols) in divisor_pairs(n) {
        let estimate = model.estimate_with_shape(layer, batch, accel, rows, cols);
        let better = match &best {
            None => true,
            Some(b) => {
                estimate.no_stall_cycles < b.estimate.no_stall_cycles
                    || (estimate.no_stall_cycles == b.estimate.no_stall_cycles
                        && estimate.required_bw_gbps < b.estimate.required_bw_gbps)
            }
        };
        if better {
            best = Some(FlexibleChoice { rows, cols, estimate });
        }
    }
    best.expect("a PE array always has at least one factorization")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DataflowStyle;

    fn fixed() -> SubAccelConfig {
        SubAccelConfig::new("fix", 128, 64, DataflowStyle::HighBandwidth, 2 * 1024 * 1024)
            .with_sl_bytes(1024)
    }

    #[test]
    fn divisors_multiply_back() {
        for (a, b) in divisor_pairs(8192) {
            assert_eq!(a * b, 8192);
        }
        assert!(divisor_pairs(8192).contains(&(128, 64)));
    }

    #[test]
    fn flexible_never_worse_than_fixed() {
        let m = CostModel::default();
        let layers = [
            LayerShape::Conv2d { k: 96, c: 3, y: 112, x: 112, r: 7, s: 7, stride: 2 },
            LayerShape::FullyConnected { out_features: 1000, in_features: 2048 },
            LayerShape::DepthwiseConv2d { c: 144, y: 56, x: 56, r: 3, s: 3, stride: 1 },
            LayerShape::Gemm { m: 256, n: 256, kdim: 768 },
        ];
        for layer in layers {
            let fixed_cost = m.estimate(&layer, 4, &fixed());
            let flex = best_flexible_shape(&m, &layer, 4, &fixed());
            assert!(
                flex.estimate.no_stall_cycles <= fixed_cost.no_stall_cycles,
                "{layer}: flex {} > fixed {}",
                flex.estimate.no_stall_cycles,
                fixed_cost.no_stall_cycles
            );
            assert_eq!(flex.rows * flex.cols, fixed().num_pes());
        }
    }

    #[test]
    fn flexible_helps_skewed_layers() {
        // A skinny FC (few output features, huge input) wastes most rows of a
        // 128-row HB array; the flexible search should pick a flatter shape
        // and win noticeably.
        let m = CostModel::default();
        let layer = LayerShape::FullyConnected { out_features: 40, in_features: 8192 };
        let fixed_cost = m.estimate(&layer, 4, &fixed());
        let flex = best_flexible_shape(&m, &layer, 4, &fixed());
        assert!(flex.estimate.no_stall_cycles < fixed_cost.no_stall_cycles);
    }

    #[test]
    fn flexible_can_increase_bandwidth_need() {
        // Matching the paper's observation: maximizing utilization tends to
        // raise the per-tile data demand, i.e. required BW does not go down.
        let m = CostModel::default();
        let layer = LayerShape::FullyConnected { out_features: 40, in_features: 8192 };
        let fixed_cost = m.estimate(&layer, 4, &fixed());
        let flex = best_flexible_shape(&m, &layer, 4, &fixed());
        assert!(flex.estimate.required_bw_gbps >= fixed_cost.required_bw_gbps);
    }
}
