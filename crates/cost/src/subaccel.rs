//! Sub-accelerator hardware configuration.

use crate::DataflowStyle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default width of the 2-D PE array. The paper fixes one dimension of every
/// PE array to 64 because popular model tensor shapes are multiples of 64.
pub const DEFAULT_PE_COLS: usize = 64;

/// Default clock frequency of every sub-accelerator (MHz), per Section VI-A3.
pub const DEFAULT_FREQUENCY_MHZ: f64 = 200.0;

/// Default per-PE local scratchpad (SL) capacity in bytes (flexible-array
/// experiments, Section VI-F).
pub const DEFAULT_SL_BYTES: usize = 1024;

/// Hardware description of one sub-accelerator core.
///
/// A sub-accelerator is a conventional DNN accelerator: a `pe_rows × pe_cols`
/// array of MAC processing elements, per-PE local scratchpads (SL), a shared
/// global scratchpad (SG, double-buffered) and a fixed dataflow style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubAccelConfig {
    name: String,
    pe_rows: usize,
    pe_cols: usize,
    dataflow: DataflowStyle,
    sg_bytes: usize,
    sl_bytes: usize,
    frequency_mhz: f64,
    flexible_shape: bool,
}

impl SubAccelConfig {
    /// Creates a sub-accelerator configuration.
    ///
    /// `sg_bytes` is the global scratchpad capacity (the "buffer" column of
    /// Table III). Frequency defaults to 200 MHz and SL to 1 KB per PE.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or buffer size is zero.
    pub fn new(
        name: impl Into<String>,
        pe_rows: usize,
        pe_cols: usize,
        dataflow: DataflowStyle,
        sg_bytes: usize,
    ) -> Self {
        assert!(pe_rows > 0 && pe_cols > 0, "PE array dimensions must be non-zero");
        assert!(sg_bytes > 0, "global scratchpad must be non-empty");
        SubAccelConfig {
            name: name.into(),
            pe_rows,
            pe_cols,
            dataflow,
            sg_bytes,
            sl_bytes: DEFAULT_SL_BYTES,
            frequency_mhz: DEFAULT_FREQUENCY_MHZ,
            flexible_shape: false,
        }
    }

    /// Overrides the per-PE local scratchpad capacity.
    pub fn with_sl_bytes(mut self, sl_bytes: usize) -> Self {
        assert!(sl_bytes > 0);
        self.sl_bytes = sl_bytes;
        self
    }

    /// Overrides the clock frequency in MHz.
    pub fn with_frequency_mhz(mut self, f: f64) -> Self {
        assert!(f > 0.0);
        self.frequency_mhz = f;
        self
    }

    /// Marks the PE array shape as run-time configurable (FPGA/CGRA-style,
    /// Section VI-F). The total PE count stays fixed; the cost model is then
    /// allowed to pick the best `rows × cols` factorization per layer.
    pub fn with_flexible_shape(mut self, flexible: bool) -> Self {
        self.flexible_shape = flexible;
        self
    }

    /// Human-readable name of this core (e.g. `"S4-hb-0"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Height of the PE array.
    pub fn pe_rows(&self) -> usize {
        self.pe_rows
    }

    /// Width of the PE array.
    pub fn pe_cols(&self) -> usize {
        self.pe_cols
    }

    /// Total number of processing elements.
    pub fn num_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// The dataflow style this core employs.
    pub fn dataflow(&self) -> DataflowStyle {
        self.dataflow
    }

    /// Global scratchpad capacity in bytes.
    pub fn sg_bytes(&self) -> usize {
        self.sg_bytes
    }

    /// Per-PE local scratchpad capacity in bytes.
    pub fn sl_bytes(&self) -> usize {
        self.sl_bytes
    }

    /// Clock frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.frequency_mhz
    }

    /// Clock frequency in Hz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_mhz * 1e6
    }

    /// Whether the PE array shape is run-time configurable.
    pub fn flexible_shape(&self) -> bool {
        self.flexible_shape
    }

    /// Peak throughput in GFLOP/s (2 FLOPs per MAC per cycle per PE).
    pub fn peak_gflops(&self) -> f64 {
        self.num_pes() as f64 * 2.0 * self.frequency_hz() / 1e9
    }

    /// Renames the core (used when platforms instantiate several copies of a
    /// template configuration).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for SubAccelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}x{} PEs, {}, SG {} KB{}]",
            self.name,
            self.pe_rows,
            self.pe_cols,
            self.dataflow,
            self.sg_bytes / 1024,
            if self.flexible_shape { ", flexible" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accessors() {
        let c = SubAccelConfig::new("a", 32, 64, DataflowStyle::HighBandwidth, 146 * 1024);
        assert_eq!(c.num_pes(), 2048);
        assert_eq!(c.pe_rows(), 32);
        assert_eq!(c.pe_cols(), 64);
        assert_eq!(c.sg_bytes(), 146 * 1024);
        assert!(!c.flexible_shape());
        assert_eq!(c.frequency_mhz(), DEFAULT_FREQUENCY_MHZ);
    }

    #[test]
    fn peak_gflops_scaling() {
        let small = SubAccelConfig::new("s", 32, 64, DataflowStyle::HighBandwidth, 1024);
        let large = SubAccelConfig::new("l", 128, 64, DataflowStyle::HighBandwidth, 1024);
        assert!((large.peak_gflops() / small.peak_gflops() - 4.0).abs() < 1e-9);
        // 2048 PEs * 2 * 200e6 / 1e9 = 819.2 GFLOP/s
        assert!((small.peak_gflops() - 819.2).abs() < 1e-6);
    }

    #[test]
    fn builder_overrides() {
        let c = SubAccelConfig::new("x", 64, 64, DataflowStyle::LowBandwidth, 2048)
            .with_sl_bytes(512)
            .with_frequency_mhz(400.0)
            .with_flexible_shape(true)
            .renamed("y");
        assert_eq!(c.sl_bytes(), 512);
        assert_eq!(c.frequency_hz(), 400.0e6);
        assert!(c.flexible_shape());
        assert_eq!(c.name(), "y");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_rows_panics() {
        let _ = SubAccelConfig::new("bad", 0, 64, DataflowStyle::HighBandwidth, 1024);
    }

    #[test]
    fn display_includes_dataflow() {
        let c = SubAccelConfig::new("core0", 32, 64, DataflowStyle::LowBandwidth, 110 * 1024);
        let s = c.to_string();
        assert!(s.contains("LB"));
        assert!(s.contains("core0"));
    }
}
