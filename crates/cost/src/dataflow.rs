//! Dataflow (local mapping) styles supported by the sub-accelerators.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The dataflow style — the *local mapping* — a sub-accelerator employs.
///
/// The paper's heterogeneous accelerators combine two styles with opposite
/// compute/bandwidth trade-offs (Section VI-A3); this enum captures those two
/// plus their key scheduling-visible properties.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DataflowStyle {
    /// NVDLA-inspired weight-stationary dataflow.
    ///
    /// Parallelizes across input/output channel dimensions; weights are
    /// pinned in the local scratchpads while activations stream through, so
    /// the style is compute-efficient on channel-heavy layers but demands
    /// high DRAM bandwidth.
    #[default]
    HighBandwidth,
    /// Eyeriss-inspired row-stationary dataflow.
    ///
    /// Parallelizes across activation (spatial) dimensions and maximizes
    /// local reuse, so it needs very little DRAM bandwidth, but it utilizes
    /// the PE array poorly on layers without spatial extent (FC/GEMM).
    LowBandwidth,
}

impl DataflowStyle {
    /// The two styles used throughout the paper's evaluation.
    pub const ALL: [DataflowStyle; 2] = [DataflowStyle::HighBandwidth, DataflowStyle::LowBandwidth];

    /// Short label used in tables ("HB" / "LB").
    pub fn short_name(self) -> &'static str {
        match self {
            DataflowStyle::HighBandwidth => "HB",
            DataflowStyle::LowBandwidth => "LB",
        }
    }

    /// Whether this style keeps weights stationary (true for HB).
    pub fn is_weight_stationary(self) -> bool {
        matches!(self, DataflowStyle::HighBandwidth)
    }
}

impl fmt::Display for DataflowStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(DataflowStyle::HighBandwidth.to_string(), "HB");
        assert_eq!(DataflowStyle::LowBandwidth.to_string(), "LB");
    }

    #[test]
    fn stationarity() {
        assert!(DataflowStyle::HighBandwidth.is_weight_stationary());
        assert!(!DataflowStyle::LowBandwidth.is_weight_stationary());
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(DataflowStyle::ALL.len(), 2);
        assert_ne!(DataflowStyle::ALL[0], DataflowStyle::ALL[1]);
    }
}
