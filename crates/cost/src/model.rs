//! The analytical cost engine.
//!
//! The model follows the structure of MAESTRO's analytical evaluation at the
//! granularity the mapper needs:
//!
//! 1. **Compute**: each dataflow style maps two layer dimensions onto the two
//!    PE-array dimensions. Per-dimension utilization is the classic
//!    `d / (ceil(d / n) * n)` folding loss, multiplied by an intrinsic
//!    efficiency factor of the (dataflow, layer-kind) pair. The no-stall
//!    latency is `MACs / (PEs × utilization)` plus a fixed tile-issue
//!    overhead.
//! 2. **DRAM traffic**: weights, inputs and outputs each cross the DRAM
//!    boundary at least once; the dataflow determines which operand is
//!    re-fetched when the stationary operand does not fit in half of the
//!    (double-buffered) global scratchpad.
//! 3. **Required bandwidth** is traffic divided by no-stall time: the minimum
//!    sustained bandwidth for the double-buffered SG to keep hiding the
//!    fetches behind compute.

use crate::{CostEstimate, DataflowStyle, SubAccelConfig};
use magma_model::LayerShape;
use serde::{Deserialize, Serialize};

/// Energy constants (picojoules) used by the energy proxy. Values follow the
/// commonly cited ~1 : 6 : 200 ratio between a MAC, an on-chip SRAM access and
/// an off-chip DRAM access per byte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per MAC operation (pJ).
    pub mac_pj: f64,
    /// Energy per byte read from / written to the on-chip scratchpads (pJ).
    pub sram_pj_per_byte: f64,
    /// Energy per byte of DRAM traffic (pJ).
    pub dram_pj_per_byte: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel { mac_pj: 1.0, sram_pj_per_byte: 6.0, dram_pj_per_byte: 200.0 }
    }
}

/// The analytical cost model. Cheap to construct and `Copy`-free; a single
/// instance can be shared across threads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Bytes per tensor element (the paper uses 1-byte quantization).
    pub bytes_per_elem: f64,
    /// Fixed per-tile issue overhead added to the compute latency, in cycles.
    pub tile_overhead_cycles: u64,
    /// Energy constants.
    pub energy: EnergyModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { bytes_per_elem: 1.0, tile_overhead_cycles: 32, energy: EnergyModel::default() }
    }
}

/// How a dataflow maps a layer onto the 2-D PE array: the sizes of the two
/// parallelized dimensions and an intrinsic efficiency factor capturing how
/// well the dataflow's reuse pattern suits the layer kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SpatialMapping {
    pub row_dim: usize,
    pub col_dim: usize,
    pub efficiency: f64,
}

/// Folding utilization of mapping a logical dimension of size `d` onto `n`
/// physical lanes: full except for the final partially-filled fold.
fn dim_utilization(d: usize, n: usize) -> f64 {
    if d == 0 || n == 0 {
        return 0.0;
    }
    let folds = d.div_ceil(n);
    d as f64 / (folds * n) as f64
}

/// Extracts the spatial mapping of a layer under a dataflow, given a
/// mini-batch size (LB exploits the batch dimension on GEMM-like layers).
pub(crate) fn spatial_mapping(
    layer: &LayerShape,
    batch: usize,
    dataflow: DataflowStyle,
) -> SpatialMapping {
    match dataflow {
        DataflowStyle::HighBandwidth => match *layer {
            // Weight-stationary: output channels across rows, input channels
            // across columns.
            LayerShape::Conv2d { k, c, .. } => {
                SpatialMapping { row_dim: k, col_dim: c, efficiency: 1.0 }
            }
            // Depth-wise has no channel reduction; only the channel dimension
            // parallelizes well, the filter window fills few columns.
            LayerShape::DepthwiseConv2d { c, r, s, .. } => {
                SpatialMapping { row_dim: c, col_dim: r * s, efficiency: 0.9 }
            }
            LayerShape::FullyConnected { out_features, in_features } => {
                SpatialMapping { row_dim: out_features, col_dim: in_features, efficiency: 1.0 }
            }
            LayerShape::Gemm { m, kdim, .. } => {
                SpatialMapping { row_dim: m, col_dim: kdim, efficiency: 1.0 }
            }
            LayerShape::EmbeddingLookup { .. } => {
                SpatialMapping { row_dim: 1, col_dim: 1, efficiency: 1.0 }
            }
        },
        DataflowStyle::LowBandwidth => match *layer {
            // Row-stationary: spatial dimensions across the array.
            LayerShape::Conv2d { y, x, .. } => {
                SpatialMapping { row_dim: y, col_dim: x, efficiency: 0.95 }
            }
            LayerShape::DepthwiseConv2d { y, x, .. } => {
                SpatialMapping { row_dim: y, col_dim: x, efficiency: 1.0 }
            }
            // FC/GEMM have no spatial extent: LB falls back to parallelizing
            // the mini-batch and a slice of the output features, with poor
            // intrinsic efficiency (this is what makes LB slow-but-frugal on
            // language/recommendation jobs, Fig. 7).
            LayerShape::FullyConnected { out_features, .. } => {
                SpatialMapping { row_dim: batch.max(1), col_dim: out_features, efficiency: 0.12 }
            }
            LayerShape::Gemm { m, n, .. } => {
                SpatialMapping { row_dim: m.min(n), col_dim: m.max(n), efficiency: 0.12 }
            }
            LayerShape::EmbeddingLookup { .. } => {
                SpatialMapping { row_dim: 1, col_dim: 1, efficiency: 1.0 }
            }
        },
    }
}

impl CostModel {
    /// Creates a cost model with the default constants (1 B/element, 200 MHz
    /// cores are configured on the [`SubAccelConfig`] side).
    pub fn new() -> Self {
        Self::default()
    }

    /// Estimates the cost of running `layer` on `accel` with the given
    /// mini-batch size, using the accelerator's fixed PE-array shape.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0` or if the layer does not run on the accelerator.
    pub fn estimate(
        &self,
        layer: &LayerShape,
        batch: usize,
        accel: &SubAccelConfig,
    ) -> CostEstimate {
        self.estimate_with_shape(layer, batch, accel, accel.pe_rows(), accel.pe_cols())
    }

    /// Estimates the cost with an explicit PE-array factorization (used by the
    /// flexible-accelerator experiments in Section VI-F, where the array
    /// shape is chosen per layer).
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`, `rows * cols == 0`, or the layer is host-side.
    pub fn estimate_with_shape(
        &self,
        layer: &LayerShape,
        batch: usize,
        accel: &SubAccelConfig,
        rows: usize,
        cols: usize,
    ) -> CostEstimate {
        assert!(batch > 0, "mini-batch must be non-zero");
        assert!(rows > 0 && cols > 0, "PE array shape must be non-zero");
        assert!(
            layer.runs_on_accelerator(),
            "host-side layers cannot be estimated on an accelerator"
        );

        let macs = layer.macs() * batch as u64;
        let mapping = spatial_mapping(layer, batch, accel.dataflow());
        let util = dim_utilization(mapping.row_dim, rows)
            * dim_utilization(mapping.col_dim, cols)
            * mapping.efficiency;
        // Guard against degenerate zero utilization (e.g. 1x1 mapping).
        let util = util.max(1.0 / (rows * cols) as f64);
        let effective_pes = (rows * cols) as f64 * util;

        let compute_cycles = (macs as f64 / effective_pes).ceil() as u64;
        let num_tiles = self.num_tiles(layer, batch, accel);
        let no_stall_cycles = (compute_cycles + self.tile_overhead_cycles * num_tiles).max(1);

        let traffic_elems = self.dram_traffic_elems(layer, batch, accel);
        let dram_traffic_bytes = (traffic_elems as f64 * self.bytes_per_elem) as u64;

        let seconds = no_stall_cycles as f64 / accel.frequency_hz();
        let required_bw_gbps = dram_traffic_bytes as f64 / seconds / 1e9;

        let sram_bytes = (macs as f64) * 2.0 * self.bytes_per_elem; // operand + partial-sum touches
        let energy_nj = (macs as f64 * self.energy.mac_pj
            + sram_bytes * self.energy.sram_pj_per_byte * 0.01
            + dram_traffic_bytes as f64 * self.energy.dram_pj_per_byte)
            / 1000.0;

        CostEstimate {
            no_stall_cycles,
            required_bw_gbps,
            macs,
            dram_traffic_bytes,
            utilization: util,
            energy_nj,
        }
    }

    /// Number of SG-sized tiles the job is broken into (each tile pays the
    /// issue overhead and defines the double-buffering granularity).
    fn num_tiles(&self, layer: &LayerShape, batch: usize, accel: &SubAccelConfig) -> u64 {
        let half_sg = (accel.sg_bytes() / 2).max(1) as u64;
        let working_set = ((layer.weight_elems()
            + (layer.input_elems() + layer.output_elems()) * batch as u64)
            as f64
            * self.bytes_per_elem) as u64;
        working_set.div_ceil(half_sg).max(1)
    }

    /// Total DRAM traffic in elements, including dataflow-induced re-fetches.
    fn dram_traffic_elems(&self, layer: &LayerShape, batch: usize, accel: &SubAccelConfig) -> u64 {
        let weights = layer.weight_elems();
        let inputs = layer.input_elems() * batch as u64;
        let outputs = layer.output_elems() * batch as u64;
        let half_sg_elems = ((accel.sg_bytes() / 2).max(1) as f64 / self.bytes_per_elem) as u64;
        let half_sg_elems = half_sg_elems.max(1);

        match accel.dataflow() {
            DataflowStyle::HighBandwidth => {
                // Weight-stationary: weights are fetched exactly once. If the
                // input activations do not fit in half the (double-buffered)
                // SG, they must be re-streamed once per output-channel fold of
                // the PE array — this is what makes the HB style bandwidth
                // hungry on activation-heavy layers.
                let input_refetch = if inputs <= half_sg_elems {
                    1
                } else {
                    let row_dim = spatial_mapping(layer, batch, accel.dataflow()).row_dim;
                    row_dim.div_ceil(accel.pe_rows()).max(1) as u64
                };
                weights + inputs * input_refetch + outputs
            }
            DataflowStyle::LowBandwidth => {
                // Row-stationary: activations are held on-chip and maximally
                // reused; weights are re-fetched once per resident activation
                // tile only when the weight tensor itself overflows half the
                // SG (rare for the layers LB is good at).
                let weight_refetch = if weights <= half_sg_elems {
                    1
                } else {
                    (inputs + outputs).div_ceil(half_sg_elems).max(1)
                };
                weights * weight_refetch.min(8) + inputs + outputs
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hb_large() -> SubAccelConfig {
        SubAccelConfig::new("hb", 128, 64, DataflowStyle::HighBandwidth, 580 * 1024)
    }

    fn lb_large() -> SubAccelConfig {
        SubAccelConfig::new("lb", 128, 64, DataflowStyle::LowBandwidth, 434 * 1024)
    }

    fn hb_small() -> SubAccelConfig {
        SubAccelConfig::new("hb-s", 32, 64, DataflowStyle::HighBandwidth, 146 * 1024)
    }

    #[test]
    fn dim_utilization_perfect_and_folded() {
        assert_eq!(dim_utilization(64, 64), 1.0);
        assert_eq!(dim_utilization(128, 64), 1.0);
        assert!((dim_utilization(96, 64) - 0.75).abs() < 1e-12);
        assert!(dim_utilization(1, 64) < 0.02);
    }

    #[test]
    fn fc_is_much_faster_on_hb_than_lb() {
        let layer = LayerShape::FullyConnected { out_features: 768, in_features: 768 };
        let m = CostModel::default();
        let hb = m.estimate(&layer, 4, &hb_large());
        let lb = m.estimate(&layer, 4, &lb_large());
        assert!(lb.no_stall_cycles > hb.no_stall_cycles * 10, "hb={hb:?} lb={lb:?}");
        assert!(hb.required_bw_gbps > lb.required_bw_gbps * 10.0);
    }

    #[test]
    fn depthwise_prefers_lb() {
        let layer = LayerShape::DepthwiseConv2d { c: 192, y: 28, x: 28, r: 3, s: 3, stride: 1 };
        let m = CostModel::default();
        let hb = m.estimate(&layer, 4, &hb_large());
        let lb = m.estimate(&layer, 4, &lb_large());
        // LB should need (much) less bandwidth and not be dramatically slower.
        assert!(lb.required_bw_gbps < hb.required_bw_gbps);
    }

    #[test]
    fn conv_required_bw_lower_than_fc_of_same_macs() {
        // Conv reuses weights spatially, so per-MAC traffic is lower than FC.
        let conv = LayerShape::Conv2d { k: 256, c: 256, y: 14, x: 14, r: 3, s: 3, stride: 1 };
        let fc = LayerShape::FullyConnected { out_features: 4096, in_features: 4096 };
        let m = CostModel::default();
        let a = m.estimate(&conv, 4, &hb_large());
        let b = m.estimate(&fc, 4, &hb_large());
        assert!(a.achieved_intensity() > b.achieved_intensity());
    }

    #[test]
    fn larger_array_is_faster_but_never_slower_utilized_layer() {
        let layer = LayerShape::Conv2d { k: 512, c: 512, y: 14, x: 14, r: 3, s: 3, stride: 1 };
        let m = CostModel::default();
        let small = m.estimate(&layer, 4, &hb_small());
        let large = m.estimate(&layer, 4, &hb_large());
        assert!(large.no_stall_cycles < small.no_stall_cycles);
    }

    #[test]
    fn batch_scales_macs_linearly() {
        let layer = LayerShape::pointwise(128, 128, 28, 28);
        let m = CostModel::default();
        let b1 = m.estimate(&layer, 1, &hb_large());
        let b4 = m.estimate(&layer, 4, &hb_large());
        assert_eq!(b4.macs, 4 * b1.macs);
        assert!(b4.no_stall_cycles >= b1.no_stall_cycles * 3);
    }

    #[test]
    fn utilization_bounded() {
        let m = CostModel::default();
        for layer in [
            LayerShape::pointwise(3, 3, 2, 2),
            LayerShape::FullyConnected { out_features: 1, in_features: 1 },
            LayerShape::Conv2d { k: 4096, c: 4096, y: 1, x: 1, r: 1, s: 1, stride: 1 },
        ] {
            let e = m.estimate(&layer, 1, &hb_large());
            assert!(e.utilization > 0.0 && e.utilization <= 1.0, "{e:?}");
        }
    }

    #[test]
    fn energy_increases_with_traffic() {
        let m = CostModel::default();
        let small = m.estimate(&LayerShape::pointwise(64, 64, 7, 7), 1, &hb_large());
        let big = m.estimate(&LayerShape::pointwise(512, 512, 28, 28), 1, &hb_large());
        assert!(big.energy_nj > small.energy_nj);
    }

    #[test]
    #[should_panic(expected = "host-side")]
    fn embedding_estimate_panics() {
        let m = CostModel::default();
        let _ = m.estimate(&LayerShape::EmbeddingLookup { lookups: 8, dim: 8 }, 1, &hb_large());
    }

    #[test]
    fn required_bw_matches_traffic_over_time() {
        let m = CostModel::default();
        let layer = LayerShape::FullyConnected { out_features: 1024, in_features: 1024 };
        let cfg = hb_large();
        let e = m.estimate(&layer, 4, &cfg);
        let secs = e.no_stall_cycles as f64 / cfg.frequency_hz();
        let expect = e.dram_traffic_bytes as f64 / secs / 1e9;
        assert!((e.required_bw_gbps - expect).abs() / expect < 1e-9);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn estimates_are_finite_and_positive(
            k in 1usize..512, c in 1usize..512, y in 1usize..64, x in 1usize..64,
            batch in 1usize..8,
        ) {
            let layer = LayerShape::Conv2d { k, c, y, x, r: 3, s: 3, stride: 1 };
            let m = CostModel::default();
            for cfg in [hb_large(), lb_large(), hb_small()] {
                let e = m.estimate(&layer, batch, &cfg);
                prop_assert!(e.no_stall_cycles >= 1);
                prop_assert!(e.required_bw_gbps.is_finite() && e.required_bw_gbps > 0.0);
                prop_assert!(e.utilization > 0.0 && e.utilization <= 1.0);
                prop_assert!(e.energy_nj.is_finite() && e.energy_nj > 0.0);
                prop_assert!(e.dram_traffic_bytes >= layer.weight_elems());
            }
        }

        #[test]
        fn more_pes_never_increase_latency(
            out_f in 64usize..4096, in_f in 64usize..4096, batch in 1usize..8,
        ) {
            let layer = LayerShape::FullyConnected { out_features: out_f, in_features: in_f };
            let m = CostModel::default();
            let small = m.estimate(&layer, batch, &hb_small());
            let large = m.estimate(&layer, batch, &hb_large());
            prop_assert!(large.no_stall_cycles <= small.no_stall_cycles);
        }
    }
}
