//! The output of the analytical cost model for one (job, sub-accelerator)
//! pair.

use serde::{Deserialize, Serialize};

/// Cost-model output for running one job (layer × mini-batch) on one
//  sub-accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostEstimate {
    /// Cycles to execute the job assuming DRAM bandwidth never stalls the
    /// compute (the paper's *no-stall latency*).
    pub no_stall_cycles: u64,
    /// Minimum DRAM bandwidth (GB/s) that keeps the job compute-bound (the
    /// paper's *no-stall bandwidth* / required BW).
    pub required_bw_gbps: f64,
    /// Total multiply-accumulate operations of the job.
    pub macs: u64,
    /// Total DRAM traffic in bytes (weights + activations, including any
    /// dataflow-induced re-fetches).
    pub dram_traffic_bytes: u64,
    /// Fraction of the PE array doing useful work (0, 1].
    pub utilization: f64,
    /// Energy proxy in nanojoules (MAC + SRAM + DRAM components).
    pub energy_nj: f64,
}

impl CostEstimate {
    /// No-stall latency in seconds at the given clock frequency.
    pub fn no_stall_seconds(&self, frequency_hz: f64) -> f64 {
        self.no_stall_cycles as f64 / frequency_hz
    }

    /// Effective compute throughput in GFLOP/s when the job is not stalled.
    pub fn no_stall_gflops(&self, frequency_hz: f64) -> f64 {
        let secs = self.no_stall_seconds(frequency_hz);
        if secs == 0.0 {
            0.0
        } else {
            (self.macs as f64 * 2.0) / secs / 1e9
        }
    }

    /// Arithmetic intensity actually achieved: MACs per DRAM byte.
    pub fn achieved_intensity(&self) -> f64 {
        if self.dram_traffic_bytes == 0 {
            0.0
        } else {
            self.macs as f64 / self.dram_traffic_bytes as f64
        }
    }

    /// Latency of the job if only `granted_bw_gbps` of DRAM bandwidth is
    /// available, in cycles: the job becomes memory-bound and slows down
    /// proportionally (this is how the BW allocator stretches jobs).
    ///
    /// # Panics
    ///
    /// Panics if `granted_bw_gbps` is not positive.
    pub fn stalled_cycles(&self, granted_bw_gbps: f64) -> f64 {
        assert!(granted_bw_gbps > 0.0, "granted bandwidth must be positive");
        if granted_bw_gbps >= self.required_bw_gbps {
            self.no_stall_cycles as f64
        } else {
            self.no_stall_cycles as f64 * (self.required_bw_gbps / granted_bw_gbps)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostEstimate {
        CostEstimate {
            no_stall_cycles: 1_000,
            required_bw_gbps: 8.0,
            macs: 4_096_000,
            dram_traffic_bytes: 40_000,
            utilization: 0.5,
            energy_nj: 123.0,
        }
    }

    #[test]
    fn seconds_and_gflops() {
        let e = sample();
        let secs = e.no_stall_seconds(200e6);
        assert!((secs - 5e-6).abs() < 1e-12);
        let gflops = e.no_stall_gflops(200e6);
        assert!((gflops - (2.0 * 4_096_000.0 / 5e-6 / 1e9)).abs() < 1e-6);
    }

    #[test]
    fn stalled_latency_scales_with_bw_deficit() {
        let e = sample();
        // Full BW: no stretch.
        assert_eq!(e.stalled_cycles(8.0), 1_000.0);
        assert_eq!(e.stalled_cycles(16.0), 1_000.0);
        // Half the BW: twice the time.
        assert!((e.stalled_cycles(4.0) - 2_000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bw_panics() {
        let _ = sample().stalled_cycles(0.0);
    }

    #[test]
    fn intensity() {
        let e = sample();
        assert!((e.achieved_intensity() - 4_096_000.0 / 40_000.0).abs() < 1e-9);
    }
}
