//! The mapping encoding and decoder (Section IV-A, Fig. 5a).
//!
//! A mapping for a group of `n` jobs on `m` sub-accelerators is encoded as
//! two genomes of length `n`:
//!
//! * the **sub-accelerator selection** genome — gene `i` is the core index
//!   (`0..m`) that job `i` runs on;
//! * the **job prioritization** genome — gene `i` is a priority in `[0, 1)`;
//!   jobs assigned to the same core execute in ascending priority order
//!   (0 is the highest priority).

use magma_model::JobId;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An encoded mapping: the individual the optimizers evolve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mapping {
    accel_sel: Vec<usize>,
    priority: Vec<f64>,
    num_accels: usize,
}

impl Mapping {
    /// Creates a mapping from explicit genomes.
    ///
    /// # Panics
    ///
    /// Panics if the genomes have different lengths, are empty, if any
    /// accelerator gene is out of range, or if any priority is outside
    /// `[0, 1]`.
    pub fn new(accel_sel: Vec<usize>, priority: Vec<f64>, num_accels: usize) -> Self {
        assert!(!accel_sel.is_empty(), "a mapping must cover at least one job");
        assert_eq!(accel_sel.len(), priority.len(), "genome lengths must match");
        assert!(num_accels > 0, "need at least one sub-accelerator");
        assert!(accel_sel.iter().all(|&a| a < num_accels), "sub-accelerator gene out of range");
        assert!(priority.iter().all(|p| (0.0..=1.0).contains(p)), "priorities must be in [0, 1]");
        Mapping { accel_sel, priority, num_accels }
    }

    /// Samples a uniformly random mapping for `num_jobs` jobs on
    /// `num_accels` cores.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, num_jobs: usize, num_accels: usize) -> Self {
        assert!(num_jobs > 0 && num_accels > 0);
        let accel_sel = (0..num_jobs).map(|_| rng.gen_range(0..num_accels)).collect();
        let priority = (0..num_jobs).map(|_| rng.gen_range(0.0..1.0)).collect();
        Mapping { accel_sel, priority, num_accels }
    }

    /// Number of jobs this mapping covers (the group size).
    pub fn num_jobs(&self) -> usize {
        self.accel_sel.len()
    }

    /// Number of sub-accelerators the selection genes index into.
    pub fn num_accels(&self) -> usize {
        self.num_accels
    }

    /// The sub-accelerator selection genome.
    pub fn accel_sel(&self) -> &[usize] {
        &self.accel_sel
    }

    /// The job prioritization genome.
    pub fn priority(&self) -> &[f64] {
        &self.priority
    }

    /// Mutable access to the selection genome (gene values must stay within
    /// `0..num_accels`; the GA operators uphold this).
    pub fn accel_sel_mut(&mut self) -> &mut [usize] {
        &mut self.accel_sel
    }

    /// Mutable access to the priority genome (values must stay in `[0, 1]`).
    pub fn priority_mut(&mut self) -> &mut [f64] {
        &mut self.priority
    }

    /// Decodes the genomes into per-core ordered job queues (Fig. 4a / 5a).
    ///
    /// Ties in priority are broken by job id so decoding is deterministic.
    pub fn decode(&self) -> DecodedMapping {
        let mut queues: Vec<Vec<JobId>> = vec![Vec::new(); self.num_accels];
        let mut order: Vec<usize> = (0..self.num_jobs()).collect();
        order.sort_by(|&a, &b| {
            self.priority[a]
                .partial_cmp(&self.priority[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        for job in order {
            queues[self.accel_sel[job]].push(JobId(job));
        }
        DecodedMapping { queues }
    }

    /// Flattens the mapping into a continuous vector in `[0, 1]^(2n)` — the
    /// representation the continuous black-box optimizers (DE, CMA-ES, PSO,
    /// TBPSA) operate on. The first `n` entries encode the accelerator
    /// selection as `accel / num_accels` bucket midpoints; the last `n` are
    /// the priorities.
    pub fn to_vector(&self) -> Vec<f64> {
        let n = self.num_jobs();
        let mut v = Vec::with_capacity(2 * n);
        for &a in &self.accel_sel {
            v.push((a as f64 + 0.5) / self.num_accels as f64);
        }
        for &p in &self.priority {
            v.push(p);
        }
        v
    }

    /// Reconstructs a mapping from a continuous vector (the inverse of
    /// [`Mapping::to_vector`], with values clamped into range).
    ///
    /// # Panics
    ///
    /// Panics if the vector length is odd or zero.
    pub fn from_vector(v: &[f64], num_accels: usize) -> Self {
        assert!(!v.is_empty() && v.len().is_multiple_of(2), "vector length must be 2 × num_jobs");
        let n = v.len() / 2;
        let accel_sel = v[..n]
            .iter()
            .map(|&x| {
                let x = x.clamp(0.0, 1.0 - f64::EPSILON);
                ((x * num_accels as f64) as usize).min(num_accels - 1)
            })
            .collect();
        let priority = v[n..].iter().map(|&x| x.clamp(0.0, 1.0)).collect();
        Mapping { accel_sel, priority, num_accels }
    }

    /// Builds a new mapping by gene transfer: job `i` of the result takes the
    /// gene block (sub-accelerator selection and priority) of job
    /// `source_jobs[i]` in `self`, with selection genes re-mapped modulo
    /// `num_accels` in case the new platform has fewer cores.
    ///
    /// This is the primitive behind warm-start adaptation (Section V-C):
    /// index-wrapped adaptation passes `i % num_jobs` and profile-matched
    /// adaptation passes the signature-matched assignment. Source indices may
    /// repeat (new group larger than the stored one) or be skipped (smaller).
    ///
    /// # Panics
    ///
    /// Panics if `source_jobs` is empty, any index is out of range, or
    /// `num_accels == 0`.
    pub fn gather(&self, source_jobs: &[usize], num_accels: usize) -> Mapping {
        assert!(!source_jobs.is_empty(), "a mapping must cover at least one job");
        assert!(num_accels > 0, "need at least one sub-accelerator");
        assert!(source_jobs.iter().all(|&j| j < self.num_jobs()), "source job index out of range");
        let accel_sel = source_jobs.iter().map(|&j| self.accel_sel[j] % num_accels).collect();
        let priority = source_jobs.iter().map(|&j| self.priority[j]).collect();
        Mapping { accel_sel, priority, num_accels }
    }

    /// Returns how many jobs are assigned to each sub-accelerator.
    pub fn load_per_accel(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.num_accels];
        for &a in &self.accel_sel {
            loads[a] += 1;
        }
        loads
    }
}

/// A decoded mapping: for each sub-accelerator, the ordered queue of jobs it
/// will execute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecodedMapping {
    queues: Vec<Vec<JobId>>,
}

impl DecodedMapping {
    /// The per-core job queues, indexed by sub-accelerator.
    pub fn queues(&self) -> &[Vec<JobId>] {
        &self.queues
    }

    /// The queue of one sub-accelerator.
    pub fn queue(&self, accel: usize) -> &[JobId] {
        &self.queues[accel]
    }

    /// Number of sub-accelerators.
    pub fn num_accels(&self) -> usize {
        self.queues.len()
    }

    /// Total number of jobs across all queues.
    pub fn num_jobs(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Log10 of the size of the full mapping search space for `group_size` jobs
/// on `num_accels` cores: `group_size!` orderings (the paper's Section IV-F
/// derivation: `(n!)/(k!)^m × (k!)^m = n!`).
pub fn search_space_log10(group_size: usize, _num_accels: usize) -> f64 {
    // log10(n!) via the log-gamma-free running sum (exact enough for display).
    (1..=group_size).map(|i| (i as f64).log10()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_example_decodes_correctly() {
        // Fig. 5(a): accel_sel = [1,2,2,1,2], priorities = [0.1,0.8,0.4,0.7,0.3]
        // (1-indexed accels in the paper; 0-indexed here).
        let m = Mapping::new(vec![0, 1, 1, 0, 1], vec![0.1, 0.8, 0.4, 0.7, 0.3], 2);
        let d = m.decode();
        let q0: Vec<usize> = d.queue(0).iter().map(|j| j.0).collect();
        let q1: Vec<usize> = d.queue(1).iter().map(|j| j.0).collect();
        assert_eq!(q0, vec![0, 3]); // J1 then J4
        assert_eq!(q1, vec![4, 2, 1]); // J5, J3, J2
    }

    #[test]
    fn decode_is_deterministic_on_ties() {
        let m = Mapping::new(vec![0, 0, 0], vec![0.5, 0.5, 0.5], 1);
        let q: Vec<usize> = m.decode().queue(0).iter().map(|j| j.0).collect();
        assert_eq!(q, vec![0, 1, 2]);
    }

    #[test]
    fn random_mapping_is_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mapping::random(&mut rng, 50, 4);
        assert_eq!(m.num_jobs(), 50);
        assert!(m.accel_sel().iter().all(|&a| a < 4));
        assert!(m.priority().iter().all(|&p| (0.0..1.0).contains(&p)));
        assert_eq!(m.decode().num_jobs(), 50);
    }

    #[test]
    fn vector_round_trip_preserves_decoding() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Mapping::random(&mut rng, 30, 5);
        let back = Mapping::from_vector(&m.to_vector(), 5);
        assert_eq!(m.accel_sel(), back.accel_sel());
        assert_eq!(m.decode(), back.decode());
    }

    #[test]
    fn load_per_accel_sums_to_jobs() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&mut rng, 40, 3);
        assert_eq!(m.load_per_accel().iter().sum::<usize>(), 40);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn accel_gene_out_of_range_panics() {
        let _ = Mapping::new(vec![0, 3], vec![0.1, 0.2], 2);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn mismatched_genomes_panic() {
        let _ = Mapping::new(vec![0, 1], vec![0.1], 2);
    }

    #[test]
    fn gather_transfers_gene_blocks() {
        let m = Mapping::new(vec![0, 1, 1, 0], vec![0.1, 0.8, 0.4, 0.7], 2);
        let g = m.gather(&[3, 3, 0, 1, 2], 2);
        assert_eq!(g.num_jobs(), 5);
        assert_eq!(g.accel_sel(), &[0, 0, 0, 1, 1]);
        assert_eq!(g.priority(), &[0.7, 0.7, 0.1, 0.8, 0.4]);
    }

    #[test]
    fn gather_remaps_accels_modulo_new_core_count() {
        let m = Mapping::new(vec![0, 3, 2, 1], vec![0.1, 0.2, 0.3, 0.4], 4);
        let g = m.gather(&[0, 1, 2, 3], 2);
        assert_eq!(g.accel_sel(), &[0, 1, 0, 1]);
        assert_eq!(g.num_accels(), 2);
    }

    #[test]
    #[should_panic(expected = "source job index out of range")]
    fn gather_rejects_out_of_range_sources() {
        let m = Mapping::new(vec![0, 1], vec![0.1, 0.2], 2);
        let _ = m.gather(&[0, 2], 2);
    }

    #[test]
    fn search_space_matches_paper_magnitude() {
        // Section IV-F: 4 sub-accelerators, group size 60 => 60! ≈ 1e81.
        let log = search_space_log10(60, 4);
        assert!((log - 81.0).abs() < 1.5, "log10(60!) = {log}");
    }

    proptest! {
        #[test]
        fn from_vector_always_valid(v in proptest::collection::vec(-2.0f64..3.0, 2..60)) {
            let v = if v.len() % 2 == 1 { v[..v.len() - 1].to_vec() } else { v };
            if v.is_empty() { return Ok(()); }
            let m = Mapping::from_vector(&v, 4);
            prop_assert!(m.accel_sel().iter().all(|&a| a < 4));
            prop_assert!(m.priority().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }

        #[test]
        fn decode_partitions_all_jobs(n in 1usize..80, m in 1usize..8, seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = Mapping::random(&mut rng, n, m);
            let d = map.decode();
            prop_assert_eq!(d.num_jobs(), n);
            // Every job appears exactly once.
            let mut seen = vec![false; n];
            for q in d.queues() {
                for j in q {
                    prop_assert!(!seen[j.0]);
                    seen[j.0] = true;
                }
            }
            prop_assert!(seen.into_iter().all(|s| s));
        }

        #[test]
        fn priorities_order_queues(n in 2usize..40, seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let map = Mapping::random(&mut rng, n, 1);
            let d = map.decode();
            let q = d.queue(0);
            for w in q.windows(2) {
                prop_assert!(map.priority()[w[0].0] <= map.priority()[w[1].0]);
            }
        }
    }
}
