//! The schedule produced by the bandwidth allocator: per-core timelines, the
//! bandwidth-allocation trace, makespan and throughput (Fig. 4b / Fig. 15).

use magma_model::JobId;
use serde::{Deserialize, Serialize};

/// One contiguous execution of a job on a sub-accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSegment {
    /// The job being executed.
    pub job: JobId,
    /// The sub-accelerator it runs on.
    pub accel: usize,
    /// Start time in seconds.
    pub start_sec: f64,
    /// End time in seconds.
    pub end_sec: f64,
}

impl ScheduleSegment {
    /// Duration of the segment in seconds.
    pub fn duration_sec(&self) -> f64 {
        self.end_sec - self.start_sec
    }
}

/// The bandwidth granted to every sub-accelerator over one time slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BwSlice {
    /// Slice start time in seconds.
    pub start_sec: f64,
    /// Slice end time in seconds.
    pub end_sec: f64,
    /// Bandwidth granted to each sub-accelerator during the slice (GB/s);
    /// idle cores receive 0.
    pub alloc_gbps: Vec<f64>,
}

/// A complete schedule of one group of jobs on the platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    segments: Vec<ScheduleSegment>,
    bw_trace: Vec<BwSlice>,
    makespan_sec: f64,
    total_flops: u64,
    total_energy_nj: f64,
    num_accels: usize,
}

impl Schedule {
    /// Assembles a schedule. Intended for use by the bandwidth allocator.
    pub(crate) fn new(
        segments: Vec<ScheduleSegment>,
        bw_trace: Vec<BwSlice>,
        makespan_sec: f64,
        total_flops: u64,
        total_energy_nj: f64,
        num_accels: usize,
    ) -> Self {
        Schedule { segments, bw_trace, makespan_sec, total_flops, total_energy_nj, num_accels }
    }

    /// All job segments, in completion order.
    pub fn segments(&self) -> &[ScheduleSegment] {
        &self.segments
    }

    /// Segments executed by one sub-accelerator, in start order.
    pub fn segments_for(&self, accel: usize) -> Vec<&ScheduleSegment> {
        let mut v: Vec<&ScheduleSegment> =
            self.segments.iter().filter(|s| s.accel == accel).collect();
        v.sort_by(|a, b| a.start_sec.partial_cmp(&b.start_sec).unwrap());
        v
    }

    /// The bandwidth-allocation trace (Fig. 4b right / Fig. 15b,d).
    pub fn bw_trace(&self) -> &[BwSlice] {
        &self.bw_trace
    }

    /// Time to finish the whole group, in seconds.
    pub fn makespan_sec(&self) -> f64 {
        self.makespan_sec
    }

    /// Total FLOPs executed by the group.
    pub fn total_flops(&self) -> u64 {
        self.total_flops
    }

    /// Total energy proxy for the group in nanojoules.
    pub fn total_energy_nj(&self) -> f64 {
        self.total_energy_nj
    }

    /// Number of sub-accelerators in the platform.
    pub fn num_accels(&self) -> usize {
        self.num_accels
    }

    /// Achieved throughput in GFLOP/s — the paper's headline metric.
    pub fn throughput_gflops(&self) -> f64 {
        if self.makespan_sec <= 0.0 {
            return 0.0;
        }
        self.total_flops as f64 / self.makespan_sec / 1e9
    }

    /// Fraction of the makespan a sub-accelerator spends executing jobs.
    pub fn accel_utilization(&self, accel: usize) -> f64 {
        if self.makespan_sec <= 0.0 {
            return 0.0;
        }
        let busy: f64 =
            self.segments.iter().filter(|s| s.accel == accel).map(|s| s.duration_sec()).sum();
        (busy / self.makespan_sec).min(1.0)
    }

    /// Average utilization across all sub-accelerators.
    pub fn mean_utilization(&self) -> f64 {
        (0..self.num_accels).map(|a| self.accel_utilization(a)).sum::<f64>()
            / self.num_accels as f64
    }

    /// Peak aggregate bandwidth drawn from the system at any time (GB/s).
    pub fn peak_bw_gbps(&self) -> f64 {
        self.bw_trace.iter().map(|s| s.alloc_gbps.iter().sum::<f64>()).fold(0.0, f64::max)
    }

    /// Time-weighted average aggregate bandwidth drawn from the system (GB/s).
    pub fn mean_bw_gbps(&self) -> f64 {
        if self.makespan_sec <= 0.0 {
            return 0.0;
        }
        let weighted: f64 = self
            .bw_trace
            .iter()
            .map(|s| s.alloc_gbps.iter().sum::<f64>() * (s.end_sec - s.start_sec))
            .sum();
        weighted / self.makespan_sec
    }

    /// Renders a text Gantt chart of the schedule (the visualization of
    /// Fig. 15a/c), `width` characters wide.
    ///
    /// Each row is a sub-accelerator; each cell shows the last digit of the
    /// job occupying that core at that time, or `.` when idle.
    pub fn render_gantt(&self, width: usize) -> String {
        let width = width.max(10);
        let mut out = String::new();
        let span = self.makespan_sec.max(f64::MIN_POSITIVE);
        for accel in 0..self.num_accels {
            let mut row = vec!['.'; width];
            for seg in self.segments.iter().filter(|s| s.accel == accel) {
                let a = ((seg.start_sec / span) * width as f64).floor() as usize;
                let b = ((seg.end_sec / span) * width as f64).ceil() as usize;
                let ch = char::from_digit((seg.job.0 % 10) as u32, 10).unwrap_or('#');
                for cell in row.iter_mut().take(b.min(width)).skip(a.min(width)) {
                    *cell = ch;
                }
            }
            out.push_str(&format!("accel {accel:>2} |"));
            out.extend(row);
            out.push('\n');
        }
        out.push_str(&format!(
            "makespan {:.3} ms, throughput {:.1} GFLOP/s\n",
            self.makespan_sec * 1e3,
            self.throughput_gflops()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schedule {
        Schedule::new(
            vec![
                ScheduleSegment { job: JobId(0), accel: 0, start_sec: 0.0, end_sec: 1.0 },
                ScheduleSegment { job: JobId(1), accel: 1, start_sec: 0.0, end_sec: 0.5 },
                ScheduleSegment { job: JobId(2), accel: 1, start_sec: 0.5, end_sec: 2.0 },
            ],
            vec![
                BwSlice { start_sec: 0.0, end_sec: 0.5, alloc_gbps: vec![4.0, 12.0] },
                BwSlice { start_sec: 0.5, end_sec: 2.0, alloc_gbps: vec![4.0, 2.0] },
            ],
            2.0,
            4_000_000_000,
            1000.0,
            2,
        )
    }

    #[test]
    fn throughput_is_flops_over_makespan() {
        let s = sample();
        assert!((s.throughput_gflops() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_per_accel() {
        let s = sample();
        assert!((s.accel_utilization(0) - 0.5).abs() < 1e-12);
        assert!((s.accel_utilization(1) - 1.0).abs() < 1e-12);
        assert!((s.mean_utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bw_statistics() {
        let s = sample();
        assert!((s.peak_bw_gbps() - 16.0).abs() < 1e-12);
        // (16 * 0.5 + 6 * 1.5) / 2 = 8.5
        assert!((s.mean_bw_gbps() - 8.5).abs() < 1e-12);
    }

    #[test]
    fn segments_for_sorted_by_start() {
        let s = sample();
        let segs = s.segments_for(1);
        assert_eq!(segs.len(), 2);
        assert!(segs[0].start_sec <= segs[1].start_sec);
    }

    #[test]
    fn gantt_has_one_row_per_accel() {
        let s = sample();
        let g = s.render_gantt(40);
        assert_eq!(g.lines().count(), 3); // 2 accels + summary
        assert!(g.contains("accel  0"));
        assert!(g.contains("GFLOP/s"));
    }

    #[test]
    fn segment_duration() {
        let seg = ScheduleSegment { job: JobId(3), accel: 0, start_sec: 1.5, end_sec: 4.0 };
        assert!((seg.duration_sec() - 2.5).abs() < 1e-12);
    }
}
