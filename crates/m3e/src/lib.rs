//! M3E — the Multi-workload Multi-accelerator Mapping Explorer.
//!
//! M3E is the optimization *framework* of the paper (Section IV): it turns
//! the multi-tenant mapping problem into a black-box optimization problem
//! that any search algorithm can drive. The pieces are:
//!
//! * [`encoding`] — the genome encoding of a mapping: a **sub-accelerator
//!   selection** section (which core runs each job) and a **job
//!   prioritization** section (the execution order inside each core), plus
//!   the decoder that turns genes into per-core job queues.
//! * [`analyzer`] — the Job Analyzer, which profiles every job on every
//!   sub-accelerator with the cost model once, producing the Job Analysis
//!   Table consulted inside the optimization loop.
//! * [`bw_alloc`] — the Bandwidth Allocator (Algorithm 1), which replays a
//!   decoded mapping on the platform, re-dividing the shared system bandwidth
//!   among the live jobs at every job-completion event.
//! * [`schedule`] — the resulting timeline: per-core job segments, the
//!   bandwidth-allocation trace, makespan and throughput.
//! * [`evaluator`] — fitness functions (throughput by default; latency,
//!   energy and EDP are also available) with the system-BW constraint baked
//!   in.
//! * [`framework`] — the [`M3e`] façade tying everything
//!   together and the [`MappingProblem`] trait the
//!   optimizers in `magma-optim` search against.
//! * [`history`] — sample-efficiency bookkeeping (best-so-far curves, the
//!   data behind Figs. 10/11/16).
//! * [`warmstart`] — the warm-start engine of Section V-C / Table V: a
//!   [`SolutionHistory`] of solved mappings with their job signatures, and
//!   profile-matched adaptation onto fresh groups.
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Fig. 4a / 5a (encoding + decoder) | [`encoding`] |
//! | Section IV-D2/D4 (Job Analyzer / Analysis Table) | [`analyzer`] |
//! | Algorithm 1 (bandwidth allocation) | [`bw_alloc`] |
//! | Section IV-D (fitness / objectives) | [`evaluator`] |
//! | Section IV-F (search-space size) | [`encoding::search_space_log10`] |
//! | Section V-C / Table V (warm start) | [`warmstart`] |
//!
//! # Example
//!
//! ```
//! use magma_m3e::prelude::*;
//! use magma_model::{TaskType, WorkloadSpec};
//! use magma_platform::{settings, Setting};
//!
//! let group = WorkloadSpec::single_group(TaskType::Mix, 20, 0);
//! let platform = settings::build(Setting::S2);
//! let m3e = M3e::new(platform, group, Objective::Throughput);
//!
//! // Evaluate a random mapping.
//! let mut rng = rand::thread_rng();
//! let mapping = Mapping::random(&mut rng, m3e.num_jobs(), m3e.num_accels());
//! let fitness = m3e.evaluate(&mapping);
//! assert!(fitness > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod bw_alloc;
pub mod encoding;
pub mod evaluator;
pub mod framework;
pub mod history;
pub mod lru;
pub mod schedule;
pub mod warmstart;

pub use analyzer::{JobAnalysisTable, JobAnalyzer};
pub use bw_alloc::BwAllocator;
pub use encoding::{DecodedMapping, Mapping};
pub use evaluator::{CostMemo, FitnessEvaluator, LaunchCost, Objective};
pub use framework::{attach_core_classes, JobProfile, M3e, MappingProblem};
pub use history::SearchHistory;
pub use lru::LruOrder;
pub use schedule::{Schedule, ScheduleSegment};
pub use warmstart::{
    match_signatures, SolutionHistory, StoredSolution, WarmStartEngine, WarmStartMode,
};

/// Convenience re-exports for downstream users.
pub mod prelude {
    pub use crate::analyzer::{JobAnalysisTable, JobAnalyzer};
    pub use crate::bw_alloc::BwAllocator;
    pub use crate::encoding::{DecodedMapping, Mapping};
    pub use crate::evaluator::{CostMemo, FitnessEvaluator, Objective};
    pub use crate::framework::{JobProfile, M3e, MappingProblem};
    pub use crate::history::SearchHistory;
    pub use crate::schedule::{Schedule, ScheduleSegment};
    pub use crate::warmstart::{SolutionHistory, StoredSolution, WarmStartEngine, WarmStartMode};
}
