//! Objectives and the fitness function (Section IV-C).

use crate::analyzer::JobAnalysisTable;
use crate::bw_alloc::BwAllocator;
use crate::encoding::Mapping;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The optimization objective. The paper uses throughput; the alternatives
/// are provided because M3E accepts the objective as an input (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Maximize group throughput in GFLOP/s (the paper's metric).
    #[default]
    Throughput,
    /// Minimize the makespan (seconds); fitness is its negation.
    Latency,
    /// Minimize total energy (nJ); fitness is its negation.
    Energy,
    /// Minimize energy × delay; fitness is its negation.
    EnergyDelayProduct,
}

impl Objective {
    /// Extracts the fitness value (higher is always better) from a schedule.
    pub fn fitness_of(&self, schedule: &Schedule) -> f64 {
        match self {
            Objective::Throughput => schedule.throughput_gflops(),
            Objective::Latency => -schedule.makespan_sec(),
            Objective::Energy => -schedule.total_energy_nj(),
            Objective::EnergyDelayProduct => {
                -(schedule.total_energy_nj() * schedule.makespan_sec())
            }
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The fitness function of M3E: decodes an encoded mapping, replays it through
/// the bandwidth allocator under the system-BW constraint, and extracts the
/// objective.
#[derive(Debug, Clone)]
pub struct FitnessEvaluator {
    table: JobAnalysisTable,
    system_bw_gbps: f64,
    objective: Objective,
    allocator: BwAllocator,
}

impl FitnessEvaluator {
    /// Creates an evaluator from an analysis table, the system-bandwidth
    /// constraint and the objective.
    ///
    /// # Panics
    ///
    /// Panics if `system_bw_gbps` is not positive.
    pub fn new(table: JobAnalysisTable, system_bw_gbps: f64, objective: Objective) -> Self {
        assert!(system_bw_gbps > 0.0, "system bandwidth must be positive");
        FitnessEvaluator { table, system_bw_gbps, objective, allocator: BwAllocator::new() }
    }

    /// The job-analysis table this evaluator consults.
    pub fn table(&self) -> &JobAnalysisTable {
        &self.table
    }

    /// The system bandwidth constraint in GB/s.
    pub fn system_bw_gbps(&self) -> f64 {
        self.system_bw_gbps
    }

    /// The objective being optimized.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Evaluates a mapping and returns its fitness (higher is better).
    ///
    /// # Panics
    ///
    /// Panics if the mapping's job count or accelerator count do not match
    /// the analysis table.
    pub fn fitness(&self, mapping: &Mapping) -> f64 {
        self.objective.fitness_of(&self.schedule(mapping))
    }

    /// Evaluates a mapping and returns the full schedule (used for the
    /// schedule visualizations and detailed reports).
    pub fn schedule(&self, mapping: &Mapping) -> Schedule {
        assert_eq!(
            mapping.num_jobs(),
            self.table.num_jobs(),
            "mapping covers a different number of jobs than the analysis table"
        );
        assert_eq!(
            mapping.num_accels(),
            self.table.num_accels(),
            "mapping targets a different number of sub-accelerators than the table"
        );
        self.allocator.allocate(&mapping.decode(), &self.table, self.system_bw_gbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::JobAnalyzer;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluator(obj: Objective) -> FitnessEvaluator {
        let group = WorkloadSpec::single_group(TaskType::Mix, 24, 0);
        let platform = settings::build(Setting::S2);
        let table = JobAnalyzer::new().analyze(&group, &platform);
        FitnessEvaluator::new(table, platform.system_bw_gbps(), obj)
    }

    #[test]
    fn throughput_fitness_positive() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mapping::random(&mut rng, 24, 4);
        assert!(ev.fitness(&m) > 0.0);
    }

    #[test]
    fn latency_and_energy_fitness_negative() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mapping::random(&mut rng, 24, 4);
        assert!(evaluator(Objective::Latency).fitness(&m) < 0.0);
        assert!(evaluator(Objective::Energy).fitness(&m) < 0.0);
        assert!(evaluator(Objective::EnergyDelayProduct).fitness(&m) < 0.0);
    }

    #[test]
    fn fitness_matches_schedule_throughput() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mapping::random(&mut rng, 24, 4);
        let s = ev.schedule(&m);
        assert!((ev.fitness(&m) - s.throughput_gflops()).abs() < 1e-9);
    }

    #[test]
    fn different_mappings_give_different_fitness() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mapping::random(&mut rng, 24, 4);
        let b = Mapping::random(&mut rng, 24, 4);
        // Not a strict requirement, but with 24 mixed jobs two random mappings
        // almost surely differ in throughput.
        assert_ne!(ev.fitness(&a), ev.fitness(&b));
    }

    #[test]
    #[should_panic(expected = "different number of jobs")]
    fn wrong_job_count_panics() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&mut rng, 10, 4);
        let _ = ev.fitness(&m);
    }
}
