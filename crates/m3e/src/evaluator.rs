//! Objectives and the fitness function (Section IV-C).

use crate::analyzer::JobAnalysisTable;
use crate::bw_alloc::BwAllocator;
use crate::encoding::Mapping;
use crate::schedule::Schedule;
use magma_model::JobId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The optimization objective. The paper uses throughput; the alternatives
/// are provided because M3E accepts the objective as an input (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Objective {
    /// Maximize group throughput in GFLOP/s (the paper's metric).
    #[default]
    Throughput,
    /// Minimize the makespan (seconds); fitness is its negation.
    Latency,
    /// Minimize total energy (nJ); fitness is its negation.
    Energy,
    /// Minimize energy × delay; fitness is its negation.
    EnergyDelayProduct,
}

impl Objective {
    /// Extracts the fitness value (higher is always better) from a schedule.
    pub fn fitness_of(&self, schedule: &Schedule) -> f64 {
        match self {
            Objective::Throughput => schedule.throughput_gflops(),
            Objective::Latency => -schedule.makespan_sec(),
            Objective::Energy => -schedule.total_energy_nj(),
            Objective::EnergyDelayProduct => {
                -(schedule.total_energy_nj() * schedule.makespan_sec())
            }
        }
    }
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// The per-(job, core) quantities the bandwidth-allocator replay needs at
/// job launch: the bytes of DRAM traffic the job streams, its no-stall
/// bandwidth requirement, and the energy it charges at completion. Derived
/// from the [`JobAnalysisTable`] — [`CostMemo`] caches exactly these.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchCost {
    /// Total DRAM traffic of the job on the core, in bytes
    /// (`no-stall latency × required BW` — the `CurJobs` quantity of the
    /// paper's Algorithm 1).
    pub remaining_bytes: f64,
    /// No-stall bandwidth requirement, in GB/s.
    pub required_bw_gbps: f64,
    /// Energy charged when the job completes, in nJ.
    pub energy_nj: f64,
}

impl LaunchCost {
    /// Derives the launch quantities for `job` on `accel` from the table —
    /// the single copy of these expressions, used by both the fresh path and
    /// the memo fill, so the two are bit-identical by construction.
    pub fn derive(table: &JobAnalysisTable, job: JobId, accel: usize) -> Self {
        let lat = table.no_stall_seconds(job, accel);
        let bw = table.required_bw_gbps(job, accel);
        LaunchCost {
            remaining_bytes: lat * bw * 1e9,
            required_bw_gbps: bw,
            energy_nj: table.estimate(job, accel).energy_nj,
        }
    }
}

/// Per-(job, core) launch-cost memo, filled lazily and shared by every
/// evaluation of the problem's lifetime.
///
/// The bandwidth-allocator replay launches every job of every candidate, and
/// each launch re-derived the same three quantities from the analysis table
/// (a division by the core clock, two nested-`Vec` walks, a multiply).
/// Within one generation — and across generations, since mutation touches
/// few genes — the same (job, core) pairs recur constantly, so the memo
/// converges to fully warm after a handful of candidates and every later
/// launch is one flat-array load.
///
/// Each cell is a [`OnceLock`]: concurrent batch evaluation may race to fill
/// a cell, but both racers compute the identical value from the same table,
/// and every evaluation is bit-identical to the unmemoized path (the A/B
/// proptests lock this). Cloning an evaluator clones the memo *with* its
/// filled cells, so warm state survives `M3e` clones.
///
/// Built by [`FitnessEvaluator::new`] unless the `MAGMA_MEMO` knob opts out
/// (see `magma_platform::settings::magma_memo`);
/// [`FitnessEvaluator::with_memoization`] overrides explicitly for A/B runs.
#[derive(Debug, Clone, Default)]
pub struct CostMemo {
    /// `cells[job * num_accels + accel]`.
    cells: Vec<OnceLock<LaunchCost>>,
    num_accels: usize,
}

impl CostMemo {
    /// Creates an empty memo covering `num_jobs × num_accels` cells.
    pub fn new(num_jobs: usize, num_accels: usize) -> Self {
        CostMemo { cells: vec![OnceLock::new(); num_jobs * num_accels], num_accels }
    }

    /// The launch cost of `job` on `accel`, derived from `table` on first
    /// use and cached thereafter.
    pub fn launch(&self, table: &JobAnalysisTable, job: JobId, accel: usize) -> LaunchCost {
        *self.cells[job.0 * self.num_accels + accel]
            .get_or_init(|| LaunchCost::derive(table, job, accel))
    }

    /// How many cells have been filled so far — the "entries survive across
    /// a generation" observable the memoization tests assert on.
    pub fn filled(&self) -> usize {
        self.cells.iter().filter(|c| c.get().is_some()).count()
    }

    /// Total cell count (`num_jobs × num_accels`).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }
}

/// The fitness function of M3E: decodes an encoded mapping, replays it through
/// the bandwidth allocator under the system-BW constraint, and extracts the
/// objective.
#[derive(Debug, Clone)]
pub struct FitnessEvaluator {
    table: JobAnalysisTable,
    system_bw_gbps: f64,
    objective: Objective,
    allocator: BwAllocator,
    memo: Option<CostMemo>,
}

impl FitnessEvaluator {
    /// Creates an evaluator from an analysis table, the system-bandwidth
    /// constraint and the objective. Launch-cost memoization follows the
    /// `MAGMA_MEMO` knob (default on); use
    /// [`FitnessEvaluator::with_memoization`] to pin it explicitly.
    ///
    /// # Panics
    ///
    /// Panics if `system_bw_gbps` is not positive.
    pub fn new(table: JobAnalysisTable, system_bw_gbps: f64, objective: Objective) -> Self {
        assert!(system_bw_gbps > 0.0, "system bandwidth must be positive");
        let evaluator = FitnessEvaluator {
            table,
            system_bw_gbps,
            objective,
            allocator: BwAllocator::new(),
            memo: None,
        };
        evaluator.with_memoization(magma_platform::settings::magma_memo())
    }

    /// Returns the evaluator with per-(job, core) launch-cost memoization
    /// switched on (a fresh, empty memo) or off, overriding the `MAGMA_MEMO`
    /// knob. Results are bit-identical either way; this is the A/B lever.
    pub fn with_memoization(mut self, memoize: bool) -> Self {
        self.memo = memoize.then(|| CostMemo::new(self.table.num_jobs(), self.table.num_accels()));
        self
    }

    /// Whether this evaluator memoizes launch costs.
    pub fn memoized(&self) -> bool {
        self.memo.is_some()
    }

    /// The launch-cost memo, when memoization is on (test observability:
    /// `memo().unwrap().filled()` shows warm entries surviving across a
    /// generation).
    pub fn memo(&self) -> Option<&CostMemo> {
        self.memo.as_ref()
    }

    /// The job-analysis table this evaluator consults.
    pub fn table(&self) -> &JobAnalysisTable {
        &self.table
    }

    /// The system bandwidth constraint in GB/s.
    pub fn system_bw_gbps(&self) -> f64 {
        self.system_bw_gbps
    }

    /// The objective being optimized.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Evaluates a mapping and returns its fitness (higher is better).
    ///
    /// # Panics
    ///
    /// Panics if the mapping's job count or accelerator count do not match
    /// the analysis table.
    pub fn fitness(&self, mapping: &Mapping) -> f64 {
        self.objective.fitness_of(&self.schedule(mapping))
    }

    /// Evaluates a mapping and returns the full schedule (used for the
    /// schedule visualizations and detailed reports).
    pub fn schedule(&self, mapping: &Mapping) -> Schedule {
        assert_eq!(
            mapping.num_jobs(),
            self.table.num_jobs(),
            "mapping covers a different number of jobs than the analysis table"
        );
        assert_eq!(
            mapping.num_accels(),
            self.table.num_accels(),
            "mapping targets a different number of sub-accelerators than the table"
        );
        self.allocator.allocate_with_memo(
            &mapping.decode(),
            &self.table,
            self.system_bw_gbps,
            self.memo.as_ref(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::JobAnalyzer;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn evaluator(obj: Objective) -> FitnessEvaluator {
        let group = WorkloadSpec::single_group(TaskType::Mix, 24, 0);
        let platform = settings::build(Setting::S2);
        let table = JobAnalyzer::new().analyze(&group, &platform);
        FitnessEvaluator::new(table, platform.system_bw_gbps(), obj)
    }

    #[test]
    fn throughput_fitness_positive() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mapping::random(&mut rng, 24, 4);
        assert!(ev.fitness(&m) > 0.0);
    }

    #[test]
    fn latency_and_energy_fitness_negative() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mapping::random(&mut rng, 24, 4);
        assert!(evaluator(Objective::Latency).fitness(&m) < 0.0);
        assert!(evaluator(Objective::Energy).fitness(&m) < 0.0);
        assert!(evaluator(Objective::EnergyDelayProduct).fitness(&m) < 0.0);
    }

    #[test]
    fn fitness_matches_schedule_throughput() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mapping::random(&mut rng, 24, 4);
        let s = ev.schedule(&m);
        assert!((ev.fitness(&m) - s.throughput_gflops()).abs() < 1e-9);
    }

    #[test]
    fn different_mappings_give_different_fitness() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mapping::random(&mut rng, 24, 4);
        let b = Mapping::random(&mut rng, 24, 4);
        // Not a strict requirement, but with 24 mixed jobs two random mappings
        // almost surely differ in throughput.
        assert_ne!(ev.fitness(&a), ev.fitness(&b));
    }

    #[test]
    #[should_panic(expected = "different number of jobs")]
    fn wrong_job_count_panics() {
        let ev = evaluator(Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mapping::random(&mut rng, 10, 4);
        let _ = ev.fitness(&m);
    }

    #[test]
    fn memoization_defaults_on_and_is_overridable() {
        // Ambient environment never sets MAGMA_MEMO → default on.
        let ev = evaluator(Objective::Throughput);
        assert!(ev.memoized());
        let off = ev.with_memoization(false);
        assert!(!off.memoized() && off.memo().is_none());
        let on = off.with_memoization(true);
        assert!(on.memoized());
        assert_eq!(on.memo().unwrap().filled(), 0, "fresh memo starts cold");
    }

    #[test]
    fn memo_entries_survive_across_evaluations() {
        let ev = evaluator(Objective::Throughput).with_memoization(true);
        let mut rng = StdRng::seed_from_u64(5);
        let m = Mapping::random(&mut rng, 24, 4);
        let _ = ev.fitness(&m);
        let warm = ev.memo().unwrap().filled();
        // One candidate touches exactly its (job, chosen-core) pairs.
        assert_eq!(warm, 24);
        // A second candidate reuses every shared pair; the memo only grows.
        let m2 = Mapping::random(&mut rng, 24, 4);
        let _ = ev.fitness(&m2);
        let warmer = ev.memo().unwrap().filled();
        assert!(warmer >= warm);
        assert!(warmer <= ev.memo().unwrap().capacity());
        // Cloning carries the warm cells along.
        assert_eq!(ev.clone().memo().unwrap().filled(), warmer);
    }

    #[test]
    fn memoized_fitness_is_bit_identical_to_fresh() {
        for obj in [
            Objective::Throughput,
            Objective::Latency,
            Objective::Energy,
            Objective::EnergyDelayProduct,
        ] {
            let memoized = evaluator(obj).with_memoization(true);
            let fresh = evaluator(obj).with_memoization(false);
            let mut rng = StdRng::seed_from_u64(7);
            for _ in 0..16 {
                let m = Mapping::random(&mut rng, 24, 4);
                assert_eq!(
                    memoized.fitness(&m).to_bits(),
                    fresh.fitness(&m).to_bits(),
                    "{obj}: memoized and fresh paths diverged"
                );
            }
        }
    }

    #[test]
    fn launch_cost_derivation_matches_table() {
        let ev = evaluator(Objective::Throughput);
        let t = ev.table();
        for job in 0..4 {
            for accel in 0..t.num_accels() {
                let c = LaunchCost::derive(t, JobId(job), accel);
                assert_eq!(c.required_bw_gbps, t.required_bw_gbps(JobId(job), accel));
                assert_eq!(
                    c.remaining_bytes,
                    t.no_stall_seconds(JobId(job), accel) * c.required_bw_gbps * 1e9
                );
                assert_eq!(c.energy_nj, t.estimate(JobId(job), accel).energy_nj);
            }
        }
    }
}
