//! The Bandwidth Allocator — Algorithm 1 of the paper.
//!
//! The system bandwidth is a shared resource across the sub-accelerator
//! cores. Instead of splitting it evenly, the allocator re-divides it among
//! the *live* jobs in proportion to their required (no-stall) bandwidth at
//! every job-completion event: memory-intensive jobs receive more bandwidth,
//! compute-intensive jobs only what they need. A job whose granted bandwidth
//! is below its requirement stretches proportionally (it becomes
//! memory-bound).

use crate::analyzer::JobAnalysisTable;
use crate::encoding::DecodedMapping;
use crate::evaluator::{CostMemo, LaunchCost};
use crate::schedule::{BwSlice, Schedule, ScheduleSegment};
use magma_model::JobId;

/// Absolute tolerance (in bytes of remaining traffic) below which a job is
/// considered finished; one byte is far below any job's real traffic and
/// avoids pathological floating-point tail iterations.
const REMAINING_EPS: f64 = 1.0;

/// The bandwidth allocator (Algorithm 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct BwAllocator;

/// Per-core execution state during the replay.
#[derive(Debug, Clone)]
struct CoreState {
    /// Index of the next job in this core's queue.
    next: usize,
    /// Currently running job, if any.
    current: Option<RunningJob>,
}

#[derive(Debug, Clone)]
struct RunningJob {
    job: JobId,
    /// Remaining "work" expressed in bytes of DRAM traffic still to stream
    /// (`no-stall latency × required BW`, the `CurJobs` quantity of
    /// Algorithm 1).
    remaining_bytes: f64,
    /// The job's no-stall bandwidth requirement in GB/s.
    required_bw_gbps: f64,
    /// Energy the job will charge at completion, in nJ (carried from launch
    /// so completion does not consult the table again).
    energy_nj: f64,
    /// When the job started executing.
    start_sec: f64,
}

impl BwAllocator {
    /// Creates an allocator.
    pub fn new() -> Self {
        BwAllocator
    }

    /// Replays a decoded mapping against the job-analysis table under the
    /// given system-bandwidth budget and returns the resulting schedule.
    ///
    /// # Panics
    ///
    /// Panics if `system_bw_gbps` is not positive or if the decoded mapping
    /// and the table disagree on the number of sub-accelerators.
    pub fn allocate(
        &self,
        mapping: &DecodedMapping,
        table: &JobAnalysisTable,
        system_bw_gbps: f64,
    ) -> Schedule {
        self.allocate_with_memo(mapping, table, system_bw_gbps, None)
    }

    /// As [`BwAllocator::allocate`], consulting a per-(job, core) launch-cost
    /// memo when one is supplied (see [`CostMemo`]). The memo only short-cuts
    /// how launch quantities are *obtained* — its cached values are produced
    /// by the identical expressions the fresh path uses, so the returned
    /// schedule is bit-identical either way (locked by the A/B proptests in
    /// `evaluator` and `tests/integration_pool.rs`).
    ///
    /// # Panics
    ///
    /// As [`BwAllocator::allocate`]; additionally in debug builds if the
    /// memo's dimensions do not cover the mapping.
    pub fn allocate_with_memo(
        &self,
        mapping: &DecodedMapping,
        table: &JobAnalysisTable,
        system_bw_gbps: f64,
        memo: Option<&CostMemo>,
    ) -> Schedule {
        assert!(system_bw_gbps > 0.0, "system bandwidth must be positive");
        assert_eq!(
            mapping.num_accels(),
            table.num_accels(),
            "mapping and analysis table describe different platforms"
        );
        let num_accels = table.num_accels();
        let mut cores: Vec<CoreState> =
            (0..num_accels).map(|_| CoreState { next: 0, current: None }).collect();

        let mut now = 0.0_f64;
        let mut segments = Vec::with_capacity(mapping.num_jobs());
        let mut bw_trace = Vec::new();
        let mut total_energy_nj = 0.0;

        // Launch the first job on every non-empty queue.
        for (accel, core) in cores.iter_mut().enumerate() {
            Self::launch_next(core, accel, mapping, table, memo, now);
        }

        loop {
            // Gather the live jobs.
            let live: Vec<usize> =
                (0..num_accels).filter(|&a| cores[a].current.is_some()).collect();
            if live.is_empty() {
                break;
            }

            // Proportional bandwidth division (Algorithm 1, lines 5–9).
            let sum_req: f64 =
                live.iter().map(|&a| cores[a].current.as_ref().unwrap().required_bw_gbps).sum();
            let scale = if sum_req <= system_bw_gbps { 1.0 } else { system_bw_gbps / sum_req };
            let mut alloc = vec![0.0_f64; num_accels];
            for &a in &live {
                alloc[a] = cores[a].current.as_ref().unwrap().required_bw_gbps * scale;
            }

            // Smallest time to the next completion under this allocation.
            let dt = live
                .iter()
                .map(|&a| {
                    let rj = cores[a].current.as_ref().unwrap();
                    rj.remaining_bytes / (alloc[a] * 1e9)
                })
                .fold(f64::INFINITY, f64::min)
                .max(0.0);

            bw_trace.push(BwSlice { start_sec: now, end_sec: now + dt, alloc_gbps: alloc.clone() });

            // Advance every live job by dt.
            now += dt;
            for &a in &live {
                let finished = {
                    let rj = cores[a].current.as_mut().unwrap();
                    rj.remaining_bytes -= dt * alloc[a] * 1e9;
                    rj.remaining_bytes <= REMAINING_EPS
                };
                if finished {
                    let rj = cores[a].current.take().unwrap();
                    total_energy_nj += rj.energy_nj;
                    segments.push(ScheduleSegment {
                        job: rj.job,
                        accel: a,
                        start_sec: rj.start_sec,
                        end_sec: now,
                    });
                    Self::launch_next(&mut cores[a], a, mapping, table, memo, now);
                }
            }
        }

        Schedule::new(segments, bw_trace, now, table.total_flops(), total_energy_nj, num_accels)
    }

    fn launch_next(
        core: &mut CoreState,
        accel: usize,
        mapping: &DecodedMapping,
        table: &JobAnalysisTable,
        memo: Option<&CostMemo>,
        now: f64,
    ) {
        let queue = mapping.queue(accel);
        if core.next < queue.len() {
            let job = queue[core.next];
            core.next += 1;
            let LaunchCost { remaining_bytes, required_bw_gbps, energy_nj } = match memo {
                Some(memo) => memo.launch(table, job, accel),
                None => LaunchCost::derive(table, job, accel),
            };
            core.current = Some(RunningJob {
                job,
                remaining_bytes,
                required_bw_gbps,
                energy_nj,
                start_sec: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyzer::JobAnalyzer;
    use crate::encoding::Mapping;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(task: TaskType, n: usize, setting: Setting, seed: u64) -> (JobAnalysisTable, Mapping) {
        let group = WorkloadSpec::single_group(task, n, seed);
        let platform = settings::build(setting);
        let table = JobAnalyzer::new().analyze(&group, &platform);
        let mut rng = StdRng::seed_from_u64(seed);
        let mapping = Mapping::random(&mut rng, n, platform.num_sub_accels());
        (table, mapping)
    }

    #[test]
    fn every_job_is_scheduled_exactly_once() {
        let (table, mapping) = setup(TaskType::Mix, 40, Setting::S2, 1);
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, 16.0);
        assert_eq!(sched.segments().len(), 40);
        let mut seen = vec![false; 40];
        for s in sched.segments() {
            assert!(!seen[s.job.0], "job {} scheduled twice", s.job.0);
            seen[s.job.0] = true;
        }
        assert!(seen.into_iter().all(|x| x));
    }

    #[test]
    fn jobs_on_same_core_do_not_overlap() {
        let (table, mapping) = setup(TaskType::Mix, 30, Setting::S2, 2);
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, 16.0);
        for a in 0..table.num_accels() {
            let segs = sched.segments_for(a);
            for w in segs.windows(2) {
                assert!(w[1].start_sec >= w[0].end_sec - 1e-12);
            }
        }
    }

    #[test]
    fn bw_never_exceeds_system_budget() {
        let (table, mapping) = setup(TaskType::Recommendation, 30, Setting::S2, 3);
        let bw = 4.0;
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, bw);
        for slice in sched.bw_trace() {
            let sum: f64 = slice.alloc_gbps.iter().sum();
            assert!(sum <= bw * (1.0 + 1e-9), "slice draws {sum} > {bw}");
        }
    }

    #[test]
    fn unconstrained_bw_gives_no_stall_execution() {
        let (table, mapping) = setup(TaskType::Vision, 20, Setting::S1, 4);
        // Absurdly high system BW: every job should run at its no-stall latency.
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, 1e9);
        for seg in sched.segments() {
            let expect = table.no_stall_seconds(seg.job, seg.accel);
            let actual = seg.duration_sec();
            assert!(
                (actual - expect).abs() / expect < 1e-6,
                "job {} took {actual}, expected {expect}",
                seg.job.0
            );
        }
    }

    #[test]
    fn lower_bw_never_improves_makespan() {
        let (table, mapping) = setup(TaskType::Mix, 40, Setting::S2, 5);
        let alloc = BwAllocator::new();
        let decoded = mapping.decode();
        let high = alloc.allocate(&decoded, &table, 16.0);
        let low = alloc.allocate(&decoded, &table, 1.0);
        assert!(low.makespan_sec() >= high.makespan_sec());
        assert!(low.throughput_gflops() <= high.throughput_gflops());
    }

    #[test]
    fn makespan_at_least_longest_single_job() {
        let (table, mapping) = setup(TaskType::Mix, 25, Setting::S4, 6);
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, 256.0);
        let longest = (0..25)
            .map(|j| {
                (0..table.num_accels())
                    .map(|a| table.no_stall_seconds(JobId(j), a))
                    .fold(f64::INFINITY, f64::min)
            })
            .fold(0.0, f64::max);
        assert!(sched.makespan_sec() >= longest * 0.999);
    }

    #[test]
    fn memory_intensive_jobs_get_proportionally_more_bw() {
        // Two cores, constrained BW: the core running the more BW-hungry job
        // must be granted more bandwidth in the first slice.
        let group = WorkloadSpec::single_group(TaskType::Mix, 8, 0);
        let platform = settings::build(Setting::S2).with_system_bw_gbps(2.0);
        let table = JobAnalyzer::new().analyze(&group, &platform);
        // Pick two jobs with very different BW needs on cores 0 and 1.
        let mut jobs: Vec<usize> = (0..8).collect();
        jobs.sort_by(|&a, &b| {
            table
                .required_bw_gbps(JobId(a), 0)
                .partial_cmp(&table.required_bw_gbps(JobId(b), 0))
                .unwrap()
        });
        let frugal = jobs[0];
        let hungry = jobs[7];
        let mut accel_sel = vec![0usize; 8];
        accel_sel[hungry] = 1;
        // Give the two interesting jobs top priority on their cores.
        let mut prio = vec![0.9; 8];
        prio[frugal] = 0.0;
        prio[hungry] = 0.0;
        let mapping = Mapping::new(accel_sel, prio, 4);
        let sched = BwAllocator::new().allocate(&mapping.decode(), &table, 2.0);
        let first = &sched.bw_trace()[0];
        let req_f = table.required_bw_gbps(JobId(frugal), 0);
        let req_h = table.required_bw_gbps(JobId(hungry), 1);
        if req_h > req_f {
            assert!(first.alloc_gbps[1] >= first.alloc_gbps[0]);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn allocator_terminates_and_covers_all_jobs(
            n in 4usize..60, seed in 0u64..20, bw in 1.0f64..64.0,
        ) {
            let (table, mapping) = setup(TaskType::Mix, n, Setting::S2, seed);
            let sched = BwAllocator::new().allocate(&mapping.decode(), &table, bw);
            prop_assert_eq!(sched.segments().len(), n);
            prop_assert!(sched.makespan_sec() > 0.0);
            prop_assert!(sched.throughput_gflops() > 0.0);
        }
    }
}
