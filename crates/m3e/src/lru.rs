//! A minimal recency order shared by every bounded solution store.
//!
//! Both the per-task [`SolutionHistory`](crate::SolutionHistory) and the
//! serving layer's signature-keyed mapping cache (`magma-serve`) need the
//! same three operations — mark a key most recently used, pop the least
//! recently used key, and drop a key — over different key types.
//! [`LruOrder`] is that one shared implementation: a plain vector, least
//! recently used first, which is exactly right for the tens-of-entries
//! stores this workspace bounds (an O(1) linked structure would only pay
//! off at thousands of entries).

use serde::{DeError, Deserialize, Serialize, Value};

/// Recency order over keys of type `K`, least recently used first.
///
/// The order never holds duplicates: [`LruOrder::bump`] moves an existing
/// key to the most-recently-used end instead of re-inserting it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LruOrder<K>(Vec<K>);

impl<K: PartialEq + Clone> LruOrder<K> {
    /// Creates an empty order.
    pub fn new() -> Self {
        LruOrder(Vec::new())
    }

    /// Marks `key` most recently used, inserting it if absent.
    pub fn bump(&mut self, key: &K) {
        self.0.retain(|k| k != key);
        self.0.push(key.clone());
    }

    /// Removes and returns the least recently used key, if any.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.0.is_empty() {
            None
        } else {
            Some(self.0.remove(0))
        }
    }

    /// Drops `key` from the order (no-op when absent).
    pub fn remove(&mut self, key: &K) {
        self.0.retain(|k| k != key);
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.0.contains(key)
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The keys, least recently used first.
    pub fn as_slice(&self) -> &[K] {
        &self.0
    }
}

impl<K: PartialEq + Clone> Default for LruOrder<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: PartialEq + Clone> FromIterator<K> for LruOrder<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut order = Self::new();
        for key in iter {
            order.bump(&key);
        }
        order
    }
}

// The vendored serde derive does not support generics, so the (transparent,
// Vec-shaped) impls are written by hand.
impl<K: Serialize> Serialize for LruOrder<K> {
    fn to_value(&self) -> Value {
        self.0.to_value()
    }
}

impl<K: Deserialize> Deserialize for LruOrder<K> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<K>::from_value(v).map(LruOrder)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_moves_to_back_without_duplicating() {
        let mut order: LruOrder<u32> = [1, 2, 3].into_iter().collect();
        order.bump(&1);
        assert_eq!(order.as_slice(), &[2, 3, 1]);
        assert_eq!(order.len(), 3);
        assert!(order.contains(&2));
    }

    #[test]
    fn pop_lru_returns_oldest_first() {
        let mut order: LruOrder<&str> = ["a", "b"].into_iter().collect();
        assert_eq!(order.pop_lru(), Some("a"));
        assert_eq!(order.pop_lru(), Some("b"));
        assert_eq!(order.pop_lru(), None);
        assert!(order.is_empty());
    }

    #[test]
    fn remove_is_a_noop_when_absent() {
        let mut order: LruOrder<u32> = [7].into_iter().collect();
        order.remove(&9);
        assert_eq!(order.as_slice(), &[7]);
        order.remove(&7);
        assert!(order.is_empty());
    }

    #[test]
    fn serde_round_trips_as_a_plain_array() {
        let order: LruOrder<u32> = [3, 1, 2].into_iter().collect();
        let json = serde_json::to_string(&order).unwrap();
        assert_eq!(json, "[3,1,2]");
        let back: LruOrder<u32> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, order);
    }
}
