//! The warm-start engine (Section V-C).
//!
//! When the current group of jobs belongs to the same task category as a
//! previously solved group, the previous best mapping is adapted and used to
//! initialize the optimizer instead of a random population. The paper shows
//! this recovers most of the benefit of a full search within one epoch
//! (Table V).

use crate::encoding::Mapping;
use magma_model::TaskType;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Stores the best known mapping per task category and seeds new searches
/// from it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WarmStartEngine {
    solutions: HashMap<TaskType, Mapping>,
}

impl WarmStartEngine {
    /// Creates an empty engine (no previous knowledge).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the best mapping found for a task category, replacing any
    /// previous entry.
    pub fn record(&mut self, task: TaskType, best: Mapping) {
        self.solutions.insert(task, best);
    }

    /// Whether previous knowledge exists for this task category.
    pub fn has_knowledge(&self, task: TaskType) -> bool {
        self.solutions.contains_key(&task)
    }

    /// The stored solution for a task category, if any.
    pub fn stored(&self, task: TaskType) -> Option<&Mapping> {
        self.solutions.get(&task)
    }

    /// Adapts the stored solution of `task` to a new problem of `num_jobs`
    /// jobs on `num_accels` cores. Returns `None` when no knowledge exists.
    ///
    /// Adaptation wraps the stored genomes around (or truncates them) to the
    /// new group size and re-maps accelerator genes modulo the new core
    /// count — the new jobs of the same task category have statistically
    /// similar profiles, which is exactly the assumption warm-start exploits.
    pub fn adapt(&self, task: TaskType, num_jobs: usize, num_accels: usize) -> Option<Mapping> {
        let stored = self.solutions.get(&task)?;
        let accel_sel =
            (0..num_jobs).map(|i| stored.accel_sel()[i % stored.num_jobs()] % num_accels).collect();
        let priority = (0..num_jobs).map(|i| stored.priority()[i % stored.num_jobs()]).collect();
        Some(Mapping::new(accel_sel, priority, num_accels))
    }

    /// Builds an initial population of `size` individuals for a new search:
    /// the adapted previous solution plus jittered copies of it. Returns
    /// `None` when no knowledge exists for the task category, in which case
    /// the caller should fall back to random initialization.
    pub fn seed_population<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        task: TaskType,
        num_jobs: usize,
        num_accels: usize,
        size: usize,
    ) -> Option<Vec<Mapping>> {
        let base = self.adapt(task, num_jobs, num_accels)?;
        let mut pop = Vec::with_capacity(size);
        pop.push(base.clone());
        while pop.len() < size {
            let mut child = base.clone();
            // Jitter ~10% of the genes so the population has diversity around
            // the transferred solution.
            let n = child.num_jobs();
            let flips = (n / 10).max(1);
            for _ in 0..flips {
                let i = rng.gen_range(0..n);
                child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
                let j = rng.gen_range(0..n);
                child.priority_mut()[j] = rng.gen_range(0.0..1.0);
            }
            pop.push(child);
        }
        Some(pop)
    }

    /// Number of task categories with stored knowledge.
    pub fn num_entries(&self) -> usize {
        self.solutions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mapping(n: usize, m: usize, seed: u64) -> Mapping {
        let mut rng = StdRng::seed_from_u64(seed);
        Mapping::random(&mut rng, n, m)
    }

    #[test]
    fn empty_engine_has_no_knowledge() {
        let e = WarmStartEngine::new();
        assert!(!e.has_knowledge(TaskType::Vision));
        assert!(e.adapt(TaskType::Vision, 10, 2).is_none());
        assert_eq!(e.num_entries(), 0);
    }

    #[test]
    fn record_and_adapt_same_shape() {
        let mut e = WarmStartEngine::new();
        let best = mapping(20, 4, 1);
        e.record(TaskType::Mix, best.clone());
        assert!(e.has_knowledge(TaskType::Mix));
        let adapted = e.adapt(TaskType::Mix, 20, 4).unwrap();
        assert_eq!(adapted, best);
    }

    #[test]
    fn adapt_to_larger_group_wraps_genes() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Language, mapping(10, 4, 2));
        let adapted = e.adapt(TaskType::Language, 25, 4).unwrap();
        assert_eq!(adapted.num_jobs(), 25);
        let stored = e.stored(TaskType::Language).unwrap();
        assert_eq!(adapted.accel_sel()[13], stored.accel_sel()[3]);
    }

    #[test]
    fn adapt_to_fewer_accels_stays_in_range() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Vision, mapping(10, 8, 3));
        let adapted = e.adapt(TaskType::Vision, 10, 4).unwrap();
        assert!(adapted.accel_sel().iter().all(|&a| a < 4));
    }

    #[test]
    fn seed_population_has_requested_size_and_contains_base() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Recommendation, mapping(30, 4, 4));
        let mut rng = StdRng::seed_from_u64(5);
        let pop = e.seed_population(&mut rng, TaskType::Recommendation, 30, 4, 16).unwrap();
        assert_eq!(pop.len(), 16);
        let base = e.adapt(TaskType::Recommendation, 30, 4).unwrap();
        assert_eq!(pop[0], base);
        // Jittered copies differ from the base but keep valid genes.
        assert!(pop[1..].iter().any(|m| m != &base));
        for m in &pop {
            assert!(m.accel_sel().iter().all(|&a| a < 4));
        }
    }

    #[test]
    fn seed_population_none_without_knowledge() {
        let e = WarmStartEngine::new();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(e.seed_population(&mut rng, TaskType::Mix, 10, 2, 4).is_none());
    }

    #[test]
    fn recording_overwrites_previous_entry() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Mix, mapping(10, 2, 7));
        let second = mapping(10, 2, 8);
        e.record(TaskType::Mix, second.clone());
        assert_eq!(e.stored(TaskType::Mix), Some(&second));
        assert_eq!(e.num_entries(), 1);
    }
}
