//! The warm-start engine (Section V-C, Table V).
//!
//! When the current group of jobs belongs to the same task category as a
//! previously solved group, the previous best mapping is adapted and used to
//! initialize the optimizer instead of a random population. The paper shows
//! this recovers most of the benefit of a full search within one epoch
//! (Table V).
//!
//! Adaptation comes in two flavours ([`WarmStartMode`]):
//!
//! * **Index wrapping** ([`WarmStartEngine::adapt`]) — job `i` of the new
//!   group inherits the genes of stored job `i % stored_len`. Cheap, but it
//!   assumes the new group lists similar jobs in the same order, which fails
//!   whenever request interleaving reshuffles the layers.
//! * **Profile matching** ([`WarmStartEngine::adapt_matched`], the default) —
//!   each new job inherits the genes of the stored job with the nearest
//!   [`JobSignature`], found by a greedy one-to-one assignment
//!   ([`match_signatures`]). This is what actually carries Table V's claim
//!   that stored solutions transfer to *similar* jobs: a conv inherits a
//!   conv's core affinity regardless of where either sits in its group.
//!
//! The engine keeps its knowledge in a [`SolutionHistory`]: one
//! [`StoredSolution`] (mapping + optional signatures) per task category,
//! serializable so a long-running mapping service can persist it across
//! restarts.

use crate::encoding::Mapping;
use magma_model::{JobSignature, TaskType};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// How a stored solution is adapted to a new group (Section V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum WarmStartMode {
    /// Job `i` inherits the genes of stored job `i % stored_len`.
    IndexWrap,
    /// Each job inherits the genes of the stored job with the nearest
    /// [`JobSignature`] (greedy one-to-one assignment).
    #[default]
    ProfileMatched,
}

impl fmt::Display for WarmStartMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WarmStartMode::IndexWrap => f.write_str("index-wrap"),
            WarmStartMode::ProfileMatched => f.write_str("profile-matched"),
        }
    }
}

/// One remembered solution: the best mapping found for a group, plus the
/// signatures of the jobs it was found for (when recorded via
/// [`SolutionHistory::record_profiled`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoredSolution {
    mapping: Mapping,
    signatures: Option<Vec<JobSignature>>,
}

impl StoredSolution {
    /// Creates a stored solution from a solved mapping and (optionally) the
    /// signatures of the jobs it was solved for. This is the entry point for
    /// callers that manage their own storage — e.g. the signature-keyed
    /// mapping cache of `magma-serve`, whose entries are not per-task.
    ///
    /// # Panics
    ///
    /// Panics if signatures are given and `signatures.len() != mapping.num_jobs()`.
    pub fn new(mapping: Mapping, signatures: Option<Vec<JobSignature>>) -> Self {
        if let Some(sigs) = &signatures {
            assert_eq!(sigs.len(), mapping.num_jobs(), "one signature per job of the mapping");
        }
        StoredSolution { mapping, signatures }
    }

    /// The stored best mapping.
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// The signatures of the jobs the mapping was optimized for, if they were
    /// recorded. Without signatures only index-wrapped adaptation is
    /// possible.
    pub fn signatures(&self) -> Option<&[JobSignature]> {
        self.signatures.as_deref()
    }

    /// Adapts this stored solution to a new group: profile-matched
    /// ([`match_signatures`] + [`Mapping::gather`]) when signatures were
    /// recorded (and are consistent), index-wrapped otherwise. This is the
    /// per-solution core of [`WarmStartEngine::adapt_matched`], exposed so
    /// non-task-keyed stores (the serving-layer mapping cache) can adapt a
    /// hit directly.
    ///
    /// # Panics
    ///
    /// Panics if `new_signatures` is empty or `num_accels == 0` — a mapping
    /// cannot cover zero jobs or zero cores.
    pub fn adapt_to(&self, new_signatures: &[JobSignature], num_accels: usize) -> Mapping {
        match self.signatures() {
            Some(stored_sigs) if stored_sigs.len() == self.mapping.num_jobs() => {
                let assignment = match_signatures(new_signatures, stored_sigs);
                self.mapping.gather(&assignment, num_accels)
            }
            _ => {
                let n = self.mapping.num_jobs();
                let sources: Vec<usize> = (0..new_signatures.len()).map(|i| i % n).collect();
                self.mapping.gather(&sources, num_accels)
            }
        }
    }

    /// Builds an initial population of `size` individuals around the adapted
    /// solution ([`StoredSolution::adapt_to`] plus jittered copies) — the
    /// budgeted adapt-then-refine entry point: hand the result to a
    /// budget-limited search (e.g. `Magma::refine`) to spend a small
    /// refinement budget on top of the transferred solution.
    pub fn seed_population<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        new_signatures: &[JobSignature],
        num_accels: usize,
        size: usize,
    ) -> Vec<Mapping> {
        let base = self.adapt_to(new_signatures, num_accels);
        jittered_population(rng, base, num_accels, size)
    }
}

/// Per-task-category storage of solved mappings and their job signatures —
/// the knowledge base behind warm start (Section V-C).
///
/// By default the history is unbounded (at most one entry per
/// [`TaskType`]). A long-running mapping service that keys its own storage
/// more finely can bound it with [`SolutionHistory::with_capacity`], which
/// evicts the least-recently *used* entry — used meaning recorded or
/// explicitly [`touch`](SolutionHistory::touch)ed — once the capacity is
/// exceeded.
///
/// `Deserialize` is implemented by hand so that histories persisted
/// *before* the capacity/recency fields existed still load: a missing
/// `recency` is rebuilt from the entry keys (in [`TaskType`] order) and a
/// missing `capacity` means unbounded.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SolutionHistory {
    entries: HashMap<TaskType, StoredSolution>,
    /// Recency order, least recently used first. Always lists exactly the
    /// keys of `entries`.
    recency: crate::lru::LruOrder<TaskType>,
    /// `None` means unbounded.
    capacity: Option<usize>,
}

impl serde::Deserialize for SolutionHistory {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        if v.as_map().is_none() {
            return Err(serde::DeError::mismatch("object", v));
        }
        let entries: HashMap<TaskType, StoredSolution> =
            serde::Deserialize::from_value(v.get("entries"))
                .map_err(|e| serde::DeError::custom(format!("field entries: {e}")))?;
        // Both fields were added after the first persisted format; tolerate
        // their absence (the vendored derive cannot express defaults).
        let recency = match v.get("recency") {
            serde::Value::Null => {
                let mut tasks: Vec<TaskType> = entries.keys().copied().collect();
                tasks.sort_unstable();
                tasks.into_iter().collect()
            }
            other => serde::Deserialize::from_value(other)
                .map_err(|e| serde::DeError::custom(format!("field recency: {e}")))?,
        };
        let capacity: Option<usize> = serde::Deserialize::from_value(v.get("capacity"))
            .map_err(|e| serde::DeError::custom(format!("field capacity: {e}")))?;
        Ok(SolutionHistory { entries, recency, capacity })
    }
}

impl SolutionHistory {
    /// Creates an empty, unbounded history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty history bounded to `capacity` entries with LRU-style
    /// eviction: recording beyond the capacity evicts the least-recently
    /// recorded-or-touched entry.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` — a history that can hold nothing cannot
    /// honor `record`.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a solution history must hold at least one entry");
        SolutionHistory { capacity: Some(capacity), ..Self::default() }
    }

    /// The configured capacity, or `None` when unbounded.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Inserts or replaces the entry for `task`, marks it most recently used
    /// and evicts the least recently used entry if the capacity is exceeded.
    fn insert_entry(&mut self, task: TaskType, solution: StoredSolution) {
        self.entries.insert(task, solution);
        self.recency.bump(&task);
        if let Some(cap) = self.capacity {
            while self.entries.len() > cap {
                let lru = self.recency.pop_lru().expect("recency tracks every entry");
                self.entries.remove(&lru);
            }
        }
    }

    /// Stores the best mapping for a task category without job signatures,
    /// replacing any previous entry. Adaptation falls back to index wrapping
    /// for entries recorded this way.
    pub fn record(&mut self, task: TaskType, best: Mapping) {
        self.insert_entry(task, StoredSolution { mapping: best, signatures: None });
    }

    /// Stores the best mapping for a task category together with the
    /// signatures of the jobs it was optimized for, replacing any previous
    /// entry. This enables profile-matched adaptation.
    ///
    /// # Panics
    ///
    /// Panics if `signatures.len() != best.num_jobs()`.
    pub fn record_profiled(
        &mut self,
        task: TaskType,
        best: Mapping,
        signatures: Vec<JobSignature>,
    ) {
        assert_eq!(
            signatures.len(),
            best.num_jobs(),
            "one signature per job of the stored mapping"
        );
        self.insert_entry(task, StoredSolution { mapping: best, signatures: Some(signatures) });
    }

    /// The stored solution for a task category, if any. Does not affect the
    /// eviction order (`&self`); callers that want a read to protect an
    /// entry pair it with [`SolutionHistory::touch`].
    pub fn get(&self, task: TaskType) -> Option<&StoredSolution> {
        self.entries.get(&task)
    }

    /// Marks the entry for `task` most recently used, returning whether the
    /// entry exists.
    pub fn touch(&mut self, task: TaskType) -> bool {
        if self.entries.contains_key(&task) {
            self.recency.bump(&task);
            true
        } else {
            false
        }
    }

    /// Number of task categories with stored knowledge.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no knowledge is stored at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Greedily assigns each new job a stored job with a similar profile.
///
/// Returns `assignment` with `assignment[i] = j` meaning new job `i` inherits
/// the genes of stored job `j`. The assignment is built in rounds: within a
/// round every pair `(new, stored)` is considered in ascending
/// [`JobSignature::distance`] order (ties broken by the indices, so the
/// result is deterministic) and each stored job is used at most once, which
/// preserves the stored solution's diversity — two distinct new convs inherit
/// two distinct stored gene blocks rather than both collapsing onto the
/// single best match. When the new group is larger than the stored one,
/// further rounds re-open all stored jobs for the still-unassigned remainder.
///
/// For a permutation of the stored group with distinct signatures this
/// recovers the permutation exactly (every exact match has distance zero).
///
/// # Panics
///
/// Panics if `stored` is empty.
pub fn match_signatures(new: &[JobSignature], stored: &[JobSignature]) -> Vec<usize> {
    assert!(!stored.is_empty(), "cannot match against an empty stored group");
    let mut assignment = vec![usize::MAX; new.len()];
    // Distances never change between rounds, so the full pair list is built
    // and sorted once; each round just skips already-assigned new jobs.
    // Distances are finite (see JobSignature::distance), so the order is
    // total in practice; ties fall back to index order.
    let mut pairs: Vec<(f64, usize, usize)> = Vec::with_capacity(new.len() * stored.len());
    for (i, n) in new.iter().enumerate() {
        for (j, s) in stored.iter().enumerate() {
            pairs.push((n.distance(s), i, j));
        }
    }
    pairs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let mut remaining = new.len();
    while remaining > 0 {
        let mut stored_used = vec![false; stored.len()];
        for &(_, i, j) in pairs.iter() {
            if assignment[i] == usize::MAX && !stored_used[j] {
                assignment[i] = j;
                stored_used[j] = true;
                remaining -= 1;
            }
        }
    }
    assignment
}

/// Stores the best known mapping per task category and seeds new searches
/// from it.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WarmStartEngine {
    history: SolutionHistory,
}

impl WarmStartEngine {
    /// Creates an empty engine (no previous knowledge).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the best mapping found for a task category, replacing any
    /// previous entry. Entries recorded without signatures only support
    /// index-wrapped adaptation; prefer [`WarmStartEngine::record_profiled`].
    pub fn record(&mut self, task: TaskType, best: Mapping) {
        self.history.record(task, best);
    }

    /// Records the best mapping together with the signatures of the jobs it
    /// was optimized for, enabling profile-matched adaptation.
    ///
    /// # Panics
    ///
    /// Panics if `signatures.len() != best.num_jobs()`.
    pub fn record_profiled(
        &mut self,
        task: TaskType,
        best: Mapping,
        signatures: Vec<JobSignature>,
    ) {
        self.history.record_profiled(task, best, signatures);
    }

    /// Whether previous knowledge exists for this task category.
    pub fn has_knowledge(&self, task: TaskType) -> bool {
        self.history.get(task).is_some()
    }

    /// The stored mapping for a task category, if any.
    pub fn stored(&self, task: TaskType) -> Option<&Mapping> {
        self.history.get(task).map(StoredSolution::mapping)
    }

    /// The full stored solution (mapping + signatures) for a task category.
    pub fn stored_solution(&self, task: TaskType) -> Option<&StoredSolution> {
        self.history.get(task)
    }

    /// The engine's knowledge base.
    pub fn history(&self) -> &SolutionHistory {
        &self.history
    }

    /// Index-wrapped adaptation ([`WarmStartMode::IndexWrap`]): adapts the
    /// stored solution of `task` to a new problem of `num_jobs` jobs on
    /// `num_accels` cores by wrapping the stored genomes around (or
    /// truncating them) and re-mapping accelerator genes modulo the new core
    /// count. Returns `None` when no knowledge exists.
    ///
    /// This is the fallback when job signatures are unavailable; with
    /// signatures, [`WarmStartEngine::adapt_matched`] transfers far better
    /// across reshuffled groups.
    ///
    /// # Panics
    ///
    /// Panics if knowledge exists for `task` but `num_jobs == 0` or
    /// `num_accels == 0` — a mapping cannot cover zero jobs or zero cores
    /// (`None` strictly means "no stored knowledge").
    pub fn adapt(&self, task: TaskType, num_jobs: usize, num_accels: usize) -> Option<Mapping> {
        let stored = self.stored(task)?;
        let sources: Vec<usize> = (0..num_jobs).map(|i| i % stored.num_jobs()).collect();
        Some(stored.gather(&sources, num_accels))
    }

    /// Profile-matched adaptation ([`WarmStartMode::ProfileMatched`]): each
    /// new job (described by its signature) inherits the gene block of the
    /// stored job with the nearest signature, via [`match_signatures`].
    ///
    /// Returns `None` when no knowledge exists for the task category. Falls
    /// back to index wrapping when the stored entry carries no signatures
    /// (it was recorded with [`WarmStartEngine::record`]) — or when it
    /// carries the wrong number of them, which cannot happen via
    /// [`WarmStartEngine::record_profiled`] but can arrive through
    /// deserialization of a corrupted or version-skewed [`SolutionHistory`].
    ///
    /// # Panics
    ///
    /// Panics if knowledge exists for `task` but `new_signatures` is empty or
    /// `num_accels == 0` — a mapping cannot cover zero jobs or zero cores
    /// (`None` strictly means "no stored knowledge").
    pub fn adapt_matched(
        &self,
        task: TaskType,
        new_signatures: &[JobSignature],
        num_accels: usize,
    ) -> Option<Mapping> {
        let solution = self.history.get(task)?;
        Some(solution.adapt_to(new_signatures, num_accels))
    }

    /// Builds an initial population of `size` individuals for a new search
    /// using index-wrapped adaptation: the adapted previous solution plus
    /// jittered copies of it. Returns `None` when no knowledge exists for the
    /// task category, in which case the caller should fall back to random
    /// initialization.
    pub fn seed_population<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        task: TaskType,
        num_jobs: usize,
        num_accels: usize,
        size: usize,
    ) -> Option<Vec<Mapping>> {
        let base = self.adapt(task, num_jobs, num_accels)?;
        Some(jittered_population(rng, base, num_accels, size))
    }

    /// As [`WarmStartEngine::seed_population`] but with profile-matched
    /// adaptation: the base individual is built by [`WarmStartEngine::adapt_matched`]
    /// against the new group's signatures.
    pub fn seed_population_matched<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        task: TaskType,
        new_signatures: &[JobSignature],
        num_accels: usize,
        size: usize,
    ) -> Option<Vec<Mapping>> {
        let base = self.adapt_matched(task, new_signatures, num_accels)?;
        Some(jittered_population(rng, base, num_accels, size))
    }

    /// Number of task categories with stored knowledge.
    pub fn num_entries(&self) -> usize {
        self.history.len()
    }
}

/// The transferred base individual plus jittered copies: ~10% of the genes of
/// each copy are re-randomized so the population has diversity around the
/// transferred solution.
fn jittered_population<R: Rng + ?Sized>(
    rng: &mut R,
    base: Mapping,
    num_accels: usize,
    size: usize,
) -> Vec<Mapping> {
    let mut pop = Vec::with_capacity(size);
    pop.push(base.clone());
    while pop.len() < size {
        let mut child = base.clone();
        let n = child.num_jobs();
        let flips = (n / 10).max(1);
        for _ in 0..flips {
            let i = rng.gen_range(0..n);
            child.accel_sel_mut()[i] = rng.gen_range(0..num_accels);
            let j = rng.gen_range(0..n);
            child.priority_mut()[j] = rng.gen_range(0.0..1.0);
        }
        pop.push(child);
    }
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mapping(n: usize, m: usize, seed: u64) -> Mapping {
        let mut rng = StdRng::seed_from_u64(seed);
        Mapping::random(&mut rng, n, m)
    }

    #[test]
    fn empty_engine_has_no_knowledge() {
        let e = WarmStartEngine::new();
        assert!(!e.has_knowledge(TaskType::Vision));
        assert!(e.adapt(TaskType::Vision, 10, 2).is_none());
        assert!(e.adapt_matched(TaskType::Vision, &[], 2).is_none());
        assert_eq!(e.num_entries(), 0);
        assert!(e.history().is_empty());
    }

    #[test]
    fn record_and_adapt_same_shape() {
        let mut e = WarmStartEngine::new();
        let best = mapping(20, 4, 1);
        e.record(TaskType::Mix, best.clone());
        assert!(e.has_knowledge(TaskType::Mix));
        let adapted = e.adapt(TaskType::Mix, 20, 4).unwrap();
        assert_eq!(adapted, best);
    }

    #[test]
    fn adapt_to_larger_group_wraps_genes() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Language, mapping(10, 4, 2));
        let adapted = e.adapt(TaskType::Language, 25, 4).unwrap();
        assert_eq!(adapted.num_jobs(), 25);
        let stored = e.stored(TaskType::Language).unwrap();
        assert_eq!(adapted.accel_sel()[13], stored.accel_sel()[3]);
    }

    #[test]
    fn adapt_to_fewer_accels_stays_in_range() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Vision, mapping(10, 8, 3));
        let adapted = e.adapt(TaskType::Vision, 10, 4).unwrap();
        assert!(adapted.accel_sel().iter().all(|&a| a < 4));
    }

    #[test]
    fn seed_population_has_requested_size_and_contains_base() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Recommendation, mapping(30, 4, 4));
        let mut rng = StdRng::seed_from_u64(5);
        let pop = e.seed_population(&mut rng, TaskType::Recommendation, 30, 4, 16).unwrap();
        assert_eq!(pop.len(), 16);
        let base = e.adapt(TaskType::Recommendation, 30, 4).unwrap();
        assert_eq!(pop[0], base);
        // Jittered copies differ from the base but keep valid genes.
        assert!(pop[1..].iter().any(|m| m != &base));
        for m in &pop {
            assert!(m.accel_sel().iter().all(|&a| a < 4));
        }
    }

    #[test]
    fn seed_population_none_without_knowledge() {
        let e = WarmStartEngine::new();
        let mut rng = StdRng::seed_from_u64(6);
        assert!(e.seed_population(&mut rng, TaskType::Mix, 10, 2, 4).is_none());
        assert!(e.seed_population_matched(&mut rng, TaskType::Mix, &[], 2, 4).is_none());
    }

    #[test]
    fn recording_overwrites_previous_entry() {
        let mut e = WarmStartEngine::new();
        e.record(TaskType::Mix, mapping(10, 2, 7));
        let second = mapping(10, 2, 8);
        e.record(TaskType::Mix, second.clone());
        assert_eq!(e.stored(TaskType::Mix), Some(&second));
        assert_eq!(e.num_entries(), 1);
    }

    #[test]
    fn mode_labels_are_distinct() {
        assert_eq!(WarmStartMode::default(), WarmStartMode::ProfileMatched);
        assert_ne!(WarmStartMode::IndexWrap.to_string(), WarmStartMode::ProfileMatched.to_string());
    }

    #[test]
    fn unbounded_history_never_evicts() {
        let mut h = SolutionHistory::new();
        assert_eq!(h.capacity(), None);
        for (i, task) in TaskType::ALL.into_iter().enumerate() {
            h.record(task, mapping(4, 2, i as u64));
        }
        assert_eq!(h.len(), 4);
    }

    #[test]
    fn bounded_history_evicts_least_recently_recorded() {
        let mut h = SolutionHistory::with_capacity(2);
        assert_eq!(h.capacity(), Some(2));
        h.record(TaskType::Vision, mapping(4, 2, 0));
        h.record(TaskType::Language, mapping(4, 2, 1));
        h.record(TaskType::Recommendation, mapping(4, 2, 2));
        assert_eq!(h.len(), 2);
        assert!(h.get(TaskType::Vision).is_none(), "oldest entry must be evicted");
        assert!(h.get(TaskType::Language).is_some());
        assert!(h.get(TaskType::Recommendation).is_some());
    }

    #[test]
    fn touch_protects_an_entry_from_eviction() {
        let mut h = SolutionHistory::with_capacity(2);
        h.record(TaskType::Vision, mapping(4, 2, 0));
        h.record_profiled(
            TaskType::Language,
            mapping(4, 2, 1),
            WorkloadSpec::single_group(TaskType::Language, 4, 0).signatures(),
        );
        // Vision is LRU; touching it flips the eviction victim to Language.
        assert!(h.touch(TaskType::Vision));
        assert!(!h.touch(TaskType::Mix), "touch reports missing entries");
        h.record(TaskType::Recommendation, mapping(4, 2, 2));
        assert!(h.get(TaskType::Vision).is_some());
        assert!(h.get(TaskType::Language).is_none());
    }

    #[test]
    fn re_recording_a_task_bumps_it_without_growing() {
        let mut h = SolutionHistory::with_capacity(2);
        h.record(TaskType::Vision, mapping(4, 2, 0));
        h.record(TaskType::Language, mapping(4, 2, 1));
        // Re-record Vision: it becomes most recent, len stays 2.
        h.record(TaskType::Vision, mapping(4, 2, 3));
        assert_eq!(h.len(), 2);
        h.record(TaskType::Mix, mapping(4, 2, 4));
        assert!(h.get(TaskType::Language).is_none(), "Language was LRU after the re-record");
        assert!(h.get(TaskType::Vision).is_some());
    }

    #[test]
    fn bounded_history_round_trips_through_serde() {
        let mut h = SolutionHistory::with_capacity(3);
        h.record(TaskType::Vision, mapping(4, 2, 0));
        h.record(TaskType::Language, mapping(4, 2, 1));
        let json = serde_json::to_string(&h).expect("history serializes");
        let mut back: SolutionHistory = serde_json::from_str(&json).expect("history deserializes");
        assert_eq!(back.capacity(), Some(3));
        assert_eq!(back.len(), 2);
        // The revived history keeps evicting in the same order.
        back.record(TaskType::Recommendation, mapping(4, 2, 2));
        back.record(TaskType::Mix, mapping(4, 2, 3));
        assert!(back.get(TaskType::Vision).is_none());
        assert_eq!(back.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = SolutionHistory::with_capacity(0);
    }

    /// Drops every occurrence of the named keys from a serde value tree —
    /// used to reconstruct the pre-capacity persisted format.
    fn strip_keys(v: &serde::Value, keys: &[&str]) -> serde::Value {
        match v {
            serde::Value::Map(entries) => serde::Value::Map(
                entries
                    .iter()
                    .filter(|(k, _)| !keys.contains(&k.as_str()))
                    .map(|(k, val)| (k.clone(), strip_keys(val, keys)))
                    .collect(),
            ),
            serde::Value::Seq(items) => {
                serde::Value::Seq(items.iter().map(|i| strip_keys(i, keys)).collect())
            }
            other => other.clone(),
        }
    }

    #[test]
    fn deserializes_the_pre_capacity_persisted_format() {
        // A WarmStartEngine persisted before PR 4 has no recency/capacity
        // fields on its SolutionHistory and no core_class on its signatures.
        // Such state must still load (README advertises serde persistence).
        let group = WorkloadSpec::single_group(TaskType::Vision, 10, 2);
        let mut engine = WarmStartEngine::new();
        engine.record_profiled(TaskType::Vision, mapping(10, 4, 1), group.signatures());
        let old_value = strip_keys(
            &serde::Serialize::to_value(&engine),
            &["recency", "capacity", "core_class"],
        );
        let old_json = serde_json::to_string(&old_value).unwrap();
        assert!(!old_json.contains("recency") && !old_json.contains("core_class"));

        let revived: WarmStartEngine = serde_json::from_str(&old_json).unwrap();
        assert_eq!(revived.history().capacity(), None, "missing capacity means unbounded");
        assert_eq!(revived.num_entries(), 1);
        let fresh = WorkloadSpec::single_group(TaskType::Vision, 10, 9);
        assert_eq!(
            revived.adapt_matched(TaskType::Vision, &fresh.signatures(), 4),
            engine.adapt_matched(TaskType::Vision, &fresh.signatures(), 4)
        );
        // The rebuilt recency order keeps working (record + evict).
        let mut revived = revived;
        revived.record(TaskType::Language, mapping(4, 2, 3));
        assert_eq!(revived.num_entries(), 2);
    }

    use magma_model::WorkloadSpec;

    #[test]
    fn stored_solution_adapt_to_matches_engine_adaptation() {
        let group = WorkloadSpec::single_group(TaskType::Vision, 12, 3);
        let best = mapping(12, 4, 5);
        let sol = StoredSolution::new(best.clone(), Some(group.signatures()));
        let mut e = WarmStartEngine::new();
        e.record_profiled(TaskType::Vision, best, group.signatures());
        let fresh = WorkloadSpec::single_group(TaskType::Vision, 12, 9);
        assert_eq!(
            sol.adapt_to(&fresh.signatures(), 4),
            e.adapt_matched(TaskType::Vision, &fresh.signatures(), 4).unwrap()
        );
        // Without signatures the standalone adaptation index-wraps.
        let bare = StoredSolution::new(mapping(5, 4, 6), None);
        let adapted = bare.adapt_to(&fresh.signatures(), 4);
        assert_eq!(adapted.num_jobs(), 12);
        assert_eq!(adapted.accel_sel()[7], bare.mapping().accel_sel()[2]);
    }

    #[test]
    fn stored_solution_seed_population_contains_adapted_base() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 10, 1);
        let sol = StoredSolution::new(mapping(10, 4, 2), Some(group.signatures()));
        let mut rng = StdRng::seed_from_u64(3);
        let pop = sol.seed_population(&mut rng, &group.signatures(), 4, 12);
        assert_eq!(pop.len(), 12);
        assert_eq!(pop[0], sol.adapt_to(&group.signatures(), 4));
        assert!(pop.iter().all(|m| m.accel_sel().iter().all(|&a| a < 4)));
    }

    #[test]
    #[should_panic(expected = "one signature per job")]
    fn stored_solution_rejects_mismatched_signatures() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 9, 1);
        let _ = StoredSolution::new(mapping(10, 4, 2), Some(group.signatures()));
    }
}

/// Signature-matching behaviour: permuted job orders, subset/superset groups
/// and cross-instance transfer (the scenarios behind Table V).
#[cfg(test)]
mod matching_tests {
    use super::*;
    use magma_model::{Group, Job, JobId, LayerShape, WorkloadSpec};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn group(task: TaskType, n: usize, seed: u64) -> Group {
        WorkloadSpec::single_group(task, n, seed)
    }

    /// `n` vision conv jobs with pairwise-distinct signatures (growing
    /// channel counts), so matching assertions can be exact. Real workload
    /// groups may contain duplicate layers, which makes any two jobs with
    /// identical signatures interchangeable.
    fn distinct_signatures(n: usize) -> Vec<JobSignature> {
        (0..n)
            .map(|i| {
                Job::new(
                    JobId(i),
                    "synthetic",
                    i,
                    LayerShape::Conv2d {
                        k: 8 * (i + 1),
                        c: 16,
                        y: 14,
                        x: 14,
                        r: 3,
                        s: 3,
                        stride: 1,
                    },
                    4,
                    TaskType::Vision,
                )
                .signature()
            })
            .collect()
    }

    /// An engine with the signatures of `stored_group` and a random stored
    /// mapping for them.
    fn engine_for(task: TaskType, stored: &Group, num_accels: usize, seed: u64) -> WarmStartEngine {
        let mut rng = StdRng::seed_from_u64(seed);
        let best = Mapping::random(&mut rng, stored.len(), num_accels);
        let mut e = WarmStartEngine::new();
        e.record_profiled(task, best, stored.signatures());
        e
    }

    #[test]
    fn permuted_job_order_recovers_the_permutation() {
        let sigs = distinct_signatures(24);
        let mut rng = StdRng::seed_from_u64(1);
        let best = Mapping::random(&mut rng, 24, 4);
        let mut e = WarmStartEngine::new();
        e.record_profiled(TaskType::Vision, best.clone(), sigs.clone());

        // Present the same jobs in reversed order: each job must get exactly
        // the gene block its twin had in the stored solution.
        let reversed: Vec<_> = sigs.iter().rev().copied().collect();
        let adapted = e.adapt_matched(TaskType::Vision, &reversed, 4).unwrap();
        for i in 0..24 {
            let twin = 23 - i;
            assert_eq!(adapted.accel_sel()[i], best.accel_sel()[twin], "job {i}");
            assert_eq!(adapted.priority()[i], best.priority()[twin], "job {i}");
        }
    }

    #[test]
    fn identical_group_is_a_fixed_point() {
        let stored = group(TaskType::Vision, 16, 3);
        let e = engine_for(TaskType::Vision, &stored, 4, 2);
        let adapted = e.adapt_matched(TaskType::Vision, &stored.signatures(), 4).unwrap();
        assert_eq!(&adapted, e.stored(TaskType::Vision).unwrap());
    }

    #[test]
    fn subset_group_reuses_each_stored_job_at_most_once() {
        let sigs = distinct_signatures(30);
        // New group: jobs 5..15 of the stored group.
        let subset: Vec<_> = sigs[5..15].to_vec();
        let assignment = match_signatures(&subset, &sigs);
        assert_eq!(assignment, (5..15).collect::<Vec<_>>());
    }

    #[test]
    fn superset_group_wraps_onto_stored_jobs() {
        let sigs = distinct_signatures(8);
        // New group: the stored jobs twice over.
        let superset: Vec<_> = sigs.iter().chain(sigs.iter()).copied().collect();
        let assignment = match_signatures(&superset, &sigs);
        assert_eq!(assignment.len(), 16);
        // Every stored job is used exactly twice (one-to-one per round).
        let mut counts = vec![0usize; 8];
        for &j in &assignment {
            counts[j] += 1;
        }
        assert!(counts.iter().all(|&c| c == 2), "{counts:?}");
        // And each new job found its exact twin.
        assert_eq!(&assignment[..8], &(0..8).collect::<Vec<_>>()[..]);
        assert_eq!(&assignment[8..], &(0..8).collect::<Vec<_>>()[..]);
    }

    #[test]
    fn cross_instance_transfer_matches_by_profile_not_position() {
        // Two instances of the same task with different seeds reshuffle the
        // model interleaving; profile matching must still send every job to a
        // same-class stored job.
        let stored = group(TaskType::Mix, 24, 0);
        let fresh = group(TaskType::Mix, 24, 77);
        let sigs = stored.signatures();
        let assignment = match_signatures(&fresh.signatures(), &sigs);
        let mut same_class = 0;
        for (i, &j) in assignment.iter().enumerate() {
            if fresh.signatures()[i].class() == sigs[j].class() {
                same_class += 1;
            }
        }
        // The class histogram of two Mix instances is not identical, so a few
        // jobs may cross classes, but the vast majority must not.
        assert!(same_class >= 20, "only {same_class}/24 matched within class");
    }

    #[test]
    fn adapt_matched_falls_back_to_index_wrap_without_stored_signatures() {
        let mut e = WarmStartEngine::new();
        let mut rng = StdRng::seed_from_u64(9);
        let best = Mapping::random(&mut rng, 10, 4);
        e.record(TaskType::Mix, best); // no signatures
        let fresh = group(TaskType::Mix, 14, 5);
        let matched = e.adapt_matched(TaskType::Mix, &fresh.signatures(), 4).unwrap();
        let wrapped = e.adapt(TaskType::Mix, 14, 4).unwrap();
        assert_eq!(matched, wrapped);
    }

    #[test]
    fn mismatched_stored_signatures_fall_back_to_index_wrap() {
        // record_profiled asserts len(signatures) == num_jobs, but a
        // deserialized SolutionHistory can arrive corrupted or
        // version-skewed; adapt_matched must degrade to index wrapping
        // rather than panic or mis-gather.
        let mut rng = StdRng::seed_from_u64(11);
        let best = Mapping::random(&mut rng, 10, 4);
        let mut e = WarmStartEngine::new();
        // Bypass record_profiled's assert the same way a hand-edited JSON
        // would: construct the entry directly (same-module access).
        e.history.entries.insert(
            TaskType::Vision,
            StoredSolution { mapping: best, signatures: Some(distinct_signatures(14)) },
        );
        let fresh = group(TaskType::Vision, 12, 5);
        let matched = e.adapt_matched(TaskType::Vision, &fresh.signatures(), 4).unwrap();
        assert_eq!(matched, e.adapt(TaskType::Vision, 12, 4).unwrap());
    }

    #[test]
    fn solution_history_persists_signatures_through_serde() {
        // record → serialize → deserialize → adapt must behave identically.
        let stored = group(TaskType::Vision, 12, 4);
        let e = engine_for(TaskType::Vision, &stored, 4, 7);
        let fresh = group(TaskType::Vision, 12, 99);

        let json = serde_json::to_string(&e).expect("engine serializes");
        let revived: WarmStartEngine = serde_json::from_str(&json).expect("engine deserializes");

        assert_eq!(revived.num_entries(), 1);
        let sol = revived.stored_solution(TaskType::Vision).unwrap();
        assert_eq!(sol.signatures().unwrap(), &stored.signatures()[..]);
        assert_eq!(
            revived.adapt_matched(TaskType::Vision, &fresh.signatures(), 4),
            e.adapt_matched(TaskType::Vision, &fresh.signatures(), 4)
        );
    }

    // Adapted genes always stay in range, whatever the stored/new group
    // sizes and core counts.
    proptest! {
        #[test]
        fn adapted_genes_always_in_range(
            stored_n in 1usize..40,
            new_n in 1usize..40,
            stored_accels in 1usize..8,
            new_accels in 1usize..8,
            seed in 0u64..20,
            profiled_sel in 0usize..2,
        ) {
            let profiled = profiled_sel == 1;
            let task = TaskType::Mix;
            let stored_group = group(task, stored_n, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let best = Mapping::random(&mut rng, stored_n, stored_accels);
            let mut e = WarmStartEngine::new();
            if profiled {
                e.record_profiled(task, best, stored_group.signatures());
            } else {
                e.record(task, best);
            }
            let fresh = group(task, new_n, seed + 1);
            let adapted = e.adapt_matched(task, &fresh.signatures(), new_accels).unwrap();
            prop_assert_eq!(adapted.num_jobs(), new_n);
            prop_assert_eq!(adapted.num_accels(), new_accels);
            prop_assert!(adapted.accel_sel().iter().all(|&a| a < new_accels));
            prop_assert!(adapted.priority().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
