//! The Job Analyzer and the Job Analysis Table (Section IV-D2/D4).
//!
//! Before the search starts, every job in the group is profiled on every
//! sub-accelerator with the analytical cost model. The resulting table of
//! (no-stall latency, required bandwidth) pairs is the only thing the
//! optimization loop consults — the cost model is never queried inside the
//! loop, exactly as in the paper.

use magma_cost::{best_flexible_shape, CostEstimate, CostModel};
use magma_model::{Group, JobId, TaskType};
use magma_platform::AcceleratorPlatform;
use serde::{Deserialize, Serialize};

/// The Job Analyzer: profiles a group of jobs against a platform.
#[derive(Debug, Clone, Default)]
pub struct JobAnalyzer {
    cost_model: CostModel,
}

impl JobAnalyzer {
    /// Creates an analyzer with the default cost-model constants.
    pub fn new() -> Self {
        JobAnalyzer { cost_model: CostModel::default() }
    }

    /// Creates an analyzer with a custom cost model.
    pub fn with_cost_model(cost_model: CostModel) -> Self {
        JobAnalyzer { cost_model }
    }

    /// The underlying cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Profiles every job of `group` on every sub-accelerator of `platform`,
    /// producing the Job Analysis Table.
    ///
    /// Cores whose PE-array shape is flexible are profiled with the best
    /// per-layer factorization (Section VI-F).
    pub fn analyze(&self, group: &Group, platform: &AcceleratorPlatform) -> JobAnalysisTable {
        let mut entries = Vec::with_capacity(group.len());
        for job in group.iter() {
            let mut per_accel = Vec::with_capacity(platform.num_sub_accels());
            for accel in platform.sub_accels() {
                let est = if accel.flexible_shape() {
                    best_flexible_shape(&self.cost_model, job.layer(), job.batch(), accel).estimate
                } else {
                    self.cost_model.estimate(job.layer(), job.batch(), accel)
                };
                per_accel.push(est);
            }
            entries.push(per_accel);
        }
        let tasks = group.iter().map(|j| j.task()).collect();
        let flops = group.iter().map(|j| j.flops()).collect();
        let freqs = platform.sub_accels().iter().map(|a| a.frequency_hz()).collect();
        JobAnalysisTable { entries, tasks, flops, frequencies_hz: freqs }
    }
}

/// The Job Analysis Table: per (job, sub-accelerator) cost estimates plus the
/// per-job metadata the evaluator needs (task tag, FLOPs) and the per-core
/// clock frequencies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobAnalysisTable {
    /// `entries[job][accel]`.
    entries: Vec<Vec<CostEstimate>>,
    tasks: Vec<TaskType>,
    flops: Vec<u64>,
    frequencies_hz: Vec<f64>,
}

impl JobAnalysisTable {
    /// Number of jobs in the table.
    pub fn num_jobs(&self) -> usize {
        self.entries.len()
    }

    /// Number of sub-accelerators in the table.
    pub fn num_accels(&self) -> usize {
        self.frequencies_hz.len()
    }

    /// The cost estimate for running `job` on `accel`.
    pub fn estimate(&self, job: JobId, accel: usize) -> &CostEstimate {
        &self.entries[job.0][accel]
    }

    /// No-stall latency in *seconds* for `job` on `accel` (cycles divided by
    /// that core's clock).
    pub fn no_stall_seconds(&self, job: JobId, accel: usize) -> f64 {
        self.entries[job.0][accel].no_stall_cycles as f64 / self.frequencies_hz[accel]
    }

    /// Required (no-stall) bandwidth in GB/s for `job` on `accel`.
    pub fn required_bw_gbps(&self, job: JobId, accel: usize) -> f64 {
        self.entries[job.0][accel].required_bw_gbps
    }

    /// FLOPs of `job` (independent of where it runs).
    pub fn flops(&self, job: JobId) -> u64 {
        self.flops[job.0]
    }

    /// Task category of `job`.
    pub fn task(&self, job: JobId) -> TaskType {
        self.tasks[job.0]
    }

    /// Clock frequency (Hz) of a sub-accelerator.
    pub fn frequency_hz(&self, accel: usize) -> f64 {
        self.frequencies_hz[accel]
    }

    /// Total FLOPs across all jobs — the numerator of the throughput
    /// objective.
    pub fn total_flops(&self) -> u64 {
        self.flops.iter().sum()
    }

    /// Average no-stall latency (cycles) across all jobs and cores —
    /// the per-job statistic plotted in Fig. 7(b) and Fig. 13(a).
    pub fn avg_no_stall_cycles(&self) -> f64 {
        let total: u64 =
            self.entries.iter().flat_map(|row| row.iter().map(|e| e.no_stall_cycles)).sum();
        total as f64 / (self.num_jobs() * self.num_accels()) as f64
    }

    /// Average required bandwidth (GB/s) across all jobs and cores —
    /// the statistic plotted in Fig. 7(c) and Fig. 13(b).
    pub fn avg_required_bw_gbps(&self) -> f64 {
        let total: f64 =
            self.entries.iter().flat_map(|row| row.iter().map(|e| e.required_bw_gbps)).sum();
        total / (self.num_jobs() * self.num_accels()) as f64
    }

    /// The sub-accelerator with the lowest no-stall latency for a job
    /// (used by the Herald-like affinity heuristic).
    pub fn fastest_accel(&self, job: JobId) -> usize {
        (0..self.num_accels())
            .min_by(|&a, &b| {
                self.no_stall_seconds(job, a)
                    .partial_cmp(&self.no_stall_seconds(job, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("table has at least one accelerator")
    }

    /// The sub-accelerator with the lowest required bandwidth for a job
    /// (used by heuristics in bandwidth-starved regimes).
    pub fn most_bw_frugal_accel(&self, job: JobId) -> usize {
        (0..self.num_accels())
            .min_by(|&a, &b| {
                self.required_bw_gbps(job, a)
                    .partial_cmp(&self.required_bw_gbps(job, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .expect("table has at least one accelerator")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};

    fn table(task: TaskType, n: usize, setting: Setting) -> JobAnalysisTable {
        let group = WorkloadSpec::single_group(task, n, 0);
        let platform = settings::build(setting);
        JobAnalyzer::new().analyze(&group, &platform)
    }

    #[test]
    fn dimensions_match_group_and_platform() {
        let t = table(TaskType::Mix, 24, Setting::S2);
        assert_eq!(t.num_jobs(), 24);
        assert_eq!(t.num_accels(), 4);
        assert!(t.total_flops() > 0);
    }

    #[test]
    fn latencies_and_bw_are_positive() {
        let t = table(TaskType::Mix, 16, Setting::S4);
        for j in 0..t.num_jobs() {
            for a in 0..t.num_accels() {
                assert!(t.no_stall_seconds(JobId(j), a) > 0.0);
                assert!(t.required_bw_gbps(JobId(j), a) > 0.0);
            }
        }
    }

    #[test]
    fn vision_has_lower_bw_need_than_recommendation() {
        // Fig. 7: Vision has the lowest BW requirement, Recommendation the
        // highest.
        let v = table(TaskType::Vision, 40, Setting::S1).avg_required_bw_gbps();
        let r = table(TaskType::Recommendation, 40, Setting::S1).avg_required_bw_gbps();
        assert!(r > v, "recom {r} should exceed vision {v}");
    }

    #[test]
    fn vision_has_higher_latency_than_recommendation() {
        let v = table(TaskType::Vision, 40, Setting::S1).avg_no_stall_cycles();
        let r = table(TaskType::Recommendation, 40, Setting::S1).avg_no_stall_cycles();
        assert!(v > r, "vision {v} should exceed recom {r}");
    }

    #[test]
    fn fastest_accel_is_consistent_with_latencies() {
        let t = table(TaskType::Mix, 10, Setting::S5);
        for j in 0..t.num_jobs() {
            let best = t.fastest_accel(JobId(j));
            for a in 0..t.num_accels() {
                assert!(
                    t.no_stall_seconds(JobId(j), best) <= t.no_stall_seconds(JobId(j), a) + 1e-15
                );
            }
        }
    }

    #[test]
    fn heterogeneous_platform_gives_different_estimates_per_core() {
        let t = table(TaskType::Language, 10, Setting::S2);
        // At least one job must see different latencies on HB vs LB cores.
        let any_diff = (0..t.num_jobs()).any(|j| {
            let first = t.estimate(JobId(j), 0).no_stall_cycles;
            (1..t.num_accels()).any(|a| t.estimate(JobId(j), a).no_stall_cycles != first)
        });
        assert!(any_diff);
    }

    #[test]
    fn flexible_platform_is_not_slower() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 20, 1);
        let fixed = settings::build(Setting::S1);
        let flex = settings::build_flexible(Setting::S1, 16.0);
        let analyzer = JobAnalyzer::new();
        let tf = analyzer.analyze(&group, &fixed);
        let tx = analyzer.analyze(&group, &flex);
        // Flexible shapes never *increase* latency on the same PE budget with
        // the bigger flexible buffers.
        assert!(tx.avg_no_stall_cycles() <= tf.avg_no_stall_cycles() * 1.05);
    }
}
