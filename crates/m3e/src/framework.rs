//! The M3E façade and the problem interface the optimizers search against.

use crate::analyzer::{JobAnalysisTable, JobAnalyzer};
use crate::encoding::Mapping;
use crate::evaluator::{FitnessEvaluator, Objective};
use crate::schedule::Schedule;
use magma_cost::CostModel;
use magma_model::{Group, JobSignature, TaskType};
use magma_platform::AcceleratorPlatform;

/// Per-(job, core) profile information exposed to knowledge-based mappers.
///
/// The black-box optimizers never look at this; the manual-heuristic mappers
/// (Herald-like, AI-MT-like) mirror the paper's mappers, which consult the
/// job-analysis table directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobProfile {
    /// No-stall latency of the job on the core, in seconds.
    pub no_stall_seconds: f64,
    /// Required (no-stall) bandwidth of the job on the core, in GB/s.
    pub required_bw_gbps: f64,
    /// FLOPs of the job (core-independent).
    pub flops: u64,
}

/// The black-box problem interface exposed to the optimization algorithms.
///
/// Every optimizer in `magma-optim` (MAGMA, stdGA, DE, CMA-ES, PSO, TBPSA,
/// the RL agents and the heuristics) only sees this trait: the dimensions of
/// the encoding plus a fitness oracle. Higher fitness is always better.
///
/// The trait requires [`Sync`] so whole populations can be evaluated
/// concurrently from shared references (`magma_optim::parallel` fans a batch
/// of candidate mappings out over a scoped worker pool).
/// [`evaluate`](Self::evaluate) therefore must be a pure function of
/// `(&self, mapping)` — no interior mutability, no evaluation-order
/// dependence — which is also what makes the optimizers reproducible.
pub trait MappingProblem: Sync {
    /// Number of jobs in the group (genome length).
    fn num_jobs(&self) -> usize;

    /// Number of sub-accelerator cores (range of the selection genes).
    fn num_accels(&self) -> usize;

    /// Evaluates a candidate mapping; higher is better.
    fn evaluate(&self, mapping: &Mapping) -> f64;

    /// The task category of the group being mapped, if known. Used by the
    /// warm-start engine to decide whether previous solutions apply.
    fn task_type(&self) -> Option<TaskType> {
        None
    }

    /// Profile of one job on one core, if the problem exposes its analysis
    /// table (the concrete [`M3e`] does). Heuristic mappers fall back to
    /// uninformed choices when this returns `None`.
    fn profile(&self, _job: usize, _accel: usize) -> Option<JobProfile> {
        None
    }

    /// The platform-independent signatures of the jobs being mapped, in job
    /// order, if the problem knows them (the concrete [`M3e`] does). The
    /// warm-start engine uses these for profile-matched adaptation
    /// (Section V-C, Table V); callers without signatures fall back to
    /// index-wrapped adaptation.
    fn signatures(&self) -> Option<&[JobSignature]> {
        None
    }
}

/// The Multi-workload Multi-accelerator Mapping Explorer.
///
/// `M3e` owns the platform description, the group of jobs, the job-analysis
/// table produced by the [`JobAnalyzer`], and the [`FitnessEvaluator`]. It is
/// the concrete [`MappingProblem`] handed to the optimizers.
#[derive(Debug, Clone)]
pub struct M3e {
    platform: AcceleratorPlatform,
    group: Group,
    evaluator: FitnessEvaluator,
    dominant_task: TaskType,
    signatures: Vec<JobSignature>,
}

impl M3e {
    /// Sets up the explorer: runs the Job Analyzer over `group` × `platform`
    /// and prepares the fitness function for `objective`.
    pub fn new(platform: AcceleratorPlatform, group: Group, objective: Objective) -> Self {
        Self::with_cost_model(platform, group, objective, CostModel::default())
    }

    /// As [`M3e::new`] but with custom cost-model constants.
    pub fn with_cost_model(
        platform: AcceleratorPlatform,
        group: Group,
        objective: Objective,
        cost_model: CostModel,
    ) -> Self {
        assert!(!group.is_empty(), "cannot optimize an empty group");
        let table = JobAnalyzer::with_cost_model(cost_model).analyze(&group, &platform);
        let dominant_task = dominant_task(&group);
        let mut signatures = group.signatures();
        // Behind the MAGMA_SIGNATURE_PROFILE knob (default on since the
        // cache_sweep calibration; `=0` opts out), fold the analysis table's
        // per-core no-stall latencies into the signatures so warm-start
        // matching sees platform affinity, not just layer shape.
        if magma_platform::settings::magma_signature_profile() {
            attach_core_classes(&mut signatures, &table);
        }
        let evaluator = FitnessEvaluator::new(table, platform.system_bw_gbps(), objective);
        M3e { platform, group, evaluator, dominant_task, signatures }
    }

    /// The accelerator platform being mapped onto.
    pub fn platform(&self) -> &AcceleratorPlatform {
        &self.platform
    }

    /// The group of jobs being mapped.
    pub fn group(&self) -> &Group {
        &self.group
    }

    /// The job-analysis table (no-stall latency and required BW per job per
    /// core).
    pub fn table(&self) -> &JobAnalysisTable {
        self.evaluator.table()
    }

    /// The fitness evaluator.
    pub fn evaluator(&self) -> &FitnessEvaluator {
        &self.evaluator
    }

    /// Evaluates a mapping (same as [`MappingProblem::evaluate`]).
    pub fn evaluate(&self, mapping: &Mapping) -> f64 {
        self.evaluator.fitness(mapping)
    }

    /// Returns the full schedule for a mapping (Gantt + BW trace).
    pub fn schedule(&self, mapping: &Mapping) -> Schedule {
        self.evaluator.schedule(mapping)
    }

    /// The task category that dominates the group ([`TaskType::Mix`] when no
    /// single category holds a strict majority).
    pub fn dominant_task(&self) -> TaskType {
        self.dominant_task
    }

    /// The signatures of the group's jobs, in job order (computed once at
    /// construction). Hand these to
    /// [`WarmStartEngine::adapt_matched`](crate::WarmStartEngine::adapt_matched)
    /// to transfer a stored solution onto this problem by job profile.
    pub fn signatures(&self) -> &[JobSignature] {
        &self.signatures
    }
}

impl MappingProblem for M3e {
    fn num_jobs(&self) -> usize {
        self.group.len()
    }

    fn num_accels(&self) -> usize {
        self.platform.num_sub_accels()
    }

    fn evaluate(&self, mapping: &Mapping) -> f64 {
        self.evaluator.fitness(mapping)
    }

    fn task_type(&self) -> Option<TaskType> {
        Some(self.dominant_task)
    }

    fn profile(&self, job: usize, accel: usize) -> Option<JobProfile> {
        use magma_model::JobId;
        if job >= self.num_jobs() || accel >= MappingProblem::num_accels(self) {
            return None;
        }
        let table = self.table();
        Some(JobProfile {
            no_stall_seconds: table.no_stall_seconds(JobId(job), accel),
            required_bw_gbps: table.required_bw_gbps(JobId(job), accel),
            flops: table.flops(JobId(job)),
        })
    }

    fn signatures(&self) -> Option<&[JobSignature]> {
        Some(M3e::signatures(self))
    }
}

/// Attaches a packed per-core latency class (fastest-core affinity plus
/// octave-quantized best-core no-stall latency, see
/// [`JobSignature::encode_core_class`]) to every signature, from the rows of
/// the job-analysis table. `sigs[i]` must profile job `i` of the analyzed
/// group.
///
/// [`M3e`] calls this at construction when the `MAGMA_SIGNATURE_PROFILE`
/// knob is set; it is public so tests and custom pipelines can profile
/// signatures without touching the process environment.
///
/// # Panics
///
/// Panics if `sigs` is longer than the analyzed group.
pub fn attach_core_classes(sigs: &mut [JobSignature], table: &JobAnalysisTable) {
    use magma_model::JobId;
    for (i, sig) in sigs.iter_mut().enumerate() {
        let latencies: Vec<f64> =
            (0..table.num_accels()).map(|a| table.no_stall_seconds(JobId(i), a)).collect();
        *sig = sig.with_core_class(JobSignature::encode_core_class(&latencies));
    }
}

/// Determines the dominant task category of a group: the category of more
/// than half the jobs, or [`TaskType::Mix`] otherwise.
fn dominant_task(group: &Group) -> TaskType {
    let hist = group.task_histogram();
    let total: usize = hist.iter().sum();
    for (i, &count) in hist.iter().enumerate() {
        if count * 2 > total {
            return TaskType::ALL[i];
        }
    }
    TaskType::Mix
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::WorkloadSpec;
    use magma_platform::{settings, Setting};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m3e(task: TaskType, n: usize) -> M3e {
        let group = WorkloadSpec::single_group(task, n, 0);
        let platform = settings::build(Setting::S2);
        M3e::new(platform, group, Objective::Throughput)
    }

    #[test]
    fn problem_dimensions() {
        let p = m3e(TaskType::Mix, 30);
        assert_eq!(p.num_jobs(), 30);
        assert_eq!(p.num_accels(), 4);
    }

    #[test]
    fn evaluate_positive_throughput() {
        let p = m3e(TaskType::Vision, 20);
        let mut rng = StdRng::seed_from_u64(0);
        let m = Mapping::random(&mut rng, 20, 4);
        assert!(p.evaluate(&m) > 0.0);
        assert!(MappingProblem::evaluate(&p, &m) > 0.0);
    }

    #[test]
    fn dominant_task_detection() {
        assert_eq!(m3e(TaskType::Vision, 20).dominant_task(), TaskType::Vision);
        assert_eq!(m3e(TaskType::Language, 20).dominant_task(), TaskType::Language);
        // The Mix workload interleaves all 18 models; no category dominates.
        assert_eq!(m3e(TaskType::Mix, 60).dominant_task(), TaskType::Mix);
        assert_eq!(m3e(TaskType::Mix, 60).task_type(), Some(TaskType::Mix));
    }

    #[test]
    fn schedule_covers_group() {
        let p = m3e(TaskType::Mix, 25);
        let mut rng = StdRng::seed_from_u64(1);
        let m = Mapping::random(&mut rng, 25, 4);
        let s = p.schedule(&m);
        assert_eq!(s.segments().len(), 25);
        assert!((p.evaluate(&m) - s.throughput_gflops()).abs() < 1e-9);
    }

    #[test]
    fn signatures_match_group_jobs() {
        let p = m3e(TaskType::Mix, 20);
        let sigs = p.signatures();
        assert_eq!(sigs.len(), 20);
        // The shape part is the job's own signature; the core class on top
        // comes from the profile knob (on by default — see below).
        for (job, sig) in p.group().iter().zip(sigs) {
            assert_eq!(job.signature(), sig.with_core_class(0));
        }
        // The trait exposes the same slice.
        assert_eq!(MappingProblem::signatures(&p), Some(sigs));
    }

    #[test]
    fn signatures_carry_core_classes_under_the_default_profile_knob() {
        // The ambient test environment never sets MAGMA_SIGNATURE_PROFILE,
        // and since the cache_sweep calibration the profiled metric is the
        // default: every M3e signature carries a packed core class.
        let p = m3e(TaskType::Mix, 12);
        assert!(p.signatures().iter().all(|s| s.has_core_class()));
    }

    #[test]
    fn attach_core_classes_profiles_every_job() {
        let p = m3e(TaskType::Mix, 15);
        let mut sigs = p.group().signatures();
        attach_core_classes(&mut sigs, p.table());
        assert!(sigs.iter().all(|s| s.has_core_class()));
        // Attaching is idempotent on the shape part: stripping the class
        // recovers the original signature.
        for (orig, profiled) in p.group().signatures().iter().zip(&sigs) {
            assert_eq!(*orig, profiled.with_core_class(0));
        }
        // A/B: profiled distances are at least the shape-only distances
        // (the profile term is additive and non-negative), and exact
        // self-distance stays zero.
        for (i, a) in sigs.iter().enumerate() {
            assert_eq!(a.distance(a), 0.0);
            for (j, b) in sigs.iter().enumerate() {
                let shape = p.group().signatures()[i].distance(&p.group().signatures()[j]);
                assert!(a.distance(b) >= shape, "profile term must be additive");
            }
        }
    }

    #[test]
    fn better_bandwidth_platform_never_hurts() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 30, 3);
        let lo = M3e::new(
            settings::build(Setting::S2).with_system_bw_gbps(1.0),
            group.clone(),
            Objective::Throughput,
        );
        let hi = M3e::new(
            settings::build(Setting::S2).with_system_bw_gbps(16.0),
            group,
            Objective::Throughput,
        );
        let mut rng = StdRng::seed_from_u64(2);
        let m = Mapping::random(&mut rng, 30, 4);
        assert!(hi.evaluate(&m) >= lo.evaluate(&m));
    }
}
