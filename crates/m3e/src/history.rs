//! Search-history bookkeeping: best-so-far curves and sample accounting.
//!
//! The paper's comparisons are all at a fixed *sampling budget* (10 K
//! evaluated mappings), and Figs. 10/11/16 plot how the best found
//! throughput improves with the number of samples. [`SearchHistory`] records
//! exactly that.

use crate::encoding::Mapping;
use serde::{Deserialize, Serialize};

/// A record of one optimization run: every evaluated sample's fitness, the
/// best-so-far curve and the best mapping found.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SearchHistory {
    samples: Vec<f64>,
    best_curve: Vec<f64>,
    best_fitness: Option<f64>,
    best_mapping: Option<Mapping>,
}

impl SearchHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one evaluated sample.
    pub fn record(&mut self, mapping: &Mapping, fitness: f64) {
        self.samples.push(fitness);
        let improved = self.best_fitness.is_none_or(|b| fitness > b);
        if improved {
            self.best_fitness = Some(fitness);
            self.best_mapping = Some(mapping.clone());
        }
        self.best_curve.push(self.best_fitness.unwrap());
    }

    /// Number of samples evaluated so far.
    pub fn num_samples(&self) -> usize {
        self.samples.len()
    }

    /// Fitness of every evaluated sample, in evaluation order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Best fitness seen after each sample (a monotonically non-decreasing
    /// convergence curve).
    pub fn best_curve(&self) -> &[f64] {
        &self.best_curve
    }

    /// The best fitness found, if any sample was recorded.
    pub fn best_fitness(&self) -> Option<f64> {
        self.best_fitness
    }

    /// The best mapping found, if any sample was recorded.
    pub fn best_mapping(&self) -> Option<&Mapping> {
        self.best_mapping.as_ref()
    }

    /// Best fitness within the first `budget` samples (used to compare
    /// methods at a fixed sampling budget even if they ran longer).
    pub fn best_within(&self, budget: usize) -> Option<f64> {
        self.best_curve.get(budget.min(self.best_curve.len()).checked_sub(1)?).copied()
    }

    /// Number of samples needed to first reach `fraction` (0–1] of the final
    /// best fitness — a simple sample-efficiency metric.
    pub fn samples_to_reach(&self, fraction: f64) -> Option<usize> {
        let best = self.best_fitness?;
        let target = best * fraction;
        self.best_curve.iter().position(|&f| f >= target).map(|i| i + 1)
    }

    /// Downsamples the best-so-far curve to `points` evenly spaced entries
    /// (for plotting / printing convergence tables).
    pub fn downsampled_curve(&self, points: usize) -> Vec<(usize, f64)> {
        if self.best_curve.is_empty() || points == 0 {
            return Vec::new();
        }
        let n = self.best_curve.len();
        let step = (n as f64 / points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((idx + 1, self.best_curve[idx]));
            i += step;
        }
        if out.last().map(|&(idx, _)| idx) != Some(n) {
            out.push((n, self.best_curve[n - 1]));
        }
        out
    }

    /// Merges another history into this one, preserving sample order
    /// (used when a search is resumed, e.g. warm-start then refine).
    pub fn extend_from(&mut self, other: &SearchHistory) {
        for &f in &other.samples {
            self.samples.push(f);
            if self.best_fitness.is_none_or(|b| f > b) {
                self.best_fitness = Some(f);
            }
            self.best_curve.push(self.best_fitness.unwrap());
        }
        // Adopt the other run's best mapping if it is the overall best.
        if let (Some(of), Some(om)) = (other.best_fitness, other.best_mapping.as_ref()) {
            let ours = self.best_mapping.is_none() || self.best_fitness.is_none_or(|b| of >= b);
            if ours {
                self.best_mapping = Some(om.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mapping(seed: u64) -> Mapping {
        let mut rng = StdRng::seed_from_u64(seed);
        Mapping::random(&mut rng, 5, 2)
    }

    #[test]
    fn best_curve_is_monotone() {
        let mut h = SearchHistory::new();
        for (i, f) in [3.0, 1.0, 5.0, 2.0, 8.0, 4.0].iter().enumerate() {
            h.record(&mapping(i as u64), *f);
        }
        assert_eq!(h.num_samples(), 6);
        assert_eq!(h.best_curve(), &[3.0, 3.0, 5.0, 5.0, 8.0, 8.0]);
        assert_eq!(h.best_fitness(), Some(8.0));
    }

    #[test]
    fn best_within_budget() {
        let mut h = SearchHistory::new();
        for f in [1.0, 4.0, 2.0, 9.0] {
            h.record(&mapping(0), f);
        }
        assert_eq!(h.best_within(2), Some(4.0));
        assert_eq!(h.best_within(10), Some(9.0));
        assert_eq!(h.best_within(0), None);
    }

    #[test]
    fn samples_to_reach_fraction() {
        let mut h = SearchHistory::new();
        for f in [2.0, 5.0, 6.0, 10.0] {
            h.record(&mapping(0), f);
        }
        assert_eq!(h.samples_to_reach(0.5), Some(2)); // 5.0 >= 5.0
        assert_eq!(h.samples_to_reach(1.0), Some(4));
    }

    #[test]
    fn downsampled_curve_endpoints() {
        let mut h = SearchHistory::new();
        for i in 0..100 {
            h.record(&mapping(0), i as f64);
        }
        let d = h.downsampled_curve(10);
        assert!(d.len() >= 10);
        assert_eq!(d.first().unwrap().0, 1);
        assert_eq!(d.last().unwrap().0, 100);
        assert_eq!(d.last().unwrap().1, 99.0);
    }

    #[test]
    fn empty_history_is_sane() {
        let h = SearchHistory::new();
        assert_eq!(h.num_samples(), 0);
        assert!(h.best_fitness().is_none());
        assert!(h.best_mapping().is_none());
        assert!(h.downsampled_curve(5).is_empty());
    }

    #[test]
    fn best_mapping_tracks_best_fitness() {
        let mut h = SearchHistory::new();
        let good = mapping(42);
        h.record(&mapping(0), 1.0);
        h.record(&good, 7.0);
        h.record(&mapping(1), 3.0);
        assert_eq!(h.best_mapping(), Some(&good));
    }

    #[test]
    fn extend_from_concatenates_samples() {
        let mut a = SearchHistory::new();
        a.record(&mapping(0), 2.0);
        let mut b = SearchHistory::new();
        b.record(&mapping(1), 5.0);
        b.record(&mapping(2), 1.0);
        a.extend_from(&b);
        assert_eq!(a.num_samples(), 3);
        assert_eq!(a.best_fitness(), Some(5.0));
        assert!(a.best_curve().windows(2).all(|w| w[1] >= w[0]));
    }
}
