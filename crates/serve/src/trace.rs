//! Seeded arrival-trace synthesis: Poisson, bursty/diurnal and
//! tenant-mix-drift traffic over a [`TenantMix`].
//!
//! A trace is the input of the serving simulator: a time-ordered list of
//! [`Arrival`]s, each one job from one tenant. Inter-arrival gaps are drawn
//! from an exponential distribution (inverse-CDF over the seeded RNG — no
//! distribution crate needed), optionally modulated by the scenario; tenant
//! selection is weighted, optionally drifting over the trace. Job content
//! comes from each tenant's deterministic [`TenantJobStream`], so the same
//! `(mix, params)` pair always produces bit-identical traces — and a
//! single-tenant mix produces *periodic* job windows, the repeated-tenant
//! pattern the mapping cache exploits.

use magma_model::{JobId, TaskType, TenantJobStream, TenantMix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The traffic scenario shaping a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Scenario {
    /// Stationary Poisson arrivals with fixed tenant weights.
    #[default]
    Poisson,
    /// Diurnal-style bursts: arrival blocks alternate between a high-rate
    /// and a low-rate phase (mean rate preserved), stressing the batcher's
    /// deadline path during troughs and its size path during peaks.
    Bursty,
    /// Tenant-mix drift: traffic shifts linearly from vision-heavy to
    /// language-heavy across the trace, invalidating cached mappings as the
    /// dominant tenant changes.
    Drift,
}

impl Scenario {
    /// All scenarios, in presentation order.
    pub const ALL: [Scenario; 3] = [Scenario::Poisson, Scenario::Bursty, Scenario::Drift];

    /// Inter-arrival gap multiplier for arrival `index` of `total`. Bursty
    /// traffic alternates 0.4× / 1.6× in blocks of [`BURST_BLOCK`] arrivals
    /// (mean 1.0× preserved); other scenarios are unmodulated.
    fn gap_factor(self, index: usize, _total: usize) -> f64 {
        match self {
            Scenario::Bursty => {
                if (index / BURST_BLOCK).is_multiple_of(2) {
                    0.4
                } else {
                    1.6
                }
            }
            _ => 1.0,
        }
    }

    /// Effective tenant weights at trace progress `p` in `[0, 1]`: drift
    /// scales vision tenants by `1 + 2(1-p)` and language tenants by
    /// `1 + 2p`, so the trace starts vision-heavy (3:1) and ends
    /// language-heavy (1:3); other scenarios use the base weights.
    fn tenant_weights(self, mix: &TenantMix, p: f64) -> Vec<f64> {
        mix.tenants()
            .iter()
            .map(|t| {
                let factor = match (self, t.task()) {
                    (Scenario::Drift, TaskType::Vision) => 1.0 + 2.0 * (1.0 - p),
                    (Scenario::Drift, TaskType::Language) => 1.0 + 2.0 * p,
                    _ => 1.0,
                };
                t.weight() * factor
            })
            .collect()
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Arrivals per bursty high/low phase block.
pub const BURST_BLOCK: usize = 20;

/// Parameters of one synthesized trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceParams {
    /// The traffic scenario.
    pub scenario: Scenario,
    /// Number of arrivals to synthesize.
    pub requests: usize,
    /// Mean inter-arrival gap in virtual seconds.
    pub mean_interarrival_sec: f64,
    /// Mini-batch size of every job.
    pub mini_batch: usize,
    /// RNG seed (gaps + tenant selection).
    pub seed: u64,
}

/// One request: a job from a tenant arriving at a virtual-clock instant.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// Virtual arrival time in seconds.
    pub time_sec: f64,
    /// Index of the emitting tenant in the mix.
    pub tenant: usize,
    /// The job to be mapped and executed. Job ids are re-assigned per
    /// dispatch group; here they number the arrivals of the trace.
    pub job: magma_model::Job,
}

/// Synthesizes the full arrival trace for `mix` under `params`.
///
/// # Panics
///
/// Panics if `requests == 0`, `mini_batch == 0` or the mean inter-arrival
/// gap is not finite and positive.
pub fn generate_trace(params: &TraceParams, mix: &TenantMix) -> Vec<Arrival> {
    assert!(params.requests > 0, "a trace needs at least one arrival");
    assert!(
        params.mean_interarrival_sec.is_finite() && params.mean_interarrival_sec > 0.0,
        "mean inter-arrival gap must be finite and positive"
    );
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut streams: Vec<TenantJobStream> =
        mix.tenants().iter().map(|t| t.job_stream(params.mini_batch)).collect();
    let mut arrivals = Vec::with_capacity(params.requests);
    let mut now = 0.0f64;
    let denom = params.requests.saturating_sub(1).max(1) as f64;
    // Fleet-scale traces pair millions of requests with thousands of
    // tenants; rebuilding the weight vector per arrival would make trace
    // synthesis O(requests × tenants). Only Drift actually varies the
    // weights over the trace — stationary scenarios hoist them once.
    // Selection still goes through `TenantMix::pick` either way, so the
    // emitted trace is bit-identical to the per-arrival path.
    let stationary_weights = match params.scenario {
        Scenario::Drift => None,
        _ => Some(params.scenario.tenant_weights(mix, 0.0)),
    };
    for i in 0..params.requests {
        // Exponential gap via inverse CDF; 1 - u is in (0, 1] so ln is finite.
        let u: f64 = rng.gen();
        let gap = -(1.0 - u).max(f64::MIN_POSITIVE).ln() * params.mean_interarrival_sec;
        now += gap * params.scenario.gap_factor(i, params.requests);
        let tenant = match &stationary_weights {
            Some(weights) => mix.pick(weights, rng.gen()),
            None => {
                let progress = i as f64 / denom;
                let weights = params.scenario.tenant_weights(mix, progress);
                mix.pick(&weights, rng.gen())
            }
        };
        let job = streams[tenant].next_job(JobId(i));
        arrivals.push(Arrival { time_sec: now, tenant, job });
    }
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(scenario: Scenario, seed: u64) -> TraceParams {
        TraceParams { scenario, requests: 120, mean_interarrival_sec: 1e-3, mini_batch: 4, seed }
    }

    #[test]
    fn trace_is_deterministic_and_time_ordered() {
        let mix = TenantMix::standard();
        let a = generate_trace(&params(Scenario::Poisson, 7), &mix);
        let b = generate_trace(&params(Scenario::Poisson, 7), &mix);
        assert_eq!(a, b);
        assert_eq!(a.len(), 120);
        assert!(a.windows(2).all(|w| w[0].time_sec <= w[1].time_sec));
        assert!(a.iter().all(|x| x.time_sec.is_finite() && x.time_sec > 0.0));
    }

    #[test]
    fn different_seeds_differ() {
        let mix = TenantMix::standard();
        let a = generate_trace(&params(Scenario::Poisson, 1), &mix);
        let b = generate_trace(&params(Scenario::Poisson, 2), &mix);
        assert_ne!(a, b);
    }

    #[test]
    fn mean_gap_is_roughly_honored() {
        let mix = TenantMix::standard();
        let p = TraceParams {
            scenario: Scenario::Poisson,
            requests: 2_000,
            mean_interarrival_sec: 1e-3,
            mini_batch: 4,
            seed: 3,
        };
        let trace = generate_trace(&p, &mix);
        let mean = trace.last().unwrap().time_sec / 2_000.0;
        assert!((0.8e-3..1.25e-3).contains(&mean), "observed mean gap {mean}");
    }

    #[test]
    fn bursty_trace_alternates_fast_and_slow_blocks() {
        let mix = TenantMix::standard();
        let trace = generate_trace(&params(Scenario::Bursty, 5), &mix);
        let span = |lo: usize, hi: usize| trace[hi].time_sec - trace[lo].time_sec;
        // High-rate block (0..20) must be denser than the low-rate block
        // (20..40) — with 4x rate separation this holds at any seed that
        // isn't adversarial; the fixed seed keeps it deterministic.
        assert!(span(0, 19) < span(20, 39));
    }

    #[test]
    fn drift_trace_shifts_from_vision_to_language() {
        let mix = TenantMix::standard();
        let p = TraceParams {
            scenario: Scenario::Drift,
            requests: 600,
            mean_interarrival_sec: 1e-3,
            mini_batch: 4,
            seed: 11,
        };
        let trace = generate_trace(&p, &mix);
        let count = |range: std::ops::Range<usize>, task: TaskType| {
            trace[range].iter().filter(|a| a.job.task() == task).count()
        };
        // First third is vision-heavy, last third language-heavy.
        assert!(count(0..200, TaskType::Vision) > count(0..200, TaskType::Language));
        assert!(count(400..600, TaskType::Language) > count(400..600, TaskType::Vision));
    }

    #[test]
    fn single_tenant_trace_is_periodic_in_job_content() {
        let mix =
            TenantMix::single("recom", TaskType::Recommendation, vec![magma_model::zoo::ncf()]);
        let period = mix.tenants()[0].job_stream(4).period();
        let p = TraceParams {
            scenario: Scenario::Poisson,
            requests: 3 * period,
            mean_interarrival_sec: 1e-3,
            mini_batch: 4,
            seed: 0,
        };
        let trace = generate_trace(&p, &mix);
        for i in 0..period {
            assert_eq!(trace[i].job.layer(), trace[i + period].job.layer());
        }
    }

    #[test]
    fn scenario_labels_are_distinct() {
        let mut labels: Vec<String> = Scenario::ALL.iter().map(|s| s.to_string()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 3);
    }
}
