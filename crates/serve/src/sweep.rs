//! The cache-calibration sweep behind `BENCH_cache.json`.
//!
//! The near-hit probe (`MAGMA_SERVE_CACHE_EPSILON`), the refinement budget
//! (`MAGMA_SERVE_REFINE_BUDGET`) and the key quantization step
//! (`MAGMA_SERVE_QUANT`) trade hit rate against hit quality: a looser
//! epsilon or coarser key catches more traffic but adapts from
//! less-matching solutions. This module sweeps that grid on the standard
//! Poisson mix trace and emits a schema-stable report ([`CACHE_SCHEMA`])
//! whose frontier justifies the shipped defaults: the **calibrated point**
//! is the highest-hit-rate grid point whose delivered quality stays at
//! least [`QUALITY_FLOOR`] of the all-cold-search run while spending at
//! most [`BUDGET_CEILING`] of the cold budget per hit.
//!
//! Quality is measured *matched*: each point's mean best-mapping
//! throughput per dispatch group — over **all** dispatches, hit and cold —
//! is divided by its probe-off (`epsilon = 0`) sibling's at the same
//! refinement budget and quantization step. Same trace, same group
//! population, so the ratio isolates what the probe cost. The per-cohort
//! `hit_cold_throughput_ratio` is also reported but is **not** the
//! admission criterion: on a mix trace the few groups that still miss at a
//! loose epsilon are an unrepresentative cohort, so hit-mean over
//! cold-mean is biased by *which* groups landed on each path, not by what
//! the probe did to them.
//!
//! The report also carries a signature-profile A/B block
//! (`MAGMA_SIGNATURE_PROFILE` on vs off at the shipped knob point), which
//! is what flipped that knob's default on: latency-class-aware distances
//! rank near neighbours better at zero extra cost. The A/B mutates the
//! process environment, so only the `cache_sweep` binary requests it —
//! library users (and the test suite) leave it off.

use crate::descriptor::{CustomScenario, ScenarioDescriptor};
use crate::sim::{simulate, SimConfig};
use crate::trace::Scenario;
use magma_model::TenantMix;
use magma_platform::settings::ServeKnobs;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// Version tag of the cache-sweep report layout. Same contract as
/// [`crate::report::SCHEMA`]: fields are only ever added, with a bump.
/// `v2` added the embedded `scenario_descriptor` (required by
/// [`CacheSweepReport::validate`]).
pub const CACHE_SCHEMA: &str = "magma-cache/v2";

/// Minimum `quality_vs_probe_off` a grid point must keep to be admissible
/// as the calibrated point.
pub const QUALITY_FLOOR: f64 = 0.95;

/// Maximum `hit_sample_fraction` (mean hit samples over mean cold samples)
/// the calibrated point may spend.
pub const BUDGET_CEILING: f64 = 0.25;

/// One `(epsilon, refine_budget, quant_step)` grid point's measurements on
/// the mix trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Nearest-key probe threshold swept.
    pub epsilon: f64,
    /// Cache-hit refinement budget swept, in samples.
    pub refine_budget: usize,
    /// Key quantization step swept, in nats.
    pub quant_step: f64,
    /// Cache hits (exact and near combined).
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// The subset of hits served by the nearest-key probe.
    pub near_hits: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Mean best-mapping throughput per dispatch group over **all**
    /// dispatches (hit and cold), GFLOP/s.
    pub mean_dispatch_gflops: f64,
    /// This point's `mean_dispatch_gflops` over its probe-off
    /// (`epsilon = 0`) sibling's at the same refinement budget and
    /// quantization step — the matched quality measure the floors judge
    /// (1.0 for the probe-off rows themselves; 0 when no sibling was
    /// swept).
    pub quality_vs_probe_off: f64,
    /// `hit_gflops_mean / cold_gflops_mean` — per-cohort hit quality (0
    /// when either side is empty). Informational only: cohort-biased on
    /// mix traces (see the module docs).
    pub hit_cold_throughput_ratio: f64,
    /// Mean hit samples over mean cold samples (0 when either side is
    /// empty).
    pub hit_sample_fraction: f64,
    /// Mean end-to-end latency, µs of virtual time.
    pub mean_e2e_us: f64,
    /// p95 end-to-end latency, µs of virtual time.
    pub p95_e2e_us: f64,
    /// Jobs per virtual second.
    pub jobs_per_sec: f64,
}

impl SweepPoint {
    /// Whether this point satisfies the calibration floors (and actually
    /// served hits, so the ratios are meaningful).
    pub fn admissible(&self) -> bool {
        self.hits > 0
            && self.quality_vs_probe_off >= QUALITY_FLOOR
            && self.hit_sample_fraction <= BUDGET_CEILING
    }
}

/// The signature-profile A/B at the shipped knob point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileAb {
    /// `MAGMA_SIGNATURE_PROFILE` on (the shipped default).
    pub on: SweepPoint,
    /// `MAGMA_SIGNATURE_PROFILE=0`.
    pub off: SweepPoint,
}

/// The full report written to `BENCH_cache.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheSweepReport {
    /// Schema version tag ([`CACHE_SCHEMA`]).
    pub schema: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Trace/search seed.
    pub seed: u64,
    /// Arrivals per grid point.
    pub requests: usize,
    /// Cold-search budget every point refines against.
    pub cold_budget: usize,
    /// The quality floor applied ([`QUALITY_FLOOR`]).
    pub quality_floor: f64,
    /// The budget ceiling applied ([`BUDGET_CEILING`]).
    pub budget_ceiling: f64,
    /// The shipped default knob point `(epsilon, refine_budget,
    /// quant_step)` this sweep ran under.
    pub default_epsilon: f64,
    /// Shipped default refinement budget.
    pub default_refine_budget: usize,
    /// Shipped default quantization step.
    pub default_quant_step: f64,
    /// What this sweep measured: the resolved scenario descriptor (builtin
    /// mix-trace parameters, or the registry definitions behind a
    /// `--scenario` run), content-hashed.
    pub scenario_descriptor: ScenarioDescriptor,
    /// One entry per grid point, in sweep order (epsilon-major).
    pub grid: Vec<SweepPoint>,
    /// The calibrated point: highest hit rate among admissible points
    /// (ties: lower mean e2e, then smaller epsilon, refine budget and
    /// quantization step). `None` when no point is admissible.
    pub calibrated: Option<SweepPoint>,
    /// Whether the shipped defaults coincide with the calibrated point.
    pub defaults_match_calibrated: bool,
    /// The signature-profile A/B (binary runs only; `None` from the
    /// library API).
    pub profile_ab: Option<ProfileAb>,
}

impl CacheSweepReport {
    /// The [`CACHE_SCHEMA`] self-check: the versioned invariants CI asserts
    /// before uploading a profile. Returns the first violation as an error
    /// string.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != CACHE_SCHEMA {
            return Err(format!("schema tag {} != {}", self.schema, CACHE_SCHEMA));
        }
        self.scenario_descriptor.validate().map_err(|e| format!("cache report: {e}"))?;
        if self.grid.is_empty() {
            return Err("empty sweep grid".into());
        }
        for (i, p) in self.grid.iter().enumerate() {
            if !(p.epsilon >= 0.0 && p.quant_step > 0.0 && p.refine_budget > 0) {
                return Err(format!("grid[{i}]: degenerate axes"));
            }
            if !(0.0..=1.0).contains(&p.hit_rate) {
                return Err(format!("grid[{i}]: hit rate {} out of range", p.hit_rate));
            }
            if p.near_hits > p.hits {
                return Err(format!("grid[{i}]: more near hits than hits"));
            }
            let lookups = p.hits + p.misses;
            if lookups == 0 {
                return Err(format!("grid[{i}]: no cache lookups recorded"));
            }
            let expect = p.hits as f64 / lookups as f64;
            if (p.hit_rate - expect).abs() > 1e-12 {
                return Err(format!("grid[{i}]: hit rate disagrees with its counters"));
            }
            if p.mean_dispatch_gflops <= 0.0 || p.mean_dispatch_gflops.is_nan() {
                return Err(format!("grid[{i}]: no mapped dispatch throughput"));
            }
            // The matched quality must be re-derivable from the grid
            // itself: each point against its probe-off sibling.
            match probe_off_sibling(&self.grid, p) {
                Some(base) => {
                    let expect = p.mean_dispatch_gflops / base;
                    if (p.quality_vs_probe_off - expect).abs() > 1e-9 * expect {
                        return Err(format!(
                            "grid[{i}]: quality_vs_probe_off {} disagrees with its \
                             probe-off sibling ({} expected)",
                            p.quality_vs_probe_off, expect
                        ));
                    }
                }
                None => {
                    return Err(format!(
                        "grid[{i}]: no probe-off sibling at refine {} / quant {}",
                        p.refine_budget, p.quant_step
                    ));
                }
            }
        }
        match &self.calibrated {
            Some(c) => {
                if !self.grid.contains(c) {
                    return Err("calibrated point is not a grid member".into());
                }
                if !c.admissible() {
                    return Err(format!(
                        "calibrated point violates the floors: quality {} (≥ {} required), \
                         budget {} (≤ {} allowed)",
                        c.quality_vs_probe_off,
                        self.quality_floor,
                        c.hit_sample_fraction,
                        self.budget_ceiling
                    ));
                }
                for p in &self.grid {
                    if p.admissible() && p.hit_rate > c.hit_rate {
                        return Err(format!(
                            "admissible point (eps {}, refine {}, quant {}) out-hits the \
                             calibrated one",
                            p.epsilon, p.refine_budget, p.quant_step
                        ));
                    }
                }
            }
            None => {
                if self.grid.iter().any(|p| p.admissible()) {
                    return Err("an admissible point exists but none was calibrated".into());
                }
                if self.defaults_match_calibrated {
                    return Err("defaults cannot match a missing calibrated point".into());
                }
            }
        }
        Ok(())
    }
}

/// The probe-off (`epsilon = 0`) sibling's delivered throughput for a
/// point's refinement budget and quantization step, if that row was swept.
fn probe_off_sibling(grid: &[SweepPoint], p: &SweepPoint) -> Option<f64> {
    grid.iter()
        .find(|b| {
            b.epsilon == 0.0 && b.refine_budget == p.refine_budget && b.quant_step == p.quant_step
        })
        .map(|b| b.mean_dispatch_gflops)
}

/// The grid swept: full mode crosses eight epsilons (up past the useful
/// range, so the frontier visibly closes) with three refinement budgets
/// (5%, 10% and 25% of cold) and three quantization steps; smoke mode pins
/// refine/quant to the shipped knobs and only A/Bs the probe (off vs the
/// shipped epsilon) so CI stays fast.
pub fn sweep_grid(knobs: &ServeKnobs, smoke: bool) -> Vec<(f64, usize, f64)> {
    let (epsilons, refines, quants): (Vec<f64>, Vec<usize>, Vec<f64>) = if smoke {
        (vec![0.0, knobs.cache_epsilon.max(1.0)], vec![knobs.refine_budget], vec![knobs.quant_step])
    } else {
        (
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0],
            vec![
                (knobs.cold_budget / 20).max(1),
                (knobs.cold_budget / 10).max(1),
                (knobs.cold_budget / 4).max(1),
            ],
            vec![0.5, 1.0, 2.0],
        )
    };
    let mut grid = Vec::with_capacity(epsilons.len() * refines.len() * quants.len());
    for &eps in &epsilons {
        for &refine in &refines {
            for &quant in &quants {
                grid.push((eps, refine, quant));
            }
        }
    }
    grid
}

/// Runs one grid point: the template's trace (the standard Poisson mix for
/// the builtin sweep, a registry scenario otherwise) with the point's probe
/// threshold, refinement budget and quantization step.
fn run_point(template: &SimConfig, mix: &TenantMix, point: (f64, usize, f64)) -> SweepPoint {
    let (epsilon, refine_budget, quant_step) = point;
    let mut config = template.clone();
    config.dispatch.cache_epsilon = epsilon;
    config.dispatch.refine_budget = refine_budget;
    config.dispatch.quant_step = quant_step;
    // Every grid point starts cold — a persistence file would leak cache
    // state from point to point and corrupt the frontier.
    config.cache_path = None;
    let result = simulate(&config, mix);
    let m = &result.metrics;
    SweepPoint {
        epsilon,
        refine_budget,
        quant_step,
        hits: m.cache.hits,
        misses: m.cache.misses,
        near_hits: m.cache.near_hits,
        hit_rate: m.cache.hit_rate,
        mean_dispatch_gflops: if m.dispatch.dispatches > 0 {
            (m.dispatch.cold as f64 * m.dispatch.cold_gflops_mean
                + m.dispatch.hits as f64 * m.dispatch.hit_gflops_mean)
                / m.dispatch.dispatches as f64
        } else {
            0.0
        },
        // Filled in against the probe-off sibling once the grid is
        // complete (`attach_quality`).
        quality_vs_probe_off: 0.0,
        hit_cold_throughput_ratio: m.dispatch.hit_cold_throughput_ratio,
        hit_sample_fraction: m.dispatch.hit_sample_fraction,
        mean_e2e_us: m.end_to_end.mean_sec * 1e6,
        p95_e2e_us: m.end_to_end.p95_sec * 1e6,
        jobs_per_sec: m.jobs_per_sec,
    }
}

/// Fills every point's `quality_vs_probe_off` from its probe-off sibling
/// (1.0 for the probe-off rows themselves, by construction).
fn attach_quality(grid: &mut [SweepPoint]) {
    let baselines: Vec<(usize, f64, f64)> = grid
        .iter()
        .filter(|p| p.epsilon == 0.0)
        .map(|p| (p.refine_budget, p.quant_step, p.mean_dispatch_gflops))
        .collect();
    for p in grid.iter_mut() {
        p.quality_vs_probe_off = baselines
            .iter()
            .find(|(r, q, _)| *r == p.refine_budget && *q == p.quant_step)
            .map(|(_, _, base)| p.mean_dispatch_gflops / base)
            .unwrap_or(0.0);
    }
}

/// Picks the calibrated point: highest hit rate among admissible points,
/// ties broken toward lower mean end-to-end latency. Points that are still
/// metrically tied (the quantization axis often is: near hits don't
/// consult the exact key) prefer the shipped default on each axis — no
/// churning a default over a measured dead heat — then the smaller value.
/// A total order, so calibration is deterministic.
fn calibrate_grid(grid: &[SweepPoint], shipped: (f64, usize, f64)) -> Option<SweepPoint> {
    grid.iter()
        .filter(|p| p.admissible())
        .max_by(|a, b| {
            let fin = |x: &f64, y: &f64| x.partial_cmp(y).expect("sweep metrics are finite");
            fin(&a.hit_rate, &b.hit_rate)
                .then_with(|| fin(&b.mean_e2e_us, &a.mean_e2e_us))
                .then_with(|| (a.epsilon == shipped.0).cmp(&(b.epsilon == shipped.0)))
                .then_with(|| fin(&b.epsilon, &a.epsilon))
                .then_with(|| (a.refine_budget == shipped.1).cmp(&(b.refine_budget == shipped.1)))
                .then_with(|| b.refine_budget.cmp(&a.refine_budget))
                .then_with(|| (a.quant_step == shipped.2).cmp(&(b.quant_step == shipped.2)))
                .then_with(|| fin(&b.quant_step, &a.quant_step))
        })
        .cloned()
}

/// The builtin sweep's self-describing descriptor: the knob values that
/// shape the mix-trace sweep.
fn builtin_cache_descriptor(knobs: &ServeKnobs) -> ScenarioDescriptor {
    let params = Value::Map(vec![
        ("requests".into(), Value::U64(knobs.requests as u64)),
        ("group_target".into(), Value::U64(knobs.group_target as u64)),
        ("offered_load".into(), Value::F64(knobs.offered_load)),
        ("cold_budget".into(), Value::U64(knobs.cold_budget as u64)),
        ("default_epsilon".into(), Value::F64(knobs.cache_epsilon)),
        ("default_refine_budget".into(), Value::U64(knobs.refine_budget as u64)),
        ("default_quant_step".into(), Value::F64(knobs.quant_step)),
        ("platform".into(), Value::Str("S2".into())),
        ("mix".into(), Value::Str("standard".into())),
        ("scenario".into(), Value::Str("poisson".into())),
        ("seed".into(), Value::U64(knobs.seed)),
    ]);
    ScenarioDescriptor::new("builtin", "cache_sweep", params)
}

/// Runs the sweep and assembles the report. `profile_ab` additionally runs
/// the shipped knob point with `MAGMA_SIGNATURE_PROFILE` forced on and off
/// — this mutates the process environment, so pass `true` only from a
/// binary's main thread (the `cache_sweep` bin does; the library test
/// suite must not).
pub fn run_cache_sweep(knobs: &ServeKnobs, smoke: bool, profile_ab: bool) -> CacheSweepReport {
    let template = SimConfig::from_knobs(knobs, Scenario::Poisson);
    let mix = TenantMix::standard();
    let descriptor = builtin_cache_descriptor(knobs);
    run_sweep_inner(knobs, smoke, profile_ab, &template, &mix, descriptor)
}

/// Runs the same calibration sweep on a registry-defined scenario: its
/// platform, mix and arrival process replace the builtin S2 / standard-mix /
/// Poisson trace, and the report embeds its descriptor. The grid axes and
/// admission floors are unchanged, so registry scenarios can re-calibrate
/// the cache knobs for their own traffic.
pub fn run_cache_sweep_custom(
    knobs: &ServeKnobs,
    smoke: bool,
    profile_ab: bool,
    custom: &CustomScenario,
) -> CacheSweepReport {
    let knobs = &custom.apply_serving(knobs);
    let mut template = SimConfig::from_knobs(knobs, custom.scenario);
    template.platform = custom.platform.clone();
    if let Some(requests) = custom.requests {
        template.requests = requests;
    }
    if let Some(load) = custom.offered_load {
        template.offered_load = load;
    }
    if let Some(seed) = custom.seed {
        template.seed = seed;
    }
    run_sweep_inner(knobs, smoke, profile_ab, &template, &custom.mix, custom.descriptor.clone())
}

/// The sweep engine shared by the builtin and registry paths.
fn run_sweep_inner(
    knobs: &ServeKnobs,
    smoke: bool,
    profile_ab: bool,
    template: &SimConfig,
    mix: &TenantMix,
    descriptor: ScenarioDescriptor,
) -> CacheSweepReport {
    let mut grid: Vec<SweepPoint> =
        sweep_grid(knobs, smoke).into_iter().map(|p| run_point(template, mix, p)).collect();
    attach_quality(&mut grid);
    let shipped = (knobs.cache_epsilon, knobs.refine_budget, knobs.quant_step);
    let calibrated = calibrate_grid(&grid, shipped);
    let defaults_match_calibrated = calibrated.as_ref().is_some_and(|c| {
        c.epsilon == knobs.cache_epsilon
            && c.refine_budget == knobs.refine_budget
            && c.quant_step == knobs.quant_step
    });
    let ab = profile_ab.then(|| {
        let prior = std::env::var("MAGMA_SIGNATURE_PROFILE").ok();
        std::env::set_var("MAGMA_SIGNATURE_PROFILE", "1");
        let mut on = run_point(template, mix, shipped);
        std::env::set_var("MAGMA_SIGNATURE_PROFILE", "0");
        let mut off = run_point(template, mix, shipped);
        match prior {
            Some(v) => std::env::set_var("MAGMA_SIGNATURE_PROFILE", v),
            None => std::env::remove_var("MAGMA_SIGNATURE_PROFILE"),
        }
        // The probe-off baseline never consults signature distances (an
        // epsilon of 0 means exact keys only), so the grid's sibling is
        // the valid denominator for both arms.
        for p in [&mut on, &mut off] {
            p.quality_vs_probe_off = probe_off_sibling(&grid, p)
                .map(|base| p.mean_dispatch_gflops / base)
                .unwrap_or(0.0);
        }
        ProfileAb { on, off }
    });
    CacheSweepReport {
        schema: CACHE_SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        seed: template.seed,
        requests: template.requests,
        cold_budget: knobs.cold_budget,
        quality_floor: QUALITY_FLOOR,
        budget_ceiling: BUDGET_CEILING,
        default_epsilon: knobs.cache_epsilon,
        default_refine_budget: knobs.refine_budget,
        default_quant_step: knobs.quant_step,
        scenario_descriptor: descriptor,
        grid,
        calibrated,
        defaults_match_calibrated,
        profile_ab: ab,
    }
}

/// Writes the report to `BENCH_cache.json` in `MAGMA_BENCH_DIR` (default:
/// the current directory), returning the path — the same contract as
/// `BENCH_serve.json`, so CI never silently uploads a stale profile.
pub fn write_cache_json(report: &CacheSweepReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    let path = dir.join("BENCH_cache.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the cache report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_knobs() -> ServeKnobs {
        ServeKnobs {
            requests: 48,
            group_target: 8,
            cold_budget: 40,
            refine_budget: 4,
            cache_capacity: 16,
            ..ServeKnobs::smoke()
        }
    }

    #[test]
    fn smoke_sweep_validates_and_round_trips_with_stable_keys() {
        let report = run_cache_sweep(&tiny_knobs(), true, false);
        report.validate().expect("a freshly assembled sweep must self-check");
        assert_eq!(report.grid.len(), 2, "smoke sweeps probe-off vs the shipped epsilon");
        let json = serde_json::to_string_pretty(&report).unwrap();
        for key in [
            "\"schema\"",
            "\"mode\"",
            "\"seed\"",
            "\"cold_budget\"",
            "\"quality_floor\"",
            "\"budget_ceiling\"",
            "\"default_epsilon\"",
            "\"default_refine_budget\"",
            "\"default_quant_step\"",
            "\"grid\"",
            "\"epsilon\"",
            "\"refine_budget\"",
            "\"quant_step\"",
            "\"hit_rate\"",
            "\"near_hits\"",
            "\"mean_dispatch_gflops\"",
            "\"quality_vs_probe_off\"",
            "\"hit_cold_throughput_ratio\"",
            "\"hit_sample_fraction\"",
            "\"mean_e2e_us\"",
            "\"p95_e2e_us\"",
            "\"jobs_per_sec\"",
            "\"calibrated\"",
            "\"defaults_match_calibrated\"",
            "\"profile_ab\"",
            // v2 additions.
            "\"scenario_descriptor\"",
            "\"content_hash\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let back: CacheSweepReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn the_probe_earns_its_keep_on_the_mix_trace() {
        let report = run_cache_sweep(&tiny_knobs(), true, false);
        let off = &report.grid[0];
        let on = &report.grid[1];
        assert_eq!(off.epsilon, 0.0);
        assert!(on.epsilon > 0.0);
        assert_eq!(off.quality_vs_probe_off, 1.0, "the probe-off row is its own baseline");
        assert!(on.quality_vs_probe_off > 0.0);
        assert!(
            on.hits > off.hits,
            "the probe must convert mix-trace misses into near hits: on {on:?} vs off {off:?}"
        );
        assert!(on.near_hits > 0);
    }

    #[test]
    fn full_grid_crosses_all_three_axes() {
        let grid = sweep_grid(&ServeKnobs::full(), false);
        assert_eq!(grid.len(), 8 * 3 * 3);
        // The shipped defaults are a grid member, so the frontier can
        // actually justify (or indict) them.
        let d = ServeKnobs::full();
        assert!(
            grid.contains(&(d.cache_epsilon, d.refine_budget, d.quant_step)),
            "the default point {:?} must be swept",
            (d.cache_epsilon, d.refine_budget, d.quant_step)
        );
    }

    #[test]
    fn validate_rejects_a_corrupted_sweep() {
        let good = run_cache_sweep(&tiny_knobs(), true, false);
        let mut bad = good.clone();
        bad.grid[0].hit_rate = 2.0;
        assert!(bad.validate().is_err());
        let mut foreign = good.clone();
        if let Some(c) = &mut foreign.calibrated {
            c.epsilon += 123.0;
            assert!(foreign.validate().is_err(), "a non-member calibrated point must fail");
        }
        let mut wrong_tag = good;
        wrong_tag.schema = "magma-cache/v0".into();
        assert!(wrong_tag.validate().is_err());
    }
}
