//! The wall-clock serving engine: the fleet's routing/scheduling/dispatch
//! machinery driven by real time instead of the virtual event loop.
//!
//! The simulators ([`crate::sim`], [`crate::fleet`]) own their clock: they
//! synthesize a trace up front and process arrival/cut/step events in
//! virtual-time order. A *server* cannot — requests arrive over a socket
//! whenever clients send them. [`ServeEngine`] is the piece in between: the
//! same components ([`AdmissionBatcher`] → [`ShardRouter`] →
//! [`SessionScheduler`] per shard, [`MappingService`] caches with the
//! optional [`SharedCache`] tier behind them), but every entry point takes
//! the caller's `now_sec`. The daemon (`magma-server`) feeds it
//! `Instant`-derived seconds; tests feed it synthetic time, which keeps the
//! engine deterministic and clock-free to test.
//!
//! ```text
//!  submit(now, …) ─▶ AdmissionBatcher ─┐
//!                                      │ poll(now): cut ready groups,
//!                                      ▼ one scheduler step per shard
//!                        ShardRouter ──▶ shard 0..N: scheduler ⇄ cache ⇄ accel
//!                                      │
//!                                      └──▶ Vec<JobCompletion> (token-tagged)
//! ```
//!
//! Three server-specific behaviours sit on top of the fleet machinery:
//!
//! * **Admission control** — [`ServeEngine::submit`] rejects with
//!   [`Admission::Busy`] (and a retry-after hint) when the projected mapper
//!   backlog — the same seconds-denominated load measure the router places
//!   by, plus the cost of everything still queued in the batcher — exceeds
//!   `max_backlog_sec`, or when the bounded admission queue
//!   (`pending_per_shard × shards` groups) is full.
//! * **Timeouts** — every admitted group carries a deadline of
//!   `admission + timeout_sec`; under the Deadline policy an expired
//!   session is early-finished by the scheduler (a usable mapping built
//!   from the samples already evaluated — never a discard) and its
//!   completions are flagged `timed_out`.
//! * **Cancellation** — [`ServeEngine::cancel`] marks a token cancelled;
//!   a live session whose jobs are all cancelled is removed immediately
//!   (finished into the cache when it has evaluated samples, dropped
//!   outright when it has not), and completions of cancelled tokens are
//!   flagged so the transport can suppress them.
//!
//! [`ServeEngine::drain`] closes the lifecycle: admissions stop, every
//! queued group is force-cut and every live session run to completion, and
//! the per-shard mapping caches are persisted to `<cache_path>.shard<i>`
//! (the same files the fleet simulator and the PR 8 warm-restart path use),
//! so a drained server restarts warm.
//!
//! Determinism: given the same sequence of `submit`/`cancel`/`poll`/`drain`
//! calls (same arguments, same `now_sec` values), the engine's completions
//! and stats are bit-identical — searches are seeded per admission with the
//! same golden-ratio stride as the simulators.

use crate::batcher::{AdmissionBatcher, BatchPolicy};
use crate::cache::{quantize_signatures, CacheStats, MappingCache, SharedCache};
use crate::dispatch::{DispatchConfig, DispatchKind, MappingService};
use crate::fleet::{dominant_tenant, group_value};
use crate::router::ShardRouter;
use crate::scheduler::{LiveSession, SchedStep, SchedulerConfig, SessionScheduler};
use crate::sim::{dispatch_seed, group_problem};
use crate::trace::Arrival;
use magma_m3e::StoredSolution;
use magma_model::{Job, JobSignature, TenantMix};
use magma_platform::settings::{FleetPolicy, ServerKnobs};
use magma_platform::{AcceleratorPlatform, PlatformSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::path::PathBuf;

/// The full parameter set of a wall-clock engine, derived from the
/// `MAGMA_SERVER_*` + `MAGMA_FLEET_*` + `MAGMA_SERVE_*` knob families by
/// [`EngineConfig::from_knobs`].
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// One platform spec per shard.
    pub shard_settings: Vec<PlatformSpec>,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Admission deadline of a partial group, in wall-clock seconds.
    pub max_wait_sec: f64,
    /// Mapper cost per evaluated sample, in seconds (drives the backlog
    /// projection and the scheduler's urgency estimate).
    pub overhead_sec_per_sample: f64,
    /// Search budgets and cache geometry (per shard).
    pub dispatch: DispatchConfig,
    /// Entries in the fleet-wide shared cache tier; `0` disables the tier.
    pub shared_cache_capacity: usize,
    /// Per-tenant entry quota over the shared tier; `0` means unlimited.
    pub shared_tenant_quota: usize,
    /// Mapping-cache persistence base path: each shard loads/saves
    /// `<path>.shard<i>` (same layout as the fleet simulator).
    pub cache_path: Option<PathBuf>,
    /// Scheduler policy. Timeouts only preempt under
    /// [`FleetPolicy::Deadline`].
    pub policy: FleetPolicy,
    /// Live-session capacity per shard.
    pub max_live: usize,
    /// Fixed slice under [`FleetPolicy::Uniform`], in samples.
    pub base_slice: usize,
    /// Slice floor under [`FleetPolicy::Deadline`], in samples.
    pub min_slice: usize,
    /// Backpressure knob: reject submissions once the projected mapper
    /// backlog exceeds this many seconds.
    pub max_backlog_sec: f64,
    /// Bounded admission queue: at most `pending_per_shard × shards` groups
    /// worth of jobs may wait in the batcher.
    pub pending_per_shard: usize,
    /// Session timeout: an admitted group's deadline is its admission time
    /// plus this, in wall-clock seconds.
    pub timeout_sec: f64,
    /// Search seed (per-admission seeds derive from it).
    pub seed: u64,
}

impl EngineConfig {
    /// Builds a config from the `MAGMA_SERVER_*` knob family (which embeds
    /// the fleet and serving knobs). The batcher's admission deadline is
    /// expressed in wall-clock terms by pricing one batch window at the
    /// server's target rate: `max_wait_x × group_target / rate` seconds.
    pub fn from_knobs(knobs: &ServerKnobs) -> Self {
        let fleet = &knobs.fleet;
        let serve = &fleet.serve;
        EngineConfig {
            shard_settings: (0..fleet.shards)
                .map(|s| fleet.shard_settings[s % fleet.shard_settings.len()].into())
                .collect(),
            group_target: serve.group_target,
            max_wait_sec: serve.max_wait_x * serve.group_target as f64 / knobs.rate,
            overhead_sec_per_sample: serve.overhead_us_per_sample * 1e-6,
            dispatch: DispatchConfig::new(
                serve.cold_budget,
                serve.refine_budget,
                serve.quant_step,
                serve.cache_capacity,
            )
            .with_cache_epsilon(serve.cache_epsilon),
            shared_cache_capacity: fleet.shared_cache_capacity,
            shared_tenant_quota: fleet.shared_tenant_quota,
            cache_path: serve.cache_path.as_ref().map(PathBuf::from),
            policy: fleet.policy,
            max_live: fleet.max_live,
            base_slice: serve.search_slice,
            min_slice: fleet.min_slice,
            max_backlog_sec: knobs.max_backlog_sec,
            pending_per_shard: knobs.pending_per_shard,
            timeout_sec: knobs.timeout_sec,
            seed: serve.seed,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shard_settings.len()
    }
}

/// The verdict of one [`ServeEngine::submit`].
#[derive(Debug, Clone, PartialEq)]
pub enum Admission {
    /// The jobs joined the admission queue.
    Accepted,
    /// Backpressure: the projected backlog exceeds the knob (or the
    /// admission queue is full). Retry after the hinted delay.
    Busy {
        /// Seconds after which the backlog is projected back under the
        /// knob — a hint, not a promise.
        retry_after_sec: f64,
    },
    /// The engine is draining; no new work is admitted.
    Draining,
    /// The request itself was malformed (empty job list, unknown tenant,
    /// reused token).
    Invalid {
        /// What was wrong with it.
        reason: String,
    },
}

/// One finished job, tagged with the submission token the transport layer
/// routes completions by.
#[derive(Debug, Clone, PartialEq)]
pub struct JobCompletion {
    /// The caller's token from [`ServeEngine::submit`].
    pub token: u64,
    /// The job's index within its submission (0-based).
    pub job_index: usize,
    /// The tenant the job was submitted under.
    pub tenant: usize,
    /// The shard that served it.
    pub shard: usize,
    /// How the dispatch was served (cold search vs cache hit).
    pub kind: DispatchKind,
    /// True when the session was early-finished past its timeout deadline.
    pub timed_out: bool,
    /// True when the token was cancelled before this job completed — the
    /// transport suppresses the completion (the cancel was already acked).
    pub cancelled: bool,
    /// Wall-clock completion time (execution end on the shard's virtual
    /// accelerator timeline), in the caller's `now_sec` domain.
    pub completed_sec: f64,
}

/// A point-in-time counter snapshot of the engine — the `Stats` RPC payload.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Submissions accepted into the admission queue.
    pub accepted: u64,
    /// Submissions rejected with [`Admission::Busy`].
    pub rejected: u64,
    /// Cancel calls acknowledged (token known and still open).
    pub cancelled: u64,
    /// Jobs completed and reported (cancelled jobs not included).
    pub completed_jobs: u64,
    /// Completed jobs whose session was early-finished past its timeout.
    pub timed_out_jobs: u64,
    /// Jobs of cancelled tokens (reported-but-suppressed and dropped alike).
    pub cancelled_jobs: u64,
    /// Jobs currently waiting in the admission queue.
    pub queued_jobs: u64,
    /// Live search sessions across shards.
    pub live_sessions: u64,
    /// Sessions admitted to shard schedulers.
    pub admitted_sessions: u64,
    /// Sessions that ran to their full budget.
    pub completed_sessions: u64,
    /// Sessions early-finished by the scheduler (timeout preemptions).
    pub preempted_sessions: u64,
    /// Shard-cache hits (exact + near).
    pub cache_hits: u64,
    /// Near-key shard-cache hits (subset of `cache_hits`).
    pub cache_near_hits: u64,
    /// Shard-cache misses (cold searches).
    pub cache_misses: u64,
}

/// The token tag of one queued/live job, aligned with its group's arrival
/// order.
#[derive(Debug, Clone, Copy)]
struct JobTag {
    token: u64,
    job_index: usize,
}

/// Where a live session's jobs came from.
struct SessionTags {
    shard: usize,
    tags: Vec<JobTag>,
}

/// The wall-clock serving engine. See the module docs for the lifecycle.
pub struct ServeEngine {
    config: EngineConfig,
    mix: TenantMix,
    platforms: Vec<AcceleratorPlatform>,
    batcher: AdmissionBatcher,
    /// Token tags parallel to the batcher's FIFO queue: `take_group` removes
    /// the oldest `n` arrivals, so the first `n` tags here are theirs.
    pending_tags: VecDeque<JobTag>,
    router: ShardRouter,
    services: Vec<MappingService>,
    shared: Option<SharedCache>,
    scheds: Vec<SessionScheduler>,
    /// Per-shard virtual accelerator timeline (wall-clock seconds).
    accel_free: Vec<f64>,
    session_tags: HashMap<u64, SessionTags>,
    /// Remaining job count per open token.
    open_tokens: HashMap<u64, usize>,
    cancelled: HashSet<u64>,
    /// Completions produced since the last `poll`/`drain` returned.
    out: Vec<JobCompletion>,
    /// Monotonic clamp over caller-supplied time.
    last_now: f64,
    admitted: u64,
    draining: bool,
    accepted: u64,
    rejected: u64,
    cancel_acks: u64,
    completed_jobs: u64,
    timed_out_jobs: u64,
    cancelled_jobs: u64,
}

impl ServeEngine {
    /// Creates an engine and warm-restarts each shard's mapping cache from
    /// `<cache_path>.shard<i>` when the file exists (an unreadable file is
    /// reported and that shard comes up cold — same contract as the fleet).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (no shards, zero group target, a
    /// non-positive timeout or backlog knob).
    pub fn new(config: EngineConfig, mix: TenantMix) -> Self {
        let shards = config.shards();
        assert!(shards > 0, "an engine needs at least one shard");
        assert!(config.group_target > 0, "the group target must be non-zero");
        assert!(config.timeout_sec > 0.0, "the session timeout must be positive");
        assert!(config.max_backlog_sec > 0.0, "the backlog knob must be positive");
        assert!(config.pending_per_shard > 0, "the admission queue needs capacity");
        let platforms: Vec<_> = config.shard_settings.iter().map(|s| s.build()).collect();
        let mut services: Vec<_> =
            (0..shards).map(|_| MappingService::new(config.dispatch)).collect();
        if let Some(base) = &config.cache_path {
            for (i, service) in services.iter_mut().enumerate() {
                let file = shard_cache_file(base, i);
                if file.exists() {
                    match MappingCache::load(&file) {
                        Ok(cache) => service.install_cache(cache),
                        Err(e) => {
                            eprintln!("warning: ignoring mapping cache at {}: {e}", file.display())
                        }
                    }
                }
            }
        }
        let shared = (config.shared_cache_capacity > 0)
            .then(|| SharedCache::new(config.shared_cache_capacity, config.shared_tenant_quota));
        let sched_config = SchedulerConfig {
            policy: config.policy,
            max_live: config.max_live,
            base_slice: config.base_slice,
            min_slice: config.min_slice,
            // Admission control replaces value preemption on the server
            // path: overload is shed at the socket (`Busy`), not by
            // evicting work that was already accepted.
            preempt_margin: 0.0,
            overhead_sec_per_sample: config.overhead_sec_per_sample,
        };
        let batcher = AdmissionBatcher::new(BatchPolicy::new(
            config.group_target,
            config.max_wait_sec.max(0.0),
        ));
        ServeEngine {
            mix,
            platforms,
            batcher,
            pending_tags: VecDeque::new(),
            router: ShardRouter::new(shards),
            services,
            shared,
            scheds: (0..shards).map(|_| SessionScheduler::new(sched_config)).collect(),
            accel_free: vec![0.0; shards],
            session_tags: HashMap::new(),
            open_tokens: HashMap::new(),
            cancelled: HashSet::new(),
            out: Vec::new(),
            last_now: 0.0,
            admitted: 0,
            draining: false,
            accepted: 0,
            rejected: 0,
            cancel_acks: 0,
            completed_jobs: 0,
            timed_out_jobs: 0,
            cancelled_jobs: 0,
            config,
        }
    }

    /// The config in force.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Whether [`ServeEngine::drain`] has been called.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// The projected mapper backlog at `now_sec`, in seconds: the least
    /// loaded shard's router load measure (queued mapper work plus how far
    /// its accelerator timeline runs past now) plus the search cost of
    /// everything still waiting in the admission queue, spread over the
    /// shards. This is what [`ServeEngine::submit`] compares against
    /// `max_backlog_sec`.
    pub fn projected_backlog_sec(&self, now_sec: f64) -> f64 {
        let now = now_sec.max(self.last_now);
        let min_load =
            (0..self.scheds.len()).map(|s| self.shard_load(s, now)).fold(f64::INFINITY, f64::min);
        let queued_groups = self.batcher.pending() as f64 / self.config.group_target as f64;
        let queued_cost = queued_groups
            * self.config.dispatch.cold_budget as f64
            * self.config.overhead_sec_per_sample
            / self.scheds.len() as f64;
        min_load + queued_cost
    }

    /// One shard's congestion in seconds — the router's load measure.
    fn shard_load(&self, shard: usize, now_sec: f64) -> f64 {
        self.scheds[shard].backlog() * self.config.overhead_sec_per_sample
            + (self.accel_free[shard] - now_sec).max(0.0)
    }

    /// Submits one group of jobs under `token` (the transport's correlation
    /// id; must be unique per open submission) for `tenant`. The jobs join
    /// the admission queue and will be batched, routed and searched by
    /// subsequent [`ServeEngine::poll`] calls; their completions carry the
    /// token back.
    pub fn submit(&mut self, now_sec: f64, token: u64, tenant: usize, jobs: Vec<Job>) -> Admission {
        let now = self.clamp_now(now_sec);
        if self.draining {
            return Admission::Draining;
        }
        if jobs.is_empty() {
            return Admission::Invalid { reason: "a submission needs at least one job".into() };
        }
        if tenant >= self.mix.tenants().len() {
            return Admission::Invalid {
                reason: format!(
                    "tenant {tenant} out of range (the mix has {} tenants)",
                    self.mix.tenants().len()
                ),
            };
        }
        if self.open_tokens.contains_key(&token) {
            return Admission::Invalid { reason: format!("token {token} is already open") };
        }
        let queue_cap =
            self.config.pending_per_shard * self.scheds.len() * self.config.group_target;
        if self.batcher.pending() + jobs.len() > queue_cap {
            self.rejected += 1;
            return Admission::Busy { retry_after_sec: self.retry_after(now) };
        }
        let projected = self.projected_backlog_sec(now);
        if projected > self.config.max_backlog_sec {
            self.rejected += 1;
            return Admission::Busy {
                retry_after_sec: (projected - self.config.max_backlog_sec).max(1e-3),
            };
        }
        let n = jobs.len();
        for (job_index, job) in jobs.into_iter().enumerate() {
            self.batcher.push(Arrival { time_sec: now, tenant, job });
            self.pending_tags.push_back(JobTag { token, job_index });
        }
        self.open_tokens.insert(token, n);
        self.accepted += 1;
        Admission::Accepted
    }

    /// The retry-after hint of a queue-full rejection: how long the backlog
    /// is projected to need to fall back under the knob, floored at 1 ms.
    fn retry_after(&self, now_sec: f64) -> f64 {
        (self.projected_backlog_sec(now_sec) - self.config.max_backlog_sec).max(1e-3)
    }

    /// Cancels an open token. Returns `false` when the token is unknown,
    /// already finished or already cancelled. Jobs of the token still
    /// produce [`JobCompletion`]s (flagged `cancelled`) so the transport
    /// can close its books; a live session whose jobs are *all* cancelled
    /// is removed immediately — finished into the cache when it has
    /// evaluated samples (the mapping is still worth keeping), dropped
    /// outright when it has not (an empty history cannot be finished).
    pub fn cancel(&mut self, now_sec: f64, token: u64) -> bool {
        let now = self.clamp_now(now_sec);
        if !self.open_tokens.contains_key(&token) || !self.cancelled.insert(token) {
            return false;
        }
        self.cancel_acks += 1;
        // Early-finish every live session wholly made of cancelled tokens.
        let doomed: Vec<u64> = self
            .session_tags
            .iter()
            .filter(|(_, st)| st.tags.iter().all(|t| self.cancelled.contains(&t.token)))
            .map(|(&id, _)| id)
            .collect();
        for id in doomed {
            let shard = self.session_tags[&id].shard;
            let Some(session) = self.scheds[shard].remove_by_id(id) else { continue };
            if session.spent() > 0 {
                self.complete(session, shard, now, false);
            } else {
                // Nothing evaluated: no outcome to build, drop the session
                // and synthesize cancelled completions directly.
                let tags = self.session_tags.remove(&id).expect("tags tracked per session");
                let kind = session.plan.kind();
                for (k, a) in session.group.arrivals.iter().enumerate() {
                    let tag = tags.tags[k];
                    self.push_completion(JobCompletion {
                        token: tag.token,
                        job_index: tag.job_index,
                        tenant: a.tenant,
                        shard,
                        kind,
                        timed_out: false,
                        cancelled: true,
                        completed_sec: now,
                    });
                }
            }
        }
        true
    }

    /// Advances the engine at `now_sec`: cuts every ready group the shards
    /// have room for (routing, planning and opening its search), runs one
    /// scheduler step per shard with live sessions — this is where search
    /// compute actually burns CPU — and returns the completions produced
    /// since the last call.
    pub fn poll(&mut self, now_sec: f64) -> Vec<JobCompletion> {
        let now = self.clamp_now(now_sec);
        while self.batcher.earliest_ready().is_some_and(|r| r <= now)
            && self.scheds.iter().any(|s| s.has_room())
        {
            self.cut_group(now);
        }
        for shard in 0..self.scheds.len() {
            if self.scheds[shard].live() == 0 {
                continue;
            }
            match self.scheds[shard].step(now) {
                SchedStep::Idle => unreachable!("only shards with live sessions step"),
                SchedStep::Progress { .. } => {}
                SchedStep::Finished { session, spent: _, preempted } => {
                    self.complete(*session, shard, now, preempted);
                }
            }
        }
        std::mem::take(&mut self.out)
    }

    /// Stops admissions and runs everything to completion: every queued
    /// group is force-cut (the batcher's deadline path), every live session
    /// stepped until it finishes, and the shard caches persisted to
    /// `<cache_path>.shard<i>`. Returns the completions produced. After
    /// `drain` the engine is empty; further submissions return
    /// [`Admission::Draining`].
    pub fn drain(&mut self, now_sec: f64) -> Vec<JobCompletion> {
        let now = self.clamp_now(now_sec);
        self.draining = true;
        loop {
            // Cut whatever the shards have room for; force the deadline
            // path by cutting at the group's own ready time when it lies
            // beyond `now`.
            while let Some(ready) = self.batcher.earliest_ready() {
                if !self.scheds.iter().any(|s| s.has_room()) {
                    break;
                }
                self.cut_group(now.max(ready));
            }
            if self.scheds.iter().all(|s| s.live() == 0) {
                if self.batcher.pending() == 0 {
                    break;
                }
                // Room is guaranteed empty ⇒ the cut loop above will make
                // progress on the next iteration.
                continue;
            }
            for shard in 0..self.scheds.len() {
                if self.scheds[shard].live() == 0 {
                    continue;
                }
                match self.scheds[shard].step(now) {
                    SchedStep::Idle => unreachable!("only shards with live sessions step"),
                    SchedStep::Progress { .. } => {}
                    SchedStep::Finished { session, spent: _, preempted } => {
                        self.complete(*session, shard, now, preempted);
                    }
                }
            }
        }
        self.persist_caches();
        std::mem::take(&mut self.out)
    }

    /// A counter snapshot (the `Stats` RPC payload).
    pub fn stats(&self) -> EngineStats {
        let mut cache = CacheStats::default();
        for service in &self.services {
            let s = service.cache_stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.near_hits += s.near_hits;
        }
        let sched =
            self.scheds.iter().map(|s| s.stats()).fold((0u64, 0u64, 0u64), |(a, c, p), st| {
                (a + st.admitted, c + st.completed, p + st.preemptions())
            });
        EngineStats {
            accepted: self.accepted,
            rejected: self.rejected,
            cancelled: self.cancel_acks,
            completed_jobs: self.completed_jobs,
            timed_out_jobs: self.timed_out_jobs,
            cancelled_jobs: self.cancelled_jobs,
            queued_jobs: self.batcher.pending() as u64,
            live_sessions: self.scheds.iter().map(|s| s.live() as u64).sum(),
            admitted_sessions: sched.0,
            completed_sessions: sched.1,
            preempted_sessions: sched.2,
            cache_hits: cache.hits,
            cache_near_hits: cache.near_hits,
            cache_misses: cache.misses,
        }
    }

    /// Clamps caller time onto the engine's monotonic clock.
    fn clamp_now(&mut self, now_sec: f64) -> f64 {
        assert!(now_sec.is_finite(), "time must be finite");
        self.last_now = self.last_now.max(now_sec);
        self.last_now
    }

    /// Cuts the next group at `t`, routes it and opens its search session.
    /// Callers verified readiness and room.
    fn cut_group(&mut self, t: f64) {
        let group = self.batcher.take_group(t).expect("readiness verified");
        let tags: Vec<JobTag> = self.pending_tags.drain(..group.arrivals.len()).collect();
        let sigs: Vec<JobSignature> = group.arrivals.iter().map(|a| a.job.signature()).collect();
        let key = quantize_signatures(&sigs, self.config.dispatch.quant_step);
        let admissible: Vec<bool> = self.scheds.iter().map(|s| s.has_room()).collect();
        let loads: Vec<f64> = (0..self.scheds.len()).map(|s| self.shard_load(s, t)).collect();
        let shard = if self.shared.as_ref().is_some_and(|tier| tier.contains(&key)) {
            self.router.place_balanced(&loads, &admissible)
        } else {
            self.router.place(&key, &loads, &admissible)
        };
        let problem = group_problem(&self.platforms[shard], &group);
        let mut rng =
            StdRng::seed_from_u64(dispatch_seed(self.config.seed, self.admitted as usize));
        let plan = self.services[shard].plan_group_shared(&problem, &mut rng, self.shared.as_mut());
        let budget = plan.budget();
        let state = self.services[shard].open_search(&plan, &problem, &mut rng);
        // The server deadline is the session timeout, not an SLA bound: the
        // earliest arrival's admission time plus the knob.
        let deadline_sec = group
            .arrivals
            .iter()
            .map(|a| a.time_sec + self.config.timeout_sec)
            .fold(f64::INFINITY, f64::min);
        let value = group_value(group.arrivals.iter(), &self.mix);
        let session = LiveSession {
            id: self.admitted,
            group,
            plan,
            problem,
            rng,
            state,
            budget,
            deadline_sec,
            value,
        };
        self.session_tags.insert(self.admitted, SessionTags { shard, tags });
        self.scheds[shard].admit(session, t);
        self.admitted += 1;
    }

    /// Completes a departed session: stores the mapping, publishes it to
    /// the shared tier, schedules execution on the shard's accelerator
    /// timeline and emits one tagged completion per job.
    fn complete(&mut self, session: LiveSession, shard: usize, now_sec: f64, timed_out: bool) {
        let tags = self.session_tags.remove(&session.id).expect("tags tracked per session");
        debug_assert_eq!(tags.shard, shard, "a session completes on its own shard");
        let LiveSession { group, plan, problem, state, .. } = session;
        let key = plan.key().clone();
        let outcome = self.services[shard].complete_group(&problem, plan, state.finish());
        if let Some(tier) = self.shared.as_mut() {
            tier.publish(
                key,
                StoredSolution::new(outcome.mapping.clone(), Some(problem.signatures().to_vec())),
                dominant_tenant(&group.arrivals),
            );
        }
        let exec_start = now_sec.max(self.accel_free[shard]);
        self.accel_free[shard] = exec_start + outcome.schedule.makespan_sec();
        let mut end_by_job = vec![0.0f64; group.arrivals.len()];
        for seg in outcome.schedule.segments() {
            end_by_job[seg.job.0] = seg.end_sec;
        }
        for (k, a) in group.arrivals.iter().enumerate() {
            let tag = tags.tags[k];
            let cancelled = self.cancelled.contains(&tag.token);
            self.push_completion(JobCompletion {
                token: tag.token,
                job_index: tag.job_index,
                tenant: a.tenant,
                shard,
                kind: outcome.kind,
                timed_out: timed_out && !cancelled,
                cancelled,
                completed_sec: exec_start + end_by_job[k],
            });
        }
    }

    /// Books one completion: counters, open-token bookkeeping, out buffer.
    fn push_completion(&mut self, completion: JobCompletion) {
        if completion.cancelled {
            self.cancelled_jobs += 1;
        } else {
            self.completed_jobs += 1;
            if completion.timed_out {
                self.timed_out_jobs += 1;
            }
        }
        if let Some(remaining) = self.open_tokens.get_mut(&completion.token) {
            *remaining -= 1;
            if *remaining == 0 {
                self.open_tokens.remove(&completion.token);
            }
        }
        self.out.push(completion);
    }

    /// Persists each shard's mapping cache to `<cache_path>.shard<i>`.
    fn persist_caches(&self) {
        if let Some(base) = &self.config.cache_path {
            for (i, service) in self.services.iter().enumerate() {
                let file = shard_cache_file(base, i);
                if let Err(e) = service.cache().save(&file) {
                    eprintln!(
                        "warning: could not persist mapping cache to {}: {e}",
                        file.display()
                    );
                }
            }
        }
    }
}

/// The per-shard persistence file a base path expands to — the same layout
/// as the fleet simulator's.
pub fn shard_cache_file(base: &std::path::Path, shard: usize) -> PathBuf {
    PathBuf::from(format!("{}.shard{shard}", base.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::{JobId, LayerShape, TaskType};

    fn tiny_knobs() -> ServerKnobs {
        let mut knobs = ServerKnobs::smoke();
        knobs.fleet.serve.cold_budget = 40;
        knobs.fleet.serve.refine_budget = 4;
        knobs.fleet.serve.group_target = 4;
        knobs.fleet.serve.max_wait_x = 1.0;
        knobs.fleet.shards = 2;
        knobs.fleet.max_live = 2;
        knobs.rate = 100.0;
        knobs
    }

    fn job(i: usize) -> Job {
        Job::new(
            JobId(i),
            "m",
            0,
            LayerShape::FullyConnected { out_features: 64 + (i % 3) * 32, in_features: 64 },
            4,
            TaskType::Recommendation,
        )
    }

    fn mix(tenants: usize) -> TenantMix {
        TenantMix::synthetic(tenants, 0)
    }

    fn run_until_idle(engine: &mut ServeEngine, mut now: f64) -> Vec<JobCompletion> {
        let mut all = Vec::new();
        for _ in 0..10_000 {
            all.extend(engine.poll(now));
            now += 0.01;
            if engine.stats().live_sessions == 0 && engine.stats().queued_jobs == 0 {
                break;
            }
        }
        all.extend(engine.poll(now));
        all
    }

    #[test]
    fn every_submitted_job_completes_exactly_once() {
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&tiny_knobs()), mix(4));
        for t in 0..6 {
            let jobs = vec![job(t), job(t + 1)];
            assert_eq!(engine.submit(t as f64 * 0.001, t as u64, t % 4, jobs), Admission::Accepted);
        }
        let completions = run_until_idle(&mut engine, 0.01);
        assert_eq!(completions.len(), 12, "two jobs per token, six tokens");
        let mut seen = HashSet::new();
        for c in &completions {
            assert!(seen.insert((c.token, c.job_index)), "duplicate completion {c:?}");
            assert!(!c.cancelled);
        }
        let stats = engine.stats();
        assert_eq!(stats.accepted, 6);
        assert_eq!(stats.completed_jobs, 12);
        assert_eq!(stats.rejected, 0);
        assert_eq!(stats.queued_jobs, 0);
        assert_eq!(stats.live_sessions, 0);
        assert_eq!(stats.admitted_sessions, stats.completed_sessions + stats.preempted_sessions);
    }

    #[test]
    fn the_engine_is_deterministic() {
        let run = || {
            let mut engine = ServeEngine::new(EngineConfig::from_knobs(&tiny_knobs()), mix(4));
            for t in 0..8 {
                let _ = engine.submit(t as f64 * 0.002, t as u64, t % 4, vec![job(t)]);
            }
            let mut completions = run_until_idle(&mut engine, 0.02);
            completions.extend(engine.drain(1.0));
            (completions, engine.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn backpressure_rejects_with_a_retry_after_hint() {
        let mut knobs = tiny_knobs();
        knobs.max_backlog_sec = 1e-3;
        knobs.pending_per_shard = 1;
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&knobs), mix(4));
        // Flood without polling: the bounded queue (1 group × 2 shards ×
        // 4 jobs) and the backlog knob must start rejecting.
        let mut accepted = 0;
        let mut rejected = 0;
        for t in 0..32 {
            match engine.submit(0.0, t, 0, vec![job(t as usize)]) {
                Admission::Accepted => accepted += 1,
                Admission::Busy { retry_after_sec } => {
                    assert!(retry_after_sec > 0.0, "the hint must be positive");
                    rejected += 1;
                }
                other => panic!("unexpected admission {other:?}"),
            }
        }
        assert!(accepted > 0 && rejected > 0, "accepted {accepted}, rejected {rejected}");
        assert_eq!(engine.stats().rejected, rejected);
        // The engine still completes everything it accepted.
        let completions = engine.drain(0.1);
        assert_eq!(completions.len(), accepted as usize);
    }

    #[test]
    fn timeouts_preempt_and_flag_completions() {
        let mut knobs = tiny_knobs();
        knobs.timeout_sec = 1e-6;
        knobs.fleet.serve.cold_budget = 4_000;
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&knobs), mix(4));
        for t in 0..4 {
            assert_eq!(engine.submit(0.0, t, 0, vec![job(t as usize)]), Admission::Accepted);
        }
        // Poll well past the timeout: the first step runs the slice floor,
        // the next selection preempts the expired session.
        let completions = run_until_idle(&mut engine, 1.0);
        assert_eq!(completions.len(), 4);
        assert!(completions.iter().all(|c| c.timed_out), "every session expired: {completions:?}");
        let stats = engine.stats();
        assert_eq!(stats.timed_out_jobs, 4);
        assert!(stats.preempted_sessions > 0);
    }

    #[test]
    fn cancel_flags_completions_and_early_finishes_cancelled_sessions() {
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&tiny_knobs()), mix(4));
        assert!(!engine.cancel(0.0, 99), "unknown tokens are not cancellable");
        for t in 0..4 {
            assert_eq!(engine.submit(0.0, t, 0, vec![job(t as usize)]), Admission::Accepted);
        }
        // One poll cuts the 4-job group and steps it once (spent > 0).
        let early = engine.poll(0.001);
        assert!(early.is_empty(), "one slice does not finish a cold search");
        // All four tokens share the one live session: cancelling them all
        // early-finishes it.
        for t in 0..4 {
            assert!(engine.cancel(0.002, t));
            assert!(!engine.cancel(0.002, t), "double cancel is not acked");
        }
        let completions = engine.poll(0.003);
        assert_eq!(completions.len(), 4);
        assert!(completions.iter().all(|c| c.cancelled));
        let stats = engine.stats();
        assert_eq!(stats.cancelled, 4);
        assert_eq!(stats.cancelled_jobs, 4);
        assert_eq!(stats.completed_jobs, 0);
        assert_eq!(stats.live_sessions, 0);
    }

    #[test]
    fn drain_completes_everything_and_persists_shard_caches() {
        let base = std::env::temp_dir().join(format!("magma_engine_cache_{}", std::process::id()));
        let mut knobs = tiny_knobs();
        knobs.fleet.serve.cache_path = Some(base.display().to_string());
        for i in 0..2 {
            let _ = std::fs::remove_file(shard_cache_file(&base, i));
        }
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&knobs), mix(4));
        for t in 0..10 {
            assert_eq!(
                engine.submit(t as f64 * 0.001, t, (t % 4) as usize, vec![job(t as usize)]),
                Admission::Accepted
            );
        }
        // Drain with work still queued and live: everything must complete.
        let completions = engine.drain(0.02);
        assert_eq!(completions.len(), 10);
        assert_eq!(engine.stats().queued_jobs, 0);
        assert_eq!(engine.stats().live_sessions, 0);
        assert!(engine.draining());
        assert_eq!(engine.submit(0.03, 99, 0, vec![job(0)]), Admission::Draining);
        for i in 0..2 {
            let file = shard_cache_file(&base, i);
            assert!(file.exists(), "every shard persists its cache on drain");
            let _ = std::fs::remove_file(file);
        }
    }

    #[test]
    fn invalid_submissions_are_rejected_with_reasons() {
        let mut engine = ServeEngine::new(EngineConfig::from_knobs(&tiny_knobs()), mix(2));
        match engine.submit(0.0, 0, 0, vec![]) {
            Admission::Invalid { reason } => assert!(reason.contains("at least one job")),
            other => panic!("unexpected admission {other:?}"),
        }
        match engine.submit(0.0, 0, 7, vec![job(0)]) {
            Admission::Invalid { reason } => assert!(reason.contains("tenant")),
            other => panic!("unexpected admission {other:?}"),
        }
        assert_eq!(engine.submit(0.0, 0, 0, vec![job(0)]), Admission::Accepted);
        match engine.submit(0.0, 0, 0, vec![job(1)]) {
            Admission::Invalid { reason } => assert!(reason.contains("already open")),
            other => panic!("unexpected admission {other:?}"),
        }
    }

    #[test]
    fn stats_round_trip_through_json() {
        let engine = ServeEngine::new(EngineConfig::from_knobs(&tiny_knobs()), mix(2));
        let stats = engine.stats();
        let json = serde_json::to_string(&stats).unwrap();
        let back: EngineStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
