//! The fleet router: places admitted dispatch groups on platform shards.
//!
//! A fleet is N independent platform shards, each with its own mapper,
//! accelerator and mapping cache. The router's job is to pick the shard a
//! freshly cut group searches and executes on, balancing two forces:
//!
//! * **Signature affinity** — a group whose quantized signature key was seen
//!   before should return to the shard that served it, because that shard's
//!   cache holds the adapted solution (a hit elsewhere is a guaranteed cold
//!   search). Affinity is sticky: the first placement of a key pins it.
//! * **Load** — unseen keys go to the least-loaded *admissible* shard (the
//!   caller restricts admissibility to shards with scheduler room), with the
//!   lowest index winning ties, so placement is a pure function of the
//!   router state and the load snapshot.
//!
//! The affinity map is only ever written on a placement decision and read
//! back deterministically, so fleet runs are bit-identical across repeats
//! and `MAGMA_THREADS` settings — the property
//! `tests/integration_fleet.rs` locks down (with proptest invariants over
//! arbitrary placement sequences).

use crate::cache::SignatureKey;
use std::collections::HashMap;

/// Placement counters of one fleet run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Groups placed in total.
    pub placed: u64,
    /// Placements that followed a sticky affinity entry.
    pub affinity_hits: u64,
    /// Placements routed purely by load because the fleet's shared cache
    /// tier already held the group's exact key (see
    /// [`ShardRouter::place_balanced`]).
    pub shared_balanced: u64,
}

/// The shard placement engine. See the module docs for the policy.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    affinity: HashMap<SignatureKey, usize>,
    per_shard: Vec<u64>,
    stats: RouterStats,
}

impl ShardRouter {
    /// Creates a router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        ShardRouter {
            shards,
            affinity: HashMap::new(),
            per_shard: vec![0; shards],
            stats: RouterStats::default(),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Placement counters so far.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Groups placed on each shard so far.
    pub fn per_shard(&self) -> &[u64] {
        &self.per_shard
    }

    /// Places a group with signature `key` given the current per-shard
    /// `load` (any monotone congestion measure; the fleet uses live session
    /// counts plus mapper backlog) and an admissibility mask (shards with
    /// scheduler room). Returns the chosen shard index.
    ///
    /// Affinity wins when the pinned shard is admissible; otherwise the
    /// least-loaded admissible shard, lowest index on ties. The first
    /// placement of a key (re-)pins its affinity, so a key displaced by a
    /// full shard sticks to its new home afterwards.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths disagree with the shard count or no shard
    /// is admissible (the fleet loop only cuts a group once one is).
    pub fn place(&mut self, key: &SignatureKey, load: &[f64], admissible: &[bool]) -> usize {
        assert_eq!(load.len(), self.shards, "one load entry per shard");
        assert_eq!(admissible.len(), self.shards, "one admissibility flag per shard");
        let chosen = match self.affinity.get(key) {
            Some(&s) if admissible[s] => {
                self.stats.affinity_hits += 1;
                s
            }
            _ => {
                let s = least_loaded(load, admissible).expect("at least one admissible shard");
                self.affinity.insert(key.clone(), s);
                s
            }
        };
        self.stats.placed += 1;
        self.per_shard[chosen] += 1;
        chosen
    }

    /// Places a group purely by load, ignoring (and not re-pinning) any
    /// affinity entry. The fleet loop calls this when its shared cache tier
    /// holds the group's exact key: every shard then serves the group warm
    /// through the tier fallthrough, so cache affinity buys nothing and the
    /// least-loaded admissible shard (lowest index on ties) is strictly
    /// better. Counted as [`RouterStats::shared_balanced`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ShardRouter::place`].
    pub fn place_balanced(&mut self, load: &[f64], admissible: &[bool]) -> usize {
        assert_eq!(load.len(), self.shards, "one load entry per shard");
        assert_eq!(admissible.len(), self.shards, "one admissibility flag per shard");
        let chosen = least_loaded(load, admissible).expect("at least one admissible shard");
        self.stats.shared_balanced += 1;
        self.stats.placed += 1;
        self.per_shard[chosen] += 1;
        chosen
    }
}

/// The admissible shard with the smallest load; lowest index wins ties
/// (strict `<` while scanning left to right).
fn least_loaded(load: &[f64], admissible: &[bool]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, (&l, &ok)) in load.iter().zip(admissible).enumerate() {
        if !ok {
            continue;
        }
        match best {
            Some((_, bl)) if l >= bl => {}
            _ => best = Some((i, l)),
        }
    }
    best.map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::quantize_signatures;
    use magma_model::{Job, JobId, LayerShape, TaskType};

    fn key(tag: usize) -> SignatureKey {
        let job = Job::new(
            JobId(0),
            "m",
            0,
            LayerShape::FullyConnected { out_features: 64 << tag, in_features: 64 },
            4,
            TaskType::Recommendation,
        );
        quantize_signatures(&[job.signature()], 1.0)
    }

    #[test]
    fn unseen_keys_go_least_loaded_with_lowest_index_ties() {
        let mut r = ShardRouter::new(3);
        let all = [true, true, true];
        assert_eq!(r.place(&key(0), &[2.0, 1.0, 1.0], &all), 1, "tie broken low");
        assert_eq!(r.place(&key(1), &[0.0, 5.0, 0.0], &all), 0);
        assert_eq!(r.stats().placed, 2);
        assert_eq!(r.stats().affinity_hits, 0);
    }

    #[test]
    fn repeated_keys_stick_to_their_first_shard() {
        let mut r = ShardRouter::new(4);
        let all = [true; 4];
        let first = r.place(&key(7), &[3.0, 0.0, 0.0, 0.0], &all);
        assert_eq!(first, 1);
        // Even when another shard is now emptier, affinity wins.
        assert_eq!(r.place(&key(7), &[0.0, 9.0, 0.0, 0.0], &all), 1);
        assert_eq!(r.stats().affinity_hits, 1);
    }

    #[test]
    fn inadmissible_affinity_shard_re_pins_the_key() {
        let mut r = ShardRouter::new(2);
        assert_eq!(r.place(&key(3), &[0.0, 1.0], &[true, true]), 0);
        // Shard 0 is full: the key moves to shard 1 and re-pins there.
        assert_eq!(r.place(&key(3), &[0.0, 1.0], &[false, true]), 1);
        assert_eq!(r.place(&key(3), &[0.0, 9.0], &[true, true]), 1, "re-pinned");
    }

    #[test]
    fn shared_keys_balance_by_load_without_touching_affinity() {
        let mut r = ShardRouter::new(3);
        let all = [true, true, true];
        // The key pins to shard 0 on first sight ...
        assert_eq!(r.place(&key(2), &[0.0, 1.0, 1.0], &all), 0);
        // ... but while the shared tier holds it, load wins over affinity.
        assert_eq!(r.place_balanced(&[5.0, 0.5, 1.0], &all), 1);
        assert_eq!(r.stats().shared_balanced, 1);
        // The balanced placement did not re-pin: affinity still says 0.
        assert_eq!(r.place(&key(2), &[9.0, 0.0, 0.0], &all), 0);
        assert_eq!(r.stats().affinity_hits, 1);
        assert_eq!(r.stats().placed, 3);
    }

    #[test]
    #[should_panic(expected = "at least one admissible shard")]
    fn no_admissible_shard_panics() {
        let mut r = ShardRouter::new(2);
        r.place(&key(0), &[0.0, 0.0], &[false, false]);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardRouter::new(0);
    }
}
