//! Self-describing scenario descriptors embedded in every `BENCH_*.json`
//! serving report.
//!
//! A [`ScenarioDescriptor`] records *what* a report measured: the scenario's
//! source (`builtin` for the hardcoded ladders, `registry` for a
//! `magma-registry` file), its name, the resolved parameter tree, and a
//! content hash over that tree so two reports can be compared for "same
//! scenario?" without diffing the whole parameter blob. Report `validate()`
//! self-checks recompute the hash, so a hand-edited report that changes the
//! parameters without re-hashing fails validation.

use crate::trace::Scenario;
use magma_model::TenantMix;
use magma_platform::PlatformSpec;
use serde::{Deserialize, Serialize, Value};

/// The descriptor sources a report may carry.
pub const DESCRIPTOR_SOURCES: [&str; 2] = ["builtin", "registry"];

/// FNV-1a 64-bit hash — tiny, stable, dependency-free; plenty for
/// content-addressing scenario parameter trees (this is an integrity check
/// against accidental drift, not a cryptographic commitment).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// JSON-round-trips a value so its in-memory form matches what a reader of
/// the serialized report reconstructs (see [`ScenarioDescriptor::new`]).
fn canonicalize(v: Value) -> Value {
    serde_json::to_string(&v)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok())
        .unwrap_or(Value::Null)
}

/// The resolved description of the scenario a serving report measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioDescriptor {
    /// Where the scenario came from: `"builtin"` (hardcoded ladder) or
    /// `"registry"` (a `magma-registry` scenario file).
    pub source: String,
    /// The scenario's name (ladder name for builtins, registry name
    /// otherwise).
    pub name: String,
    /// FNV-1a 64-bit hash (hex, `fnv1a64:` prefixed) of the compact JSON
    /// serialization of `params`.
    pub content_hash: String,
    /// The resolved parameter tree: for registry scenarios the full
    /// platform/mix/traffic definitions; for builtins the knob values that
    /// shaped the run.
    pub params: Value,
}

impl ScenarioDescriptor {
    /// Builds a descriptor, computing the content hash of `params`.
    ///
    /// `params` is canonicalized through a JSON round-trip first: the
    /// vendored serializer prints whole floats without a decimal point
    /// (`3.0` → `3`), which reparses as an integer — canonicalizing up
    /// front makes an in-memory descriptor bit-equal to its reloaded form,
    /// so report round-trip equality (and the determinism suite's
    /// bit-identical-JSON assertions) hold.
    pub fn new(source: &str, name: &str, params: Value) -> Self {
        let params = canonicalize(params);
        let content_hash = Self::hash_of(&params);
        ScenarioDescriptor {
            source: source.to_string(),
            name: name.to_string(),
            content_hash,
            params,
        }
    }

    /// The canonical content hash of a parameter tree: FNV-1a 64 over its
    /// compact JSON serialization.
    pub fn hash_of(params: &Value) -> String {
        let compact = serde_json::to_string(params).unwrap_or_default();
        format!("fnv1a64:{:016x}", fnv1a64(compact.as_bytes()))
    }

    /// Self-check: known source, non-empty name, and a content hash that
    /// matches a recomputation over `params`.
    pub fn validate(&self) -> Result<(), String> {
        if !DESCRIPTOR_SOURCES.contains(&self.source.as_str()) {
            return Err(format!(
                "scenario descriptor source {:?} not in {:?}",
                self.source, DESCRIPTOR_SOURCES
            ));
        }
        if self.name.trim().is_empty() {
            return Err("scenario descriptor name is empty".into());
        }
        let expect = Self::hash_of(&self.params);
        if self.content_hash != expect {
            return Err(format!(
                "scenario descriptor content_hash {:?} does not match params (expected {expect:?})",
                self.content_hash
            ));
        }
        Ok(())
    }
}

/// A fully resolved, data-driven scenario ready to run: everything the
/// hardcoded ladders derive from their names, as one value. Built by the
/// scenario registry (`magma-registry`) from a scenario file; consumed by
/// [`crate::report::run_custom_scenario`],
/// [`crate::fleet::run_fleet_custom`] and
/// [`crate::sweep::run_cache_sweep_custom`].
#[derive(Debug, Clone, PartialEq)]
pub struct CustomScenario {
    /// The scenario's registry name (report scenario label).
    pub name: String,
    /// The arrival process.
    pub scenario: Scenario,
    /// The tenant mix driving the trace.
    pub mix: TenantMix,
    /// The platform to serve on (every fleet shard gets a copy).
    pub platform: PlatformSpec,
    /// Trace-length override; `None` inherits the knob default.
    pub requests: Option<usize>,
    /// Offered-load override; `None` inherits the knob default.
    pub offered_load: Option<f64>,
    /// Seed override; `None` inherits the knob default.
    pub seed: Option<u64>,
    /// Near-hit epsilon override (`MAGMA_SERVE_CACHE_EPSILON` otherwise).
    pub cache_epsilon: Option<f64>,
    /// Refine-budget override (`MAGMA_SERVE_REFINE_BUDGET` otherwise).
    pub refine_budget: Option<usize>,
    /// Quantization-step override (`MAGMA_SERVE_QUANT` otherwise).
    pub quant_step: Option<f64>,
    /// SLA-multiplier override (`MAGMA_SERVE_SLA_X` otherwise).
    pub sla_x: Option<f64>,
    /// The self-describing descriptor embedded in any report this scenario
    /// produces.
    pub descriptor: ScenarioDescriptor,
}

impl CustomScenario {
    /// The serving knobs with this scenario's pinned serving configuration
    /// applied: each `Some` override replaces the corresponding knob, every
    /// `None` inherits — the single place scenario-pinned cache/SLA knobs
    /// meet the ambient `MAGMA_SERVE_*` environment.
    pub fn apply_serving(
        &self,
        knobs: &magma_platform::settings::ServeKnobs,
    ) -> magma_platform::settings::ServeKnobs {
        let mut knobs = knobs.clone();
        if let Some(eps) = self.cache_epsilon {
            knobs.cache_epsilon = eps;
        }
        if let Some(refine) = self.refine_budget {
            knobs.refine_budget = refine;
        }
        if let Some(quant) = self.quant_step {
            knobs.quant_step = quant;
        }
        if let Some(sla_x) = self.sla_x {
            knobs.sla_x = sla_x;
        }
        knobs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Standard FNV-1a 64 vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn descriptor_hash_is_stable_and_validated() {
        let params = Value::Map(vec![
            ("requests".into(), Value::U64(96)),
            ("scenario".into(), Value::Str("poisson_mix".into())),
        ]);
        let d = ScenarioDescriptor::new("builtin", "standard_ladder", params.clone());
        assert!(d.validate().is_ok());
        assert_eq!(d.content_hash, ScenarioDescriptor::hash_of(&params));
        assert!(d.content_hash.starts_with("fnv1a64:"));

        let mut tampered = d.clone();
        tampered.params = Value::Map(vec![("requests".into(), Value::U64(97))]);
        assert!(tampered.validate().is_err());

        let mut bad_source = d.clone();
        bad_source.source = "handwritten".into();
        assert!(bad_source.validate().is_err());

        let mut unnamed = d;
        unnamed.name = "  ".into();
        assert!(unnamed.validate().is_err());
    }

    #[test]
    fn descriptor_round_trips_through_json() {
        let d = ScenarioDescriptor::new(
            "registry",
            "edge-duo-flash-crowd",
            Value::Map(vec![("load".into(), Value::F64(3.0))]),
        );
        let json = serde_json::to_string(&d).unwrap();
        let back: ScenarioDescriptor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
        assert!(back.validate().is_ok());
    }
}
