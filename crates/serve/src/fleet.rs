//! Fleet-scale serving: N platform shards behind a signature-affine router,
//! each multiplexing many live searches through a concurrent session
//! scheduler.
//!
//! The single-queue simulator ([`crate::sim`]) models one mapper and one
//! accelerator. A fleet is `MAGMA_FLEET_SHARDS` independent **shards** —
//! each a full platform with its own mapper clock, accelerator timeline,
//! mapping cache and [`SessionScheduler`] — fed from one global admission
//! batcher:
//!
//! ```text
//!  trace ─▶ AdmissionBatcher ─▶ ShardRouter ──▶ shard 0: scheduler ⇄ cache ⇄ accel
//!                         (affinity + load)  ├▶ shard 1: …
//!                                            └▶ shard N-1: …
//! ```
//!
//! The event loop is a pure function of `(FleetConfig, TenantMix)`: three
//! event kinds — an **arrival** joins the batcher, a **cut** admits the next
//! group to the shard the router picks, a **step** advances the
//! earliest-clock shard's scheduler by one slice — are processed in global
//! virtual-time order (ties resolved arrival < cut < step, then shard
//! index), so fleet runs are bit-identical across repeats and
//! `MAGMA_THREADS` settings. A cut happens once the batcher is ready *and*
//! a shard can take the group: either a free scheduler slot, or (margin
//! knob permitting) a live session cheap enough to value-preempt.
//!
//! Behind the per-shard caches sits an optional fleet-wide **shared cache
//! tier** (`MAGMA_FLEET_SHARED_CACHE` entries, per-tenant quota
//! `MAGMA_FLEET_TENANT_QUOTA`): a shard miss falls through to the tier
//! before cold-searching, every completed session publishes its mapping to
//! both its shard cache and the tier, and the router places tier-held keys
//! purely by load ([`crate::router::ShardRouter::place_balanced`]) since
//! any shard then serves them warm. The tier lives on the fleet's
//! single-threaded event loop, so its event order — and therefore every
//! fleet result — stays bit-identical across `MAGMA_THREADS` settings.
//! When `MAGMA_SERVE_CACHE_PATH` is set, each shard persists its cache to
//! `<path>.shard<i>` at the end of the run and reloads it at the next
//! start, so fleet restarts begin warm.
//!
//! With one shard, the Uniform policy, no preemption margin and a slice at
//! least the search budget, the loop degenerates exactly — same floating
//! point, same RNG streams — to the single-queue overlap simulator, which
//! `tests/integration_fleet.rs` pins down.
//!
//! Offered load is calibrated against the **reference shard** (shard 0), so
//! `MAGMA_FLEET_LOAD=2.5` means "2.5× what one shard sustains": the
//! one-shard rung of the [`FleetReport`] ladder drowns and the ladder's
//! throughput climbs with the shard count — the scaling headline
//! `BENCH_fleet.json` exists to track.

use crate::batcher::{AdmissionBatcher, BatchPolicy};
use crate::cache::{quantize_signatures, CacheStats, MappingCache, SharedCache};
use crate::descriptor::{CustomScenario, ScenarioDescriptor};
use crate::dispatch::{DispatchConfig, DispatchOutcome, MappingService};
use crate::metrics::{CacheReport, LatencyStats, ServeMetrics};
use crate::router::{RouterStats, ShardRouter};
use crate::scheduler::{LiveSession, SchedStats, SchedStep, SchedulerConfig, SessionScheduler};
use crate::sim::{
    assemble_metrics, calibrate, dispatch_seed, group_problem, record_group, JobRecord,
};
use crate::trace::{generate_trace, Arrival, Scenario, TraceParams};
use magma_m3e::StoredSolution;
use magma_model::{JobSignature, TenantMix};
use magma_platform::settings::{FleetKnobs, FleetPolicy};
use magma_platform::PlatformSpec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// The full parameter set of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// One platform spec per shard (shard count = length; heterogeneous
    /// mixes cycle `MAGMA_FLEET_SETTINGS`; registry scenarios may supply
    /// fully custom platforms). Shard 0 is the load-calibration reference.
    pub shard_settings: Vec<PlatformSpec>,
    /// The traffic scenario.
    pub scenario: Scenario,
    /// Arrivals to simulate.
    pub requests: usize,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Admission deadline in batch-formation windows.
    pub max_wait_x: f64,
    /// Mini-batch size per job.
    pub mini_batch: usize,
    /// Offered load relative to the reference shard's calibrated rate.
    pub offered_load: f64,
    /// SLA tolerance factor (see [`crate::sim`]).
    pub sla_x: f64,
    /// Virtual mapper cost per evaluated sample, in seconds.
    pub overhead_sec_per_sample: f64,
    /// Search budgets and cache geometry (per shard).
    pub dispatch: DispatchConfig,
    /// Entries in the fleet-wide shared cache tier; `0` disables the tier
    /// (shard misses go straight to a cold search, exactly the pre-tier
    /// behaviour).
    pub shared_cache_capacity: usize,
    /// Per-tenant entry quota over the shared tier; `0` means unlimited.
    pub shared_tenant_quota: usize,
    /// Mapping-cache persistence base path (`MAGMA_SERVE_CACHE_PATH`): each
    /// shard loads/saves `<path>.shard<i>`. `None` keeps caches in-memory.
    pub cache_path: Option<PathBuf>,
    /// Scheduler policy.
    pub policy: FleetPolicy,
    /// Live-session capacity per shard.
    pub max_live: usize,
    /// Fixed slice under [`FleetPolicy::Uniform`], in samples.
    pub base_slice: usize,
    /// Slice floor under [`FleetPolicy::Deadline`], in samples.
    pub min_slice: usize,
    /// Value-preemption margin (`0` disables value preemption).
    pub preempt_margin: f64,
    /// Mapper-saturation factor for stress scenarios; `0` (the default)
    /// uses the configured per-sample overhead. When positive, the
    /// per-sample overhead is re-derived after calibration so that one cold
    /// search costs `mapper_pressure × shards` batch windows — every
    /// shard's mapper is oversubscribed by the factor at any rung, forcing
    /// live sessions to pile up and deadlines to expire mid-search (the
    /// `deadline_pressure` scenario sets this; the scaling headline leaves
    /// it off).
    pub mapper_pressure: f64,
    /// Trace/search seed.
    pub seed: u64,
}

impl FleetConfig {
    /// Builds a config from the `MAGMA_FLEET_*` knob family for `shards`
    /// shards (cycling the settings list) under the given scenario.
    pub fn from_knobs(knobs: &FleetKnobs, shards: usize, scenario: Scenario) -> Self {
        assert!(shards > 0, "a fleet needs at least one shard");
        assert!(!knobs.shard_settings.is_empty(), "the settings list cannot be empty");
        FleetConfig {
            shard_settings: (0..shards)
                .map(|s| knobs.shard_settings[s % knobs.shard_settings.len()].into())
                .collect(),
            scenario,
            requests: knobs.requests,
            group_target: knobs.serve.group_target,
            max_wait_x: knobs.serve.max_wait_x,
            mini_batch: magma_model::workload::DEFAULT_MINI_BATCH,
            offered_load: knobs.offered_load,
            sla_x: knobs.serve.sla_x,
            overhead_sec_per_sample: knobs.serve.overhead_us_per_sample * 1e-6,
            dispatch: DispatchConfig::new(
                knobs.serve.cold_budget,
                knobs.serve.refine_budget,
                knobs.serve.quant_step,
                knobs.serve.cache_capacity,
            )
            .with_cache_epsilon(knobs.serve.cache_epsilon),
            shared_cache_capacity: knobs.shared_cache_capacity,
            shared_tenant_quota: knobs.shared_tenant_quota,
            cache_path: knobs.serve.cache_path.as_ref().map(PathBuf::from),
            policy: knobs.policy,
            max_live: knobs.max_live,
            base_slice: knobs.serve.search_slice,
            min_slice: knobs.min_slice,
            preempt_margin: knobs.preempt_margin,
            mapper_pressure: 0.0,
            seed: knobs.serve.seed,
        }
    }

    /// Number of shards (the settings list's length).
    pub fn shards(&self) -> usize {
        self.shard_settings.len()
    }
}

/// The output of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// The fleet-wide metrics block (cache counters summed over shards).
    pub metrics: ServeMetrics,
    /// The calibrated mean inter-arrival gap, in virtual seconds.
    pub mean_interarrival_sec: f64,
    /// The per-job SLA bound applied, in virtual seconds.
    pub sla_sec: f64,
    /// Scheduler lifecycle counters, summed over shards.
    pub sched: SchedStats,
    /// Shared cache tier counters (all zero when the tier is disabled). The
    /// tier's stream is disjoint from the per-shard counters in
    /// [`FleetResult::metrics`]: a tier-served dispatch is a shard miss
    /// *and* a tier hit.
    pub shared: CacheReport,
    /// Router placement counters.
    pub router: RouterStats,
    /// Jobs completed per shard.
    pub per_shard_jobs: Vec<usize>,
}

/// Earliest per-job SLA expiry across a group's arrivals.
fn group_deadline(arrivals: &[Arrival], mix: &TenantMix, sla_sec: f64) -> f64 {
    arrivals
        .iter()
        .map(|a| a.time_sec + mix.tenants()[a.tenant].effective_sla_sec(sla_sec))
        .fold(f64::INFINITY, f64::min)
}

/// A group's preemption value: Σ `1 / sla_multiplier` over its arrivals —
/// tighter contracts are worth more, bigger groups are worth more.
pub(crate) fn group_value<'a>(arrivals: impl Iterator<Item = &'a Arrival>, mix: &TenantMix) -> f64 {
    arrivals.map(|a| 1.0 / mix.tenants()[a.tenant].sla_multiplier().unwrap_or(1.0)).sum()
}

/// Whether the next group could be taken right now: a free slot somewhere,
/// or a value-preemptable victim the prospective group out-values by the
/// margin.
fn gate_is_open(
    scheds: &[SessionScheduler],
    batcher: &AdmissionBatcher,
    margin: f64,
    mix: &TenantMix,
) -> bool {
    if scheds.iter().any(|s| s.has_room()) {
        return true;
    }
    if margin <= 0.0 || batcher.pending() == 0 {
        return false;
    }
    let incoming = group_value(batcher.peek_next_group(), mix);
    match scheds
        .iter()
        .filter_map(|s| s.preemptable_value())
        .fold(None, |m: Option<f64>, v| Some(m.map_or(v, |m| m.min(v))))
    {
        Some(cheapest) => incoming >= margin * cheapest,
        None => false,
    }
}

/// A group's dominant tenant: the most frequent tenant among its arrivals,
/// smallest index on ties — the tenant the shared tier charges the
/// published entry to.
pub(crate) fn dominant_tenant(arrivals: &[Arrival]) -> usize {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for a in arrivals {
        *counts.entry(a.tenant).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(tenant, _)| tenant)
        .unwrap_or(0)
}

/// Completes a finished (or preempted) session on its shard: stores the
/// best mapping in the shard's cache, publishes it to the shared tier (when
/// one exists) under the group's dominant tenant, schedules the group at
/// `max(search end, accelerator free)` and appends the job records.
#[allow(clippy::too_many_arguments)]
fn complete_session(
    session: LiveSession,
    search_end_sec: f64,
    service: &mut MappingService,
    shared: Option<&mut SharedCache>,
    accel_free: &mut f64,
    records: &mut Vec<JobRecord>,
    outcomes: &mut Vec<DispatchOutcome>,
    shard_jobs: &mut usize,
) {
    let LiveSession { group, plan, problem, state, .. } = session;
    let key = plan.key().clone();
    let outcome = service.complete_group(&problem, plan, state.finish());
    if let Some(tier) = shared {
        tier.publish(
            key,
            StoredSolution::new(outcome.mapping.clone(), Some(problem.signatures().to_vec())),
            dominant_tenant(&group.arrivals),
        );
    }
    let exec_start = search_end_sec.max(*accel_free);
    record_group(records, &group, &outcome, group.formed_at_sec, exec_start);
    *accel_free = exec_start + outcome.schedule.makespan_sec();
    *shard_jobs += group.arrivals.len();
    outcomes.push(outcome);
}

/// The per-shard persistence file a fleet base path expands to.
fn shard_cache_file(base: &std::path::Path, shard: usize) -> PathBuf {
    PathBuf::from(format!("{}.shard{shard}", base.display()))
}

/// Runs one fleet scenario to completion. See the module docs for the event
/// model.
///
/// # Panics
///
/// Panics if the config is degenerate (no shards/requests, a non-positive
/// offered load) — [`FleetConfig::from_knobs`] never builds such a config.
pub fn fleet_simulate(config: &FleetConfig, mix: &TenantMix) -> FleetResult {
    let shards = config.shards();
    assert!(shards > 0 && config.requests > 0 && config.group_target > 0);
    assert!(config.offered_load > 0.0 && config.offered_load.is_finite());

    let platforms: Vec<_> = config.shard_settings.iter().map(|s| s.build()).collect();
    // Load and SLA are calibrated against the reference shard (shard 0), so
    // the offered load means "multiples of one shard's unoptimized rate" at
    // every rung of a scaling ladder.
    let calib = calibrate(
        &platforms[0],
        mix,
        config.group_target,
        config.mini_batch,
        config.offered_load,
        config.sla_x,
        config.dispatch.cold_budget,
        config.overhead_sec_per_sample,
        config.seed,
    );
    let sla_sec = calib.sla_sec;
    // Stress scenarios re-derive the per-sample mapper cost so that one
    // cold search costs `mapper_pressure × shards` batch windows — the
    // mapper is then the contended resource at every rung of a ladder (the
    // SLA keeps the *configured* overhead, so the pressure actually bites).
    let overhead_sec = if config.mapper_pressure > 0.0 {
        config.mapper_pressure * shards as f64 * calib.batch_window_sec
            / config.dispatch.cold_budget as f64
    } else {
        config.overhead_sec_per_sample
    };

    let trace = generate_trace(
        &TraceParams {
            scenario: config.scenario,
            requests: config.requests,
            mean_interarrival_sec: calib.mean_interarrival_sec,
            mini_batch: config.mini_batch,
            seed: config.seed,
        },
        mix,
    );
    let mut batcher = AdmissionBatcher::new(BatchPolicy::new(
        config.group_target,
        config.max_wait_x * calib.batch_window_sec,
    ));
    let mut router = ShardRouter::new(shards);
    let mut services: Vec<_> = (0..shards).map(|_| MappingService::new(config.dispatch)).collect();
    // Warm restart: each shard reloads its own persisted cache file. A
    // missing file is the normal first run; an unreadable one is reported
    // and that shard comes up cold.
    if let Some(base) = &config.cache_path {
        for (i, service) in services.iter_mut().enumerate() {
            let file = shard_cache_file(base, i);
            if file.exists() {
                match MappingCache::load(&file) {
                    Ok(cache) => service.install_cache(cache),
                    Err(e) => {
                        eprintln!("warning: ignoring mapping cache at {}: {e}", file.display())
                    }
                }
            }
        }
    }
    let mut shared = (config.shared_cache_capacity > 0)
        .then(|| SharedCache::new(config.shared_cache_capacity, config.shared_tenant_quota));
    let sched_config = SchedulerConfig {
        policy: config.policy,
        max_live: config.max_live,
        base_slice: config.base_slice,
        min_slice: config.min_slice,
        preempt_margin: config.preempt_margin,
        overhead_sec_per_sample: overhead_sec,
    };
    let mut scheds: Vec<_> = (0..shards).map(|_| SessionScheduler::new(sched_config)).collect();
    let mut mapper_now = vec![0.0f64; shards];
    let mut accel_free = vec![0.0f64; shards];
    let mut per_shard_jobs = vec![0usize; shards];

    let mut records: Vec<JobRecord> = Vec::with_capacity(trace.len());
    let mut outcomes: Vec<DispatchOutcome> = Vec::new();
    let mut next = 0usize;
    let mut admitted = 0u64;
    // The admission gate: open while some shard can take the next group.
    // `gate_since` is the instant the current open stretch began — a cut
    // can never predate the capacity it needs.
    let mut gate_open = true;
    let mut gate_since = 0.0f64;

    loop {
        let ta = trace.get(next).map(|a| a.time_sec);
        let tc = if gate_open { batcher.earliest_ready().map(|r| r.max(gate_since)) } else { None };
        let ts = (0..shards)
            .filter(|&s| scheds[s].live() > 0)
            .map(|s| (mapper_now[s], s))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("clocks are finite").then(a.1.cmp(&b.1)));

        let t_cut = tc.unwrap_or(f64::INFINITY);
        let t_step = ts.map_or(f64::INFINITY, |(t, _)| t);
        // The time the gate re-evaluation below attributes to this event.
        let gate_time;
        match (ta, tc, ts) {
            // Arrivals admit first on ties so they can join the group being
            // cut — the same discipline as the single-queue loop.
            (Some(t), _, _) if t <= t_cut && t <= t_step => {
                batcher.push(trace[next].clone());
                next += 1;
                gate_time = t;
            }
            (_, Some(t), _) if t <= t_step => {
                let group = batcher.take_group(t).expect("readiness verified");
                let sigs: Vec<JobSignature> =
                    group.arrivals.iter().map(|a| a.job.signature()).collect();
                let key = quantize_signatures(&sigs, config.dispatch.quant_step);
                let mut admissible: Vec<bool> = scheds.iter().map(|s| s.has_room()).collect();
                if !admissible.iter().any(|&b| b) {
                    // The gate only opened through value preemption: evict
                    // the fleet's cheapest started session (ties to the
                    // lowest shard) and finish it with what it has.
                    let (vs, _) = (0..shards)
                        .filter_map(|s| scheds[s].preemptable_value().map(|v| (s, v)))
                        .min_by(|a, b| {
                            a.1.partial_cmp(&b.1).expect("values are finite").then(a.0.cmp(&b.0))
                        })
                        .expect("the gate verified a victim exists");
                    let victim = scheds[vs].preempt_lowest_value();
                    let end = mapper_now[vs].max(t);
                    complete_session(
                        victim,
                        end,
                        &mut services[vs],
                        shared.as_mut(),
                        &mut accel_free[vs],
                        &mut records,
                        &mut outcomes,
                        &mut per_shard_jobs[vs],
                    );
                    admissible[vs] = true;
                }
                // A shard's congestion in seconds: queued mapper work plus
                // how far its accelerator timeline runs past now — search is
                // usually cheap, so the accelerator queue is what actually
                // differentiates shards under load.
                let loads: Vec<f64> = (0..shards)
                    .map(|s| scheds[s].backlog() * overhead_sec + (accel_free[s] - t).max(0.0))
                    .collect();
                // A key the shared tier holds is served warm from any
                // shard, so affinity buys nothing: place purely by load.
                let shard = if shared.as_ref().is_some_and(|t| t.contains(&key)) {
                    router.place_balanced(&loads, &admissible)
                } else {
                    router.place(&key, &loads, &admissible)
                };
                let problem = group_problem(&platforms[shard], &group);
                let mut rng = StdRng::seed_from_u64(dispatch_seed(config.seed, admitted as usize));
                let plan = services[shard].plan_group_shared(&problem, &mut rng, shared.as_mut());
                let budget = plan.budget();
                let state = services[shard].open_search(&plan, &problem, &mut rng);
                let deadline_sec = group_deadline(&group.arrivals, mix, sla_sec);
                let value = group_value(group.arrivals.iter(), mix);
                let session = LiveSession {
                    id: admitted,
                    group,
                    plan,
                    problem,
                    rng,
                    state,
                    budget,
                    deadline_sec,
                    value,
                };
                admitted += 1;
                scheds[shard].admit(session, t);
                // An idle mapper starts at the admission; a busy one keeps
                // its clock (the new session waits for a slice).
                mapper_now[shard] = mapper_now[shard].max(t);
                gate_time = t;
            }
            (_, _, Some((t, shard))) => {
                match scheds[shard].step(t) {
                    SchedStep::Idle => unreachable!("only shards with live sessions step"),
                    SchedStep::Progress { spent } => {
                        mapper_now[shard] += spent as f64 * overhead_sec;
                    }
                    SchedStep::Finished { session, spent, preempted } => {
                        debug_assert!(
                            !preempted || config.policy == FleetPolicy::Deadline,
                            "only the Deadline policy preempts on step"
                        );
                        mapper_now[shard] += spent as f64 * overhead_sec;
                        let end = mapper_now[shard];
                        complete_session(
                            *session,
                            end,
                            &mut services[shard],
                            shared.as_mut(),
                            &mut accel_free[shard],
                            &mut records,
                            &mut outcomes,
                            &mut per_shard_jobs[shard],
                        );
                    }
                }
                // Room freed (or spent advanced) when the mapper's slice
                // ended, not at the step's start.
                gate_time = mapper_now[shard];
            }
            (None, None, None) => break,
            // The guards compare against INFINITY when an event kind is
            // absent, so any arm with a Some already matched above.
            _ => unreachable!("the time guards cover every live event"),
        }

        let open = gate_is_open(&scheds, &batcher, config.preempt_margin, mix);
        if open && !gate_open {
            gate_since = gate_time;
        }
        gate_open = open;
    }
    debug_assert_eq!(records.len(), config.requests, "every arrival completes exactly once");

    if let Some(base) = &config.cache_path {
        for (i, service) in services.iter().enumerate() {
            let file = shard_cache_file(base, i);
            if let Err(e) = service.cache().save(&file) {
                eprintln!("warning: could not persist mapping cache to {}: {e}", file.display());
            }
        }
    }

    let mut cache = CacheStats::default();
    let mut entries = 0usize;
    for service in &services {
        let s = service.cache_stats();
        cache.hits += s.hits;
        cache.misses += s.misses;
        cache.near_hits += s.near_hits;
        cache.insertions += s.insertions;
        cache.evictions += s.evictions;
        entries += service.cache_len();
    }
    let cache_block = CacheReport {
        hits: cache.hits,
        misses: cache.misses,
        near_hits: cache.near_hits,
        evictions: cache.evictions,
        hit_rate: cache.hit_rate(),
        entries,
    };
    let sched = scheds.iter().fold(SchedStats::default(), |mut acc, s| {
        let st = s.stats();
        acc.admitted += st.admitted;
        acc.completed += st.completed;
        acc.preempted_deadline += st.preempted_deadline;
        acc.preempted_value += st.preempted_value;
        acc.late_admissions += st.late_admissions;
        acc.min_slice_clamps += st.min_slice_clamps;
        acc
    });
    let shared_block = match &shared {
        Some(tier) => {
            let s = tier.stats();
            CacheReport {
                hits: s.hits,
                misses: s.misses,
                near_hits: s.near_hits,
                evictions: s.evictions,
                hit_rate: s.hit_rate(),
                entries: tier.len(),
            }
        }
        None => CacheReport::default(),
    };
    FleetResult {
        metrics: assemble_metrics(&records, &outcomes, cache_block, mix, sla_sec),
        mean_interarrival_sec: calib.mean_interarrival_sec,
        sla_sec,
        sched,
        shared: shared_block,
        router: router.stats(),
        per_shard_jobs,
    }
}

// ---------------------------------------------------------------------------
// The BENCH_fleet.json report.
// ---------------------------------------------------------------------------

/// Version tag of the fleet report layout. Same contract as
/// [`crate::report::SCHEMA`]: fields are only ever added, with a bump.
/// `v2` added the shared cache tier block (`shared`, `shared_balanced`);
/// `v3` added the embedded `scenario_descriptor` (and `FleetRung`'s
/// `shard_settings` became plain labels so registry-defined platforms can
/// appear next to the Table III names).
pub const FLEET_SCHEMA: &str = "magma-fleet/v3";

/// One `(scenario, shard count)` rung of the scaling ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetRung {
    /// Shards in this rung.
    pub shards: usize,
    /// Per-shard platform labels (Table III names for builtin settings,
    /// platform names for registry-defined meshes).
    pub shard_settings: Vec<String>,
    /// Jobs completed (always the full trace).
    pub jobs: usize,
    /// Jobs per virtual second.
    pub jobs_per_sec: f64,
    /// Useful work per virtual second, GFLOP/s.
    pub throughput_gflops: f64,
    /// `jobs_per_sec / (the 1-shard rung's jobs_per_sec)` — the scaling
    /// headline (1.0 on the 1-shard rung itself).
    pub speedup_vs_one_shard: f64,
    /// End-to-end p50, µs of virtual time.
    pub p50_e2e_us: f64,
    /// End-to-end p95, µs.
    pub p95_e2e_us: f64,
    /// End-to-end p99, µs.
    pub p99_e2e_us: f64,
    /// Queueing (arrival → dispatch) profile, seconds.
    pub queueing: LatencyStats,
    /// End-to-end profile, seconds.
    pub end_to_end: LatencyStats,
    /// SLA violations across all tenants.
    pub sla_violations: usize,
    /// `sla_violations / jobs`.
    pub sla_violation_rate: f64,
    /// Fleet-wide cache counters (summed over shards).
    pub cache: crate::metrics::CacheReport,
    /// Shared cache tier counters — disjoint from `cache`: a tier-served
    /// dispatch is a shard miss *and* a tier hit. All zero when
    /// `MAGMA_FLEET_SHARED_CACHE=0`.
    pub shared: crate::metrics::CacheReport,
    /// Fleet-wide dispatch/budget/quality summary.
    pub dispatch: crate::metrics::DispatchSummary,
    /// Sessions admitted across shards.
    pub admitted: u64,
    /// Sessions that ran to their full budget.
    pub completed: u64,
    /// Deadline preemptions (early finishes past the deadline).
    pub preempted_deadline: u64,
    /// Value preemptions (evicted for a higher-value group).
    pub preempted_value: u64,
    /// Total preemptions (both kinds).
    pub preemptions: u64,
    /// Groups admitted with their deadline already past.
    pub late_admissions: u64,
    /// Deadline-policy steps clamped to the slice floor.
    pub min_slice_clamps: u64,
    /// Groups placed by the router.
    pub placed: u64,
    /// Placements that followed signature affinity.
    pub affinity_hits: u64,
    /// Placements routed purely by load because the shared tier held the
    /// group's key.
    pub shared_balanced: u64,
    /// Jobs completed per shard.
    pub per_shard_jobs: Vec<usize>,
    /// Calibrated mean inter-arrival gap, µs of virtual time.
    pub mean_interarrival_us: f64,
    /// Per-job SLA bound, µs of virtual time.
    pub sla_us: f64,
}

/// One scenario's scaling ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetScenarioResult {
    /// Short stable identifier (`fleet_mix`, `deadline_pressure`).
    pub name: String,
    /// The traffic scenario simulated.
    pub scenario: Scenario,
    /// Scheduler policy in force (`uniform` / `deadline`).
    pub policy: String,
    /// Offered load relative to one reference shard.
    pub offered_load: f64,
    /// SLA tolerance factor.
    pub sla_x: f64,
    /// One rung per shard count, ascending.
    pub rungs: Vec<FleetRung>,
}

/// The full report written to `BENCH_fleet.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Schema version tag ([`FLEET_SCHEMA`]).
    pub schema: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Trace/search seed.
    pub seed: u64,
    /// Shard counts of the ladder, ascending from 1.
    pub shard_ladder: Vec<usize>,
    /// Synthetic tenants in the mix.
    pub tenants: usize,
    /// Arrivals per rung.
    pub requests: usize,
    /// Live-session capacity per shard.
    pub max_live: usize,
    /// Deadline-policy slice floor, samples.
    pub min_slice: usize,
    /// Value-preemption margin.
    pub preempt_margin: f64,
    /// What this report measured: the resolved scenario descriptor
    /// (builtin ladder parameters, or the registry definitions behind a
    /// `--scenario` run), content-hashed.
    pub scenario_descriptor: ScenarioDescriptor,
    /// One ladder per scenario.
    pub scenarios: Vec<FleetScenarioResult>,
}

impl FleetReport {
    /// The [`FLEET_SCHEMA`] self-check: the versioned invariants CI
    /// asserts before uploading a profile. Returns the first violation as an
    /// error string.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != FLEET_SCHEMA {
            return Err(format!("schema tag {} != {}", self.schema, FLEET_SCHEMA));
        }
        self.scenario_descriptor.validate().map_err(|e| format!("fleet report: {e}"))?;
        if self.scenarios.is_empty() {
            return Err("empty scenario list".into());
        }
        if self.shard_ladder.first() != Some(&1) {
            return Err("the ladder must start at 1 shard (the speedup baseline)".into());
        }
        if self.shard_ladder.windows(2).any(|w| w[0] >= w[1]) {
            return Err("the shard ladder must be strictly ascending".into());
        }
        for scenario in &self.scenarios {
            let rung_shards: Vec<usize> = scenario.rungs.iter().map(|r| r.shards).collect();
            if rung_shards != self.shard_ladder {
                return Err(format!("{}: rungs {rung_shards:?} != ladder", scenario.name));
            }
            let base = scenario.rungs[0].jobs_per_sec;
            for rung in &scenario.rungs {
                if rung.jobs != self.requests {
                    return Err(format!(
                        "{} @ {} shards: {} jobs completed of {} — arrivals lost",
                        scenario.name, rung.shards, rung.jobs, self.requests
                    ));
                }
                if rung.shard_settings.len() != rung.shards {
                    return Err(format!(
                        "{} @ {} shards: one setting per shard required",
                        scenario.name, rung.shards
                    ));
                }
                if !(rung.p50_e2e_us <= rung.p95_e2e_us && rung.p95_e2e_us <= rung.p99_e2e_us) {
                    return Err(format!(
                        "{} @ {} shards: percentiles out of order",
                        scenario.name, rung.shards
                    ));
                }
                if rung.shared_balanced > rung.placed {
                    return Err(format!(
                        "{} @ {} shards: more shared-balanced placements than placements",
                        scenario.name, rung.shards
                    ));
                }
                let tier_lookups = rung.shared.hits + rung.shared.misses;
                if tier_lookups != 0 && tier_lookups != rung.cache.misses {
                    return Err(format!(
                        "{} @ {} shards: tier lookups {} != shard misses {} — every shard \
                         miss probes the enabled tier exactly once",
                        scenario.name, rung.shards, tier_lookups, rung.cache.misses
                    ));
                }
                if rung.preemptions != rung.preempted_deadline + rung.preempted_value {
                    return Err(format!(
                        "{} @ {} shards: preemption counters inconsistent",
                        scenario.name, rung.shards
                    ));
                }
                if rung.admitted != rung.completed + rung.preemptions {
                    return Err(format!(
                        "{} @ {} shards: admitted {} != completed {} + preempted {}",
                        scenario.name, rung.shards, rung.admitted, rung.completed, rung.preemptions
                    ));
                }
                let expect = if base > 0.0 { rung.jobs_per_sec / base } else { 0.0 };
                if (rung.speedup_vs_one_shard - expect).abs() > 1e-9 * expect.max(1.0) {
                    return Err(format!(
                        "{} @ {} shards: speedup {} disagrees with the ladder",
                        scenario.name, rung.shards, rung.speedup_vs_one_shard
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The standard fleet scenario set.
///
/// * `fleet_mix` — the scaling headline: a large synthetic tenant mix at an
///   offered load that overloads one shard (`MAGMA_FLEET_LOAD`, default
///   2.5×), under the configured policy.
/// * `deadline_pressure` — the preemption stress: 1.5× that load with the
///   SLA tolerance cut to a third and the mapper oversubscribed 1.5×
///   ([`FleetConfig::mapper_pressure`]), always under the Deadline policy
///   and with the nearest-key probe off (exact-key hits only), so live
///   sessions pile up, deadlines expire mid-search and the preemption
///   counters exercise.
pub fn fleet_scenarios(knobs: &FleetKnobs) -> Vec<(&'static str, FleetConfig)> {
    let base = |shards| FleetConfig::from_knobs(knobs, shards, Scenario::Poisson);
    let mut pressure = base(knobs.shards);
    pressure.offered_load = knobs.offered_load * 1.5;
    pressure.sla_x = knobs.serve.sla_x / 3.0;
    pressure.policy = FleetPolicy::Deadline;
    pressure.mapper_pressure = 1.5;
    // The stress must actually pay for cold searches: a nearest-key hit
    // sidesteps the mapper entirely, and with the calibrated probe on (and
    // smoke-scale traces warming the cache within a few groups) no deadline
    // would ever expire mid-search. Exact-key hits stay — repeated groups
    // are part of the workload — but the probe is off here so the
    // preemption machinery is exercised regardless of how the cache
    // defaults are calibrated.
    pressure.dispatch.cache_epsilon = 0.0;
    vec![("fleet_mix", base(knobs.shards)), ("deadline_pressure", pressure)]
}

/// The shard-count ladder: `{1, 4}` for smoke, `{1, 2, N}` for full (always
/// starting at the 1-shard speedup baseline, deduplicated, ascending).
pub fn shard_ladder(knobs: &FleetKnobs, smoke: bool) -> Vec<usize> {
    let mut ladder = if smoke { vec![1, knobs.shards] } else { vec![1, 2, knobs.shards] };
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

/// Runs one scenario template over the shard ladder, building each rung's
/// shard list through `shard_spec` (cycled knob settings for the builtin
/// ladders, one registry platform per shard for `--scenario` runs).
fn run_scenario_ladder(
    name: &str,
    template: &FleetConfig,
    ladder: &[usize],
    mix: &TenantMix,
    shard_spec: &dyn Fn(usize) -> PlatformSpec,
) -> FleetScenarioResult {
    let mut rungs = Vec::with_capacity(ladder.len());
    let mut base_jobs_per_sec = 0.0f64;
    for &shards in ladder {
        let mut config = template.clone();
        config.shard_settings = (0..shards).map(shard_spec).collect();
        // Every rung of the ladder starts cold: a persistence file
        // (`MAGMA_SERVE_CACHE_PATH`) would leak shard caches from
        // rung to rung and scenario to scenario, invalidating the
        // scaling comparison. Warm fleet restarts are exercised by
        // `fleet_simulate` callers and the integration suite.
        config.cache_path = None;
        let result = fleet_simulate(&config, mix);
        if rungs.is_empty() {
            base_jobs_per_sec = result.metrics.jobs_per_sec;
        }
        rungs.push(rung_from_result(&config, &result, base_jobs_per_sec));
    }
    FleetScenarioResult {
        name: name.to_string(),
        scenario: template.scenario,
        policy: template.policy.to_string(),
        offered_load: template.offered_load,
        sla_x: template.sla_x,
        rungs,
    }
}

/// The builtin ladder's self-describing descriptor: the knob values that
/// shape the run (the registry path embeds full definitions instead).
fn builtin_fleet_descriptor(knobs: &FleetKnobs, ladder: &[usize]) -> ScenarioDescriptor {
    let params = Value::Map(vec![
        ("ladder".into(), Value::Seq(ladder.iter().map(|&s| Value::U64(s as u64)).collect())),
        (
            "shard_settings".into(),
            Value::Seq(knobs.shard_settings.iter().map(|s| Value::Str(s.to_string())).collect()),
        ),
        ("tenants".into(), Value::U64(knobs.tenants as u64)),
        ("requests".into(), Value::U64(knobs.requests as u64)),
        ("offered_load".into(), Value::F64(knobs.offered_load)),
        ("policy".into(), Value::Str(knobs.policy.to_string())),
        ("max_live".into(), Value::U64(knobs.max_live as u64)),
        ("min_slice".into(), Value::U64(knobs.min_slice as u64)),
        ("preempt_margin".into(), Value::F64(knobs.preempt_margin)),
        ("seed".into(), Value::U64(knobs.serve.seed)),
        (
            "scenarios".into(),
            Value::Seq(vec![
                Value::Str("fleet_mix".into()),
                Value::Str("deadline_pressure".into()),
            ]),
        ),
    ]);
    ScenarioDescriptor::new("builtin", "fleet_ladder", params)
}

/// Runs the fleet scenario set over the shard ladder and assembles the
/// report.
pub fn run_fleet_ladder(knobs: &FleetKnobs, smoke: bool) -> FleetReport {
    let ladder = shard_ladder(knobs, smoke);
    let mix = TenantMix::synthetic(knobs.tenants, knobs.serve.seed);
    let shard_spec =
        |s: usize| PlatformSpec::from(knobs.shard_settings[s % knobs.shard_settings.len()]);
    let scenarios = fleet_scenarios(knobs)
        .into_iter()
        .map(|(name, template)| run_scenario_ladder(name, &template, &ladder, &mix, &shard_spec))
        .collect();
    FleetReport {
        schema: FLEET_SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        seed: knobs.serve.seed,
        scenario_descriptor: builtin_fleet_descriptor(knobs, &ladder),
        shard_ladder: ladder,
        tenants: knobs.tenants,
        requests: knobs.requests,
        max_live: knobs.max_live,
        min_slice: knobs.min_slice,
        preempt_margin: knobs.preempt_margin,
        scenarios,
    }
}

/// Runs one registry-defined scenario over the shard ladder: every shard is
/// a copy of the scenario's platform, the trace is drawn from its tenant
/// mix, and the report embeds its descriptor. Knob-level ladder shape
/// (shard counts, session scheduler, budgets) still comes from `knobs`;
/// the scenario's optional `requests` / `offered_load` / `seed` override the
/// knob defaults.
pub fn run_fleet_custom(knobs: &FleetKnobs, smoke: bool, custom: &CustomScenario) -> FleetReport {
    let mut knobs = knobs.clone();
    knobs.serve = custom.apply_serving(&knobs.serve);
    let knobs = &knobs;
    let ladder = shard_ladder(knobs, smoke);
    let mut template = FleetConfig::from_knobs(knobs, knobs.shards, custom.scenario);
    if let Some(requests) = custom.requests {
        template.requests = requests;
    }
    if let Some(load) = custom.offered_load {
        template.offered_load = load;
    }
    if let Some(seed) = custom.seed {
        template.seed = seed;
    }
    let shard_spec = |_s: usize| custom.platform.clone();
    let scenario = run_scenario_ladder(&custom.name, &template, &ladder, &custom.mix, &shard_spec);
    FleetReport {
        schema: FLEET_SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        seed: template.seed,
        scenario_descriptor: custom.descriptor.clone(),
        shard_ladder: ladder,
        tenants: custom.mix.tenants().len(),
        requests: template.requests,
        max_live: knobs.max_live,
        min_slice: knobs.min_slice,
        preempt_margin: knobs.preempt_margin,
        scenarios: vec![scenario],
    }
}

/// Folds one run into its ladder rung.
fn rung_from_result(
    config: &FleetConfig,
    result: &FleetResult,
    base_jobs_per_sec: f64,
) -> FleetRung {
    let m = &result.metrics;
    let sla_violations: usize = m.tenants.iter().map(|t| t.sla_violations).sum();
    FleetRung {
        shards: config.shards(),
        shard_settings: config.shard_settings.iter().map(|s| s.label()).collect(),
        jobs: m.jobs,
        jobs_per_sec: m.jobs_per_sec,
        throughput_gflops: m.throughput_gflops,
        speedup_vs_one_shard: if base_jobs_per_sec > 0.0 {
            m.jobs_per_sec / base_jobs_per_sec
        } else {
            0.0
        },
        p50_e2e_us: m.end_to_end.p50_sec * 1e6,
        p95_e2e_us: m.end_to_end.p95_sec * 1e6,
        p99_e2e_us: m.end_to_end.p99_sec * 1e6,
        queueing: m.queueing,
        end_to_end: m.end_to_end,
        sla_violations,
        sla_violation_rate: if m.jobs == 0 { 0.0 } else { sla_violations as f64 / m.jobs as f64 },
        cache: m.cache,
        shared: result.shared,
        dispatch: m.dispatch,
        admitted: result.sched.admitted,
        completed: result.sched.completed,
        preempted_deadline: result.sched.preempted_deadline,
        preempted_value: result.sched.preempted_value,
        preemptions: result.sched.preemptions(),
        late_admissions: result.sched.late_admissions,
        min_slice_clamps: result.sched.min_slice_clamps,
        placed: result.router.placed,
        affinity_hits: result.router.affinity_hits,
        shared_balanced: result.router.shared_balanced,
        per_shard_jobs: result.per_shard_jobs.clone(),
        mean_interarrival_us: result.mean_interarrival_sec * 1e6,
        sla_us: result.sla_sec * 1e6,
    }
}

/// Writes the report to `BENCH_fleet.json` in `MAGMA_BENCH_DIR` (default:
/// the current directory), returning the path — the same contract as
/// `BENCH_serve.json`, so CI never silently uploads a stale profile.
pub fn write_fleet_json(report: &FleetReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    let path = dir.join("BENCH_fleet.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the fleet report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_knobs() -> FleetKnobs {
        FleetKnobs {
            serve: magma_platform::settings::ServeKnobs {
                requests: 48,
                group_target: 6,
                cold_budget: 40,
                refine_budget: 4,
                cache_capacity: 16,
                ..magma_platform::settings::ServeKnobs::smoke()
            },
            shards: 3,
            requests: 48,
            tenants: 12,
            offered_load: 8.0,
            max_live: 2,
            ..FleetKnobs::smoke()
        }
    }

    #[test]
    #[ignore = "manual load-curve probe"]
    fn load_probe() {
        for load in [2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let mut knobs = tiny_knobs();
            knobs.offered_load = load;
            let mix = TenantMix::synthetic(knobs.tenants, 0);
            let one = fleet_simulate(&FleetConfig::from_knobs(&knobs, 1, Scenario::Poisson), &mix);
            let three =
                fleet_simulate(&FleetConfig::from_knobs(&knobs, 3, Scenario::Poisson), &mix);
            println!(
                "load {load:5.1}: 1-shard {:9.1} jobs/s (preempt {}), 3-shard {:9.1} jobs/s (preempt {}, per-shard {:?}, interarrival {:.2e})",
                one.metrics.jobs_per_sec,
                one.sched.preemptions(),
                three.metrics.jobs_per_sec,
                three.sched.preemptions(),
                three.per_shard_jobs,
                three.mean_interarrival_sec
            );
        }
    }

    #[test]
    fn every_arrival_completes_exactly_once_across_shards() {
        let knobs = tiny_knobs();
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let config = FleetConfig::from_knobs(&knobs, 3, Scenario::Poisson);
        let result = fleet_simulate(&config, &mix);
        assert_eq!(result.metrics.jobs, 48);
        assert_eq!(result.per_shard_jobs.iter().sum::<usize>(), 48);
        assert_eq!(result.sched.admitted, result.metrics.dispatch.dispatches as u64);
        assert_eq!(result.sched.admitted, result.sched.completed + result.sched.preemptions());
        assert_eq!(result.router.placed, result.sched.admitted);
        assert!(result.metrics.jobs_per_sec > 0.0);
    }

    #[test]
    fn fleet_simulation_is_deterministic() {
        let knobs = tiny_knobs();
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let config = FleetConfig::from_knobs(&knobs, 2, Scenario::Bursty);
        let a = fleet_simulate(&config, &mix);
        let b = fleet_simulate(&config, &mix);
        assert_eq!(a, b);
    }

    #[test]
    fn more_shards_raise_throughput_under_overload() {
        let knobs = tiny_knobs();
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let one = fleet_simulate(&FleetConfig::from_knobs(&knobs, 1, Scenario::Poisson), &mix);
        let three = fleet_simulate(&FleetConfig::from_knobs(&knobs, 3, Scenario::Poisson), &mix);
        assert!(
            three.metrics.jobs_per_sec > one.metrics.jobs_per_sec,
            "3 shards {} must beat 1 shard {} at 2x load",
            three.metrics.jobs_per_sec,
            one.metrics.jobs_per_sec
        );
    }

    #[test]
    fn ladder_report_validates_and_round_trips() {
        let report = run_fleet_ladder(&tiny_knobs(), true);
        report.validate().expect("a freshly assembled report must self-check");
        assert_eq!(report.shard_ladder, vec![1, 3]);
        assert_eq!(report.scenarios.len(), 2);
        let json = serde_json::to_string_pretty(&report).unwrap();
        for key in [
            "\"schema\"",
            "\"shard_ladder\"",
            "\"speedup_vs_one_shard\"",
            "\"p99_e2e_us\"",
            "\"preemptions\"",
            "\"preempted_deadline\"",
            "\"preempted_value\"",
            "\"late_admissions\"",
            "\"min_slice_clamps\"",
            "\"affinity_hits\"",
            "\"shared_balanced\"",
            "\"shared\"",
            "\"per_shard_jobs\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let back: FleetReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        // A tampered report fails the self-check.
        let mut bad = report.clone();
        bad.scenarios[0].rungs[1].speedup_vs_one_shard *= 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn the_shared_tier_serves_cross_shard_repeats() {
        let knobs = tiny_knobs();
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let tiered_config = FleetConfig::from_knobs(&knobs, 3, Scenario::Poisson);
        assert!(tiered_config.shared_cache_capacity > 0, "smoke knobs enable the tier");
        let mut solo_config = tiered_config.clone();
        solo_config.shared_cache_capacity = 0;
        let tiered = fleet_simulate(&tiered_config, &mix);
        let solo = fleet_simulate(&solo_config, &mix);
        assert!(
            tiered.shared.hits > 0,
            "repeated signatures across shards must hit the tier: {:?}",
            tiered.shared
        );
        assert_eq!(solo.shared, CacheReport::default(), "a disabled tier reports zeros");
        // A tier lookup happens on every shard miss and nowhere else.
        assert_eq!(tiered.shared.hits + tiered.shared.misses, tiered.metrics.cache.misses);
        // Cold searches (misses everywhere) can only go down with the tier.
        assert!(tiered.shared.misses <= solo.metrics.cache.misses);
    }

    #[test]
    fn a_persisted_fleet_restarts_warm() {
        let knobs = tiny_knobs();
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let base = std::env::temp_dir().join(format!("magma_fleet_cache_{}", std::process::id()));
        let shards = 2;
        let mut config = FleetConfig::from_knobs(&knobs, shards, Scenario::Poisson);
        config.cache_path = Some(base.clone());
        for i in 0..shards {
            let _ = std::fs::remove_file(shard_cache_file(&base, i));
        }
        let cold = fleet_simulate(&config, &mix);
        let warm = fleet_simulate(&config, &mix);
        for i in 0..shards {
            let file = shard_cache_file(&base, i);
            assert!(file.exists(), "every shard persists its cache");
            let _ = std::fs::remove_file(file);
        }
        assert!(
            warm.metrics.cache.hit_rate > cold.metrics.cache.hit_rate,
            "a restart from persisted caches must hit more: warm {} vs cold {}",
            warm.metrics.cache.hit_rate,
            cold.metrics.cache.hit_rate
        );
        assert_eq!(warm.metrics.jobs, cold.metrics.jobs);
    }

    #[test]
    fn deadline_pressure_scenario_preempts() {
        let knobs = tiny_knobs();
        let (_, mut pressure) =
            fleet_scenarios(&knobs).into_iter().find(|(n, _)| *n == "deadline_pressure").unwrap();
        // Preemption needs the mapper backlog to outgrow the SLA, which
        // takes tens of groups — give the stress a longer trace than the
        // other tiny tests use.
        pressure.requests = 240;
        let mix = TenantMix::synthetic(knobs.tenants, 0);
        let result = fleet_simulate(&pressure, &mix);
        assert!(
            result.sched.preemptions() > 0,
            "an oversubscribed mapper with tight SLAs must expire deadlines mid-search: {:?}",
            result.sched
        );
        assert_eq!(result.metrics.jobs, 240, "preempted groups still complete");
    }
}
