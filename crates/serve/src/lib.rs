//! magma-serve — an online multi-tenant serving simulator with a
//! signature-keyed mapping cache.
//!
//! The paper's premise is multi-tenant serving: groups of jobs from
//! co-resident DNNs arriving at a shared multi-core accelerator (Sections I
//! & III). The static experiments optimize *pre-formed* groups; this crate
//! closes the loop from **traffic** to **mappings**:
//!
//! ```text
//!  TenantMix ──▶ trace (Poisson / bursty / drift, seeded)
//!                  │ arrivals
//!                  ▼
//!           AdmissionBatcher (size target + deadline)
//!                  │ dispatch groups
//!                  ▼
//!           MappingService ──▶ MappingCache (LRU over quantized
//!                  │               JobSignature sets)
//!                  │   hit: adapt (profile match) + refine (small budget)
//!                  │   miss: full MAGMA search (cold budget)
//!                  ▼
//!           virtual-clock schedule ──▶ ServeMetrics (p50/p95/p99,
//!                                       SLA, hit rate, throughput)
//! ```
//!
//! * [`trace`] — seeded arrival scenarios over the model zoo's tenants.
//! * [`batcher`] — admission batching under a group-size/deadline policy.
//! * [`cache`] — the bounded LRU over quantized [`magma_model::JobSignature`]
//!   sets, with a nearest-key probe for near-matching groups (threshold
//!   calibrated by [`sweep`]), serde persistence (`MAGMA_SERVE_CACHE_PATH`
//!   makes restarts warm) and a fleet-wide [`cache::SharedCache`]
//!   tier with per-tenant quotas.
//! * [`dispatch`] — cold search vs adapt-then-refine as *steppable plans*
//!   (plan → session → complete), both through the parallel batch evaluator
//!   (`magma_optim::parallel`).
//! * [`sim`] — the deterministic event-driven virtual-clock loop, in two
//!   modes: **overlap** (default; a group's search advances in budget
//!   slices through `magma_optim`'s [`SearchSession`](magma_optim::SearchSession)
//!   API while the previous group executes, with mapper cost charged from
//!   measured per-step samples) and **legacy** (the serial baseline).
//! * [`metrics`] — the latency/throughput/SLA pipeline, with per-tenant SLA
//!   contracts.
//! * [`report`] — the schema-stable `BENCH_serve.json` contract
//!   (`magma-serve/v3`: both serving modes plus their end-to-end
//!   comparison and the embedded scenario descriptor, self-checked by
//!   [`ServeReport::validate`](report::ServeReport::validate)).
//! * [`sweep`] — the epsilon × refine-budget × quantization calibration
//!   sweep behind `BENCH_cache.json` (`magma-cache/v2`), whose frontier
//!   justifies the shipped cache defaults.
//! * [`descriptor`] — the self-describing
//!   [`ScenarioDescriptor`] every report
//!   embeds, and the [`CustomScenario`] value
//!   the scenario registry (`magma-registry`) resolves scenario files into.
//!
//! # Fleet serving
//!
//! Above the single-queue loop sits the **fleet** layer — N platform
//! shards behind a signature-affine router, each time-sharing its mapper
//! across many live searches:
//!
//! * [`router`] — sticky signature-affinity placement with
//!   least-loaded/lowest-index fallback.
//! * [`scheduler`] — the per-shard concurrent session scheduler: uniform
//!   round-robin or deadline-aware (EDF + urgency-sized slices), with
//!   deadline and value **preemption** (early `finish()` of live sessions).
//! * [`fleet`] — the global event loop gluing trace → batcher → router →
//!   shards (with an optional shared cache tier and per-shard cache
//!   persistence), plus the schema-stable `BENCH_fleet.json`
//!   scaling-ladder report (`magma-fleet/v3`, self-checked by
//!   [`FleetReport::validate`](fleet::FleetReport::validate)).
//!
//! # Paper cross-references
//!
//! | Paper artefact | Here |
//! |---|---|
//! | Sections I & III (multi-tenant job streams, groups) | [`trace`], [`batcher`] |
//! | Section V-C / Table V (solution transfer to similar groups) | [`cache`], [`dispatch`] |
//! | Section IV (M3E as the per-group mapping engine) | [`dispatch`] |
//!
//! # Determinism
//!
//! A simulation is a pure function of `(SimConfig, TenantMix)`: virtual
//! clock only, seeded RNG only, and candidate evaluation through the
//! order-stable parallel batch oracle — so `BENCH_serve.json` is
//! bit-identical at every `MAGMA_THREADS` setting (locked down by
//! `tests/integration_serve.rs`).
//!
//! # Example
//!
//! ```
//! use magma_platform::settings::ServeKnobs;
//! use magma_serve::report::run_standard_scenarios;
//!
//! let knobs = ServeKnobs { requests: 32, cold_budget: 30, refine_budget: 3,
//!                          ..ServeKnobs::smoke() };
//! let report = run_standard_scenarios(&knobs, true);
//! assert_eq!(report.schema, magma_serve::report::SCHEMA);
//! assert!(report.scenarios.iter().all(|s| s.metrics.jobs == 32));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batcher;
pub mod cache;
pub mod descriptor;
pub mod dispatch;
pub mod engine;
pub mod fleet;
pub mod metrics;
pub mod report;
pub mod router;
pub mod scheduler;
pub mod sim;
pub mod sweep;
pub mod trace;

pub use batcher::{AdmissionBatcher, BatchPolicy, DispatchGroup};
pub use cache::{quantize_signatures, CacheStats, MappingCache, SharedCache, SignatureKey};
pub use descriptor::{CustomScenario, ScenarioDescriptor};
pub use dispatch::{DispatchConfig, DispatchKind, DispatchOutcome, MappingService};
pub use engine::{Admission, EngineConfig, EngineStats, JobCompletion, ServeEngine};
pub use fleet::{
    fleet_simulate, run_fleet_custom, run_fleet_ladder, write_fleet_json, FleetConfig, FleetReport,
    FleetResult, FLEET_SCHEMA,
};
pub use metrics::{LatencyStats, ServeMetrics};
pub use report::{run_custom_scenario, run_standard_scenarios, ServeReport, SCHEMA};
pub use router::{RouterStats, ShardRouter};
pub use scheduler::{SchedStats, SchedulerConfig, SessionScheduler};
pub use sim::{simulate, SimConfig, SimResult};
pub use sweep::{
    run_cache_sweep, run_cache_sweep_custom, write_cache_json, CacheSweepReport, CACHE_SCHEMA,
};
pub use trace::{generate_trace, Arrival, Scenario, TraceParams};
