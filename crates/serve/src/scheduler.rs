//! The concurrent session scheduler: many live searches time-sharing one
//! shard's mapper.
//!
//! The single-queue simulator ([`crate::sim`]) holds at most one search at a
//! time; a fleet shard holds up to `max_live` detached
//! [`magma_optim::SessionState`]s and multiplexes its mapper
//! across them in slices. Two policies ([`FleetPolicy`], knob
//! `MAGMA_FLEET_POLICY`):
//!
//! * **Uniform** — round-robin selection, a fixed slice per step, no
//!   preemption. With one shard and `max_live = 1` this is exactly the
//!   single-queue overlap loop, which is what the fleet-vs-sim equivalence
//!   test pins down.
//! * **Deadline** (default) — earliest-deadline-first selection with
//!   *deadline-aware slice sizing*: a session's slice grows with its
//!   urgency — the fraction of its remaining headroom its remaining search
//!   would occupy — so a relaxed session trickles at `min_slice` (yielding
//!   the mapper to tighter ones) while a session about to miss sprints to
//!   its budget. When a session's deadline passes mid-search it is
//!   **preempted**: finished early with whatever it has evaluated, freeing
//!   the mapper instead of polishing a mapping that is already late.
//!
//! A third preemption lever is *value preemption* (knob
//! `MAGMA_FLEET_PREEMPT`, off at `0`): when every slot is full, an incoming
//! group whose value (tighter SLA contracts are worth more) is at least `preempt_margin`
//! times the cheapest live session's may evict it (early-finished, not
//! discarded — every admitted group still completes and executes).
//!
//! Early finishes build their outcome from the samples already evaluated,
//! so a victim must have evaluated at least one sample
//! ([`SearchOutcome`](magma_optim::SearchOutcome) panics on an empty
//! history). The scheduler guarantees this structurally: deadline
//! preemption only fires on sessions with `spent > 0` (an expired session
//! that never ran gets one `min_slice` step first — the graceful
//! past-deadline-at-admission path), and value preemption only considers
//! victims with `spent > 0`.

use crate::batcher::DispatchGroup;
use crate::dispatch::SearchPlan;
use magma_m3e::M3e;
use magma_optim::SessionState;
use magma_platform::settings::FleetPolicy;
use rand::rngs::StdRng;

/// Positive floor applied to a session's deadline headroom before the
/// urgency division in deadline slice sizing — a picosecond, far below any
/// virtual-clock resolution the simulators use, so it only ever matters as
/// a division guard.
const MIN_HEADROOM_SEC: f64 = 1e-12;

/// Tuning of one shard's scheduler (derived from the `MAGMA_FLEET_*` knob
/// family by the fleet loop).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Selection + slicing policy.
    pub policy: FleetPolicy,
    /// Concurrent live-session capacity.
    pub max_live: usize,
    /// Fixed slice under [`FleetPolicy::Uniform`], in samples.
    pub base_slice: usize,
    /// Smallest slice under [`FleetPolicy::Deadline`] — also what an
    /// already-late session is clamped to, in samples.
    pub min_slice: usize,
    /// Value-preemption threshold; `0` disables value preemption.
    pub preempt_margin: f64,
    /// Virtual mapper cost per evaluated sample, in seconds (drives the
    /// urgency estimate).
    pub overhead_sec_per_sample: f64,
}

/// Lifecycle counters of one shard's scheduler.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Sessions admitted.
    pub admitted: u64,
    /// Sessions that ran to their full budget (or search exhaustion).
    pub completed: u64,
    /// Sessions early-finished because their deadline passed.
    pub preempted_deadline: u64,
    /// Sessions early-finished to make room for a higher-value group.
    pub preempted_value: u64,
    /// Sessions admitted with their deadline already in the past.
    pub late_admissions: u64,
    /// Deadline-policy steps clamped to `min_slice` because the session's
    /// headroom was already gone.
    pub min_slice_clamps: u64,
}

impl SchedStats {
    /// Total early finishes, both preemption kinds.
    pub fn preemptions(&self) -> u64 {
        self.preempted_deadline + self.preempted_value
    }
}

/// One live search: the owned state of a dispatched group mid-search, plus
/// the bookkeeping the policies rank it by.
pub struct LiveSession {
    pub(crate) id: u64,
    pub(crate) group: DispatchGroup,
    pub(crate) plan: SearchPlan,
    pub(crate) problem: M3e,
    pub(crate) rng: StdRng,
    pub(crate) state: Box<dyn SessionState>,
    pub(crate) budget: usize,
    /// Earliest per-job SLA expiry across the group's arrivals.
    pub(crate) deadline_sec: f64,
    /// Σ over arrivals of `1 / sla_multiplier` — tighter contracts are
    /// worth more.
    pub(crate) value: f64,
}

impl LiveSession {
    /// Samples evaluated so far.
    pub(crate) fn spent(&self) -> usize {
        self.state.spent()
    }

    /// Samples left before the nominal budget is exhausted.
    pub(crate) fn remaining(&self) -> usize {
        self.budget.saturating_sub(self.state.spent())
    }
}

/// What one scheduler step did (the fleet loop matches on this to advance
/// its clocks and complete finished groups).
pub(crate) enum SchedStep {
    /// No live session to step.
    Idle,
    /// Stepped the selected session; it stays live.
    Progress {
        /// Samples the step actually evaluated.
        spent: usize,
    },
    /// The selected session left the scheduler — budget done, search
    /// exhausted, or deadline-preempted. The caller finishes and executes
    /// it.
    Finished {
        /// The departing session, boxed to keep the step enum small.
        session: Box<LiveSession>,
        /// Samples the finishing step evaluated (`0` on a deadline
        /// preemption, which removes the session without stepping it) — the
        /// caller still owes the mapper this much time.
        spent: usize,
        /// True when the session was early-finished past its deadline.
        preempted: bool,
    },
}

/// The per-shard scheduler. See the module docs for the policies.
pub struct SessionScheduler {
    config: SchedulerConfig,
    live: Vec<LiveSession>,
    rr_cursor: usize,
    stats: SchedStats,
}

impl SessionScheduler {
    /// Creates an empty scheduler.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate config (zero capacity or slice sizes, a
    /// non-finite margin or overhead).
    pub fn new(config: SchedulerConfig) -> Self {
        assert!(config.max_live > 0, "a shard needs at least one live-session slot");
        assert!(config.base_slice > 0 && config.min_slice > 0, "slices must be non-zero");
        assert!(config.preempt_margin >= 0.0, "the preemption margin must be non-negative");
        assert!(
            config.overhead_sec_per_sample.is_finite() && config.overhead_sec_per_sample >= 0.0,
            "the mapper overhead must be finite and non-negative"
        );
        SessionScheduler { config, live: Vec::new(), rr_cursor: 0, stats: SchedStats::default() }
    }

    /// Live session count.
    pub fn live(&self) -> usize {
        self.live.len()
    }

    /// Whether a session can be admitted without preempting.
    pub fn has_room(&self) -> bool {
        self.live.len() < self.config.max_live
    }

    /// Lifecycle counters so far.
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// The shard's mapper backlog in samples (the router's load measure):
    /// total remaining budget across live sessions.
    pub fn backlog(&self) -> f64 {
        self.live.iter().map(|s| s.remaining()).sum::<usize>() as f64
    }

    /// Admits a session. A deadline already in the past is tolerated — the
    /// session is counted late and will be stepped once at `min_slice`, then
    /// deadline-preempted — never a panic, never a busy spin.
    ///
    /// # Panics
    ///
    /// Panics when the scheduler is full (the fleet loop gates cuts on
    /// [`has_room`](SessionScheduler::has_room) or preempts first).
    pub(crate) fn admit(&mut self, session: LiveSession, now_sec: f64) {
        assert!(self.has_room(), "admit called on a full scheduler");
        self.stats.admitted += 1;
        if session.deadline_sec <= now_sec {
            self.stats.late_admissions += 1;
        }
        self.live.push(session);
    }

    /// The value of the cheapest value-preemptable live session (one that
    /// has evaluated at least one sample), if any — what an incoming group
    /// must out-value by the margin.
    pub(crate) fn preemptable_value(&self) -> Option<f64> {
        self.victim_index().map(|i| self.live[i].value)
    }

    /// Removes the live session with `id`, if any — the wall-clock engine's
    /// cancellation path ([`crate::engine`]). The departing session is not
    /// counted as completed or preempted; the caller owns its accounting.
    pub(crate) fn remove_by_id(&mut self, id: u64) -> Option<LiveSession> {
        let idx = self.live.iter().position(|s| s.id == id)?;
        Some(self.remove(idx))
    }

    /// Early-finishes the cheapest preemptable session to make room.
    ///
    /// # Panics
    ///
    /// Panics if no live session has evaluated a sample yet; callers gate on
    /// [`preemptable_value`](SessionScheduler::preemptable_value).
    pub(crate) fn preempt_lowest_value(&mut self) -> LiveSession {
        let idx = self.victim_index().expect("a preemptable live session");
        self.stats.preempted_value += 1;
        self.remove(idx)
    }

    /// Runs one scheduling decision at virtual time `now_sec`: selects a
    /// session (round-robin or EDF), preempts it if its deadline has passed
    /// (and it can be finished), otherwise steps it by the policy's slice.
    pub(crate) fn step(&mut self, now_sec: f64) -> SchedStep {
        if self.live.is_empty() {
            return SchedStep::Idle;
        }
        let idx = self.select();
        let expired = self.config.policy == FleetPolicy::Deadline
            && now_sec >= self.live[idx].deadline_sec
            && self.live[idx].spent() > 0;
        if expired {
            self.stats.preempted_deadline += 1;
            return SchedStep::Finished {
                session: Box::new(self.remove(idx)),
                spent: 0,
                preempted: true,
            };
        }
        let slice = self.slice_for(idx, now_sec);
        let session = &mut self.live[idx];
        let report = session.state.step(&session.problem, &mut session.rng, slice);
        self.rr_cursor = self.rr_cursor.wrapping_add(1);
        if report.spent == 0 || self.live[idx].remaining() == 0 {
            self.stats.completed += 1;
            SchedStep::Finished {
                session: Box::new(self.remove(idx)),
                spent: report.spent,
                preempted: false,
            }
        } else {
            SchedStep::Progress { spent: report.spent }
        }
    }

    /// The index the policy would step next: round-robin under Uniform, the
    /// earliest deadline (ties to the oldest admission) under Deadline.
    fn select(&self) -> usize {
        match self.config.policy {
            FleetPolicy::Uniform => self.rr_cursor % self.live.len(),
            FleetPolicy::Deadline => self
                .live
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.deadline_sec
                        .partial_cmp(&b.deadline_sec)
                        .expect("deadlines are finite")
                        .then(a.id.cmp(&b.id))
                })
                .map(|(i, _)| i)
                .expect("live is non-empty"),
        }
    }

    /// The slice the selected session gets at `now_sec`.
    fn slice_for(&mut self, idx: usize, now_sec: f64) -> usize {
        let session = &self.live[idx];
        let remaining = session.remaining().max(1);
        match self.config.policy {
            FleetPolicy::Uniform => self.config.base_slice.min(remaining),
            FleetPolicy::Deadline => {
                let headroom = session.deadline_sec - now_sec;
                if headroom <= 0.0 {
                    // Already late: spend the floor, no more — the next
                    // selection preempts it. This branch, not the division
                    // below, must absorb every non-positive headroom.
                    self.stats.min_slice_clamps += 1;
                    self.config.min_slice.min(remaining)
                } else {
                    // Urgency = fraction of the headroom the rest of the
                    // search would occupy; 1 means "sprint to the budget".
                    // The headroom is positive here but can be arbitrarily
                    // tiny, so it is floored before the division and the
                    // ratio clamped into (0, 1] — no sub-floor headroom or
                    // zero per-sample overhead can yield an infinite, NaN
                    // or zero slice scale.
                    let headroom = headroom.max(MIN_HEADROOM_SEC);
                    let cost = remaining as f64 * self.config.overhead_sec_per_sample;
                    let urgency = (cost / headroom).clamp(f64::MIN_POSITIVE, 1.0);
                    debug_assert!(
                        urgency > 0.0 && urgency <= 1.0,
                        "urgency must lie in (0, 1], got {urgency}"
                    );
                    let sized = (remaining as f64 * urgency).ceil() as usize;
                    sized.max(self.config.min_slice).min(remaining)
                }
            }
        }
    }

    /// The cheapest live session that can be early-finished: minimum value,
    /// ties to the oldest admission, among sessions with `spent > 0`.
    fn victim_index(&self) -> Option<usize> {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, s)| s.spent() > 0)
            .min_by(|(_, a), (_, b)| {
                a.value.partial_cmp(&b.value).expect("values are finite").then(a.id.cmp(&b.id))
            })
            .map(|(i, _)| i)
    }

    /// Removes a live session, keeping the round-robin cursor aligned.
    fn remove(&mut self, idx: usize) -> LiveSession {
        if !self.live.is_empty() {
            let len = self.live.len();
            let cursor = self.rr_cursor % len;
            if cursor > idx {
                self.rr_cursor = cursor - 1;
            } else {
                self.rr_cursor = cursor;
            }
        }
        self.live.remove(idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{DispatchConfig, MappingService};
    use crate::trace::Arrival;
    use magma_m3e::Objective;
    use magma_model::{Group, Job, JobId, LayerShape, TaskType};
    use magma_platform::{settings, Setting};
    use rand::SeedableRng;

    fn config(policy: FleetPolicy) -> SchedulerConfig {
        SchedulerConfig {
            policy,
            max_live: 4,
            base_slice: 8,
            min_slice: 4,
            preempt_margin: 0.0,
            overhead_sec_per_sample: 1e-6,
        }
    }

    fn live(id: u64, budget: usize, deadline_sec: f64, value: f64) -> LiveSession {
        let job = Job::new(
            JobId(0),
            "m",
            0,
            LayerShape::FullyConnected { out_features: 64, in_features: 64 },
            4,
            TaskType::Recommendation,
        );
        let problem = M3e::new(
            settings::build(Setting::S1),
            Group::new(vec![job.clone()]),
            Objective::Throughput,
        );
        let mut service = MappingService::new(DispatchConfig::new(budget, 4, 1.0, 4));
        let mut rng = StdRng::seed_from_u64(id);
        let plan = service.plan_group(&problem, &mut rng);
        let state = service.open_search(&plan, &problem, &mut rng);
        let group = DispatchGroup {
            arrivals: vec![Arrival { time_sec: 0.0, tenant: 0, job }],
            formed_at_sec: 0.0,
        };
        LiveSession { id, group, plan, problem, rng, state, budget, deadline_sec, value }
    }

    #[test]
    fn uniform_round_robins_across_live_sessions() {
        let mut sched = SessionScheduler::new(config(FleetPolicy::Uniform));
        sched.admit(live(0, 64, 1.0, 1.0), 0.0);
        sched.admit(live(1, 64, 1.0, 1.0), 0.0);
        // Two steps must touch both sessions: after one step each, both have
        // spent > 0.
        assert!(matches!(sched.step(0.0), SchedStep::Progress { .. }));
        assert!(matches!(sched.step(0.0), SchedStep::Progress { .. }));
        assert_eq!(sched.live(), 2);
        assert!(sched.live.iter().all(|s| s.spent() > 0), "round-robin touches every session");
    }

    #[test]
    fn uniform_runs_to_budget_and_completes() {
        let mut sched = SessionScheduler::new(SchedulerConfig {
            base_slice: 1024,
            max_live: 1,
            ..config(FleetPolicy::Uniform)
        });
        sched.admit(live(0, 32, 1.0, 1.0), 0.0);
        match sched.step(0.0) {
            SchedStep::Finished { session, spent, preempted } => {
                assert!(!preempted);
                assert_eq!(spent, 32, "the finishing step reports its own cost");
                assert_eq!(session.spent(), 32);
            }
            _ => panic!("a budget-sized slice finishes in one step"),
        }
        assert_eq!(sched.stats().completed, 1);
        assert_eq!(sched.stats().preemptions(), 0);
    }

    #[test]
    fn edf_selects_the_earliest_deadline_and_preempts_it_when_expired() {
        let mut sched = SessionScheduler::new(config(FleetPolicy::Deadline));
        sched.admit(live(0, 256, 10.0, 1.0), 0.0);
        sched.admit(live(1, 256, 0.5, 1.0), 0.0);
        // The tight session (id 1) is selected and stepped first.
        assert!(matches!(sched.step(0.0), SchedStep::Progress { .. }));
        let spent_tight = sched.backlog();
        assert!(spent_tight < 512.0);
        // Past its deadline it is preempted — early-finished with what it
        // has, mid-budget.
        match sched.step(0.6) {
            SchedStep::Finished { session, spent, preempted } => {
                assert!(preempted);
                assert_eq!(spent, 0, "a deadline preemption does not step the session");
                assert_eq!(session.id, 1);
                assert!(session.spent() > 0 && session.spent() < 256);
            }
            _ => panic!("an expired session must be preempted"),
        }
        assert_eq!(sched.stats().preempted_deadline, 1);
    }

    #[test]
    fn late_admission_degrades_to_min_slice_then_preempts() {
        let mut sched = SessionScheduler::new(config(FleetPolicy::Deadline));
        // Deadline already in the past at admission: tolerated, counted.
        sched.admit(live(0, 256, 1.0, 1.0), 5.0);
        assert_eq!(sched.stats().late_admissions, 1);
        // First step is clamped to the minimum slice (never a spin, never a
        // panic)...
        match sched.step(5.0) {
            SchedStep::Progress { spent } => assert!((1..=4).contains(&spent), "spent {spent}"),
            _ => panic!("a late session still gets its floor step"),
        }
        assert!(sched.stats().min_slice_clamps >= 1);
        // ...and the next selection finishes it early with a usable outcome.
        match sched.step(5.0) {
            SchedStep::Finished { session, preempted, .. } => {
                assert!(preempted);
                let outcome = session.state.finish();
                assert!(outcome.history.num_samples() > 0);
            }
            _ => panic!("a late session is preempted at its next selection"),
        }
    }

    #[test]
    fn deadline_slice_sizing_survives_every_headroom_edge() {
        // (a) Exactly at the deadline (headroom == 0): the clamp branch, not
        // the division, must absorb it — floor slice, clamp counted.
        let mut sched = SessionScheduler::new(config(FleetPolicy::Deadline));
        sched.admit(live(0, 256, 5.0, 1.0), 0.0);
        match sched.step(5.0) {
            SchedStep::Progress { spent } => assert_eq!(spent, 4, "the min_slice floor"),
            _ => panic!("an at-deadline session still gets its floor step"),
        }
        assert_eq!(sched.stats().min_slice_clamps, 1);

        // (b) Vanishingly small positive headroom: urgency saturates at 1
        // (never infinite or NaN) and the slice sprints to the remaining
        // budget in one finite step.
        let mut sched = SessionScheduler::new(config(FleetPolicy::Deadline));
        sched.admit(live(0, 64, 5.0, 1.0), 0.0);
        match sched.step(5.0 - 1e-15) {
            SchedStep::Finished { preempted, .. } => assert!(!preempted, "ran to budget"),
            SchedStep::Progress { spent } => panic!("expected a full-budget sprint, got {spent}"),
            SchedStep::Idle => panic!("a session was admitted"),
        }
        assert_eq!(sched.stats().min_slice_clamps, 0, "positive headroom never clamps");

        // (c) Zero per-sample overhead: urgency is floored into (0, 1]
        // instead of collapsing to 0, and the slice lands on the floor.
        let mut sched = SessionScheduler::new(SchedulerConfig {
            overhead_sec_per_sample: 0.0,
            ..config(FleetPolicy::Deadline)
        });
        sched.admit(live(0, 256, 1000.0, 1.0), 0.0);
        match sched.step(0.0) {
            SchedStep::Progress { spent } => assert_eq!(spent, 4, "a relaxed session trickles"),
            _ => panic!("a relaxed session must progress at the floor slice"),
        }
    }

    #[test]
    fn value_preemption_evicts_the_cheapest_started_session() {
        // Uniform so round-robin starts both sessions; value preemption
        // itself is policy-independent.
        let mut sched = SessionScheduler::new(SchedulerConfig {
            max_live: 2,
            preempt_margin: 2.0,
            ..config(FleetPolicy::Uniform)
        });
        sched.admit(live(0, 256, 10.0, 3.0), 0.0);
        sched.admit(live(1, 256, 11.0, 1.0), 0.0);
        // Nothing has run yet: no preemptable victim (an empty history
        // cannot be finished).
        assert_eq!(sched.preemptable_value(), None);
        assert!(matches!(sched.step(0.0), SchedStep::Progress { .. }));
        assert!(matches!(sched.step(0.0), SchedStep::Progress { .. }));
        // Both started: the cheapest (id 1, value 1.0) is the victim.
        assert_eq!(sched.preemptable_value(), Some(1.0));
        let victim = sched.preempt_lowest_value();
        assert_eq!(victim.id, 1);
        assert!(victim.spent() > 0);
        assert_eq!(sched.stats().preempted_value, 1);
        assert!(sched.has_room());
    }

    #[test]
    #[should_panic(expected = "full scheduler")]
    fn admitting_past_capacity_panics() {
        let mut sched =
            SessionScheduler::new(SchedulerConfig { max_live: 1, ..config(FleetPolicy::Uniform) });
        sched.admit(live(0, 16, 1.0, 1.0), 0.0);
        sched.admit(live(1, 16, 1.0, 1.0), 0.0);
    }
}
