//! The signature-keyed mapping cache: a bounded LRU from quantized
//! [`JobSignature`] sets to stored solutions.
//!
//! PR 2 established that solved mappings transfer to *similar* job groups
//! (Table V); this cache turns that property into an online win. A dispatch
//! group is keyed by the **sorted multiset of its quantized job signatures**
//! — layer class, task and log-scale magnitude buckets — so two groups whose
//! jobs are pairwise similar (whatever their order) share a key. A hit hands
//! back a [`StoredSolution`] whose mapping is adapted via profile matching
//! and refined with a small budget; a miss triggers a full MAGMA search
//! whose result is inserted for the next recurrence.
//!
//! The cache is a bounded LRU: lookups and insertions mark an entry most
//! recently used; inserting beyond the capacity evicts the least recently
//! used entry. [`CacheStats`] counts hits, misses, insertions and evictions
//! for the metrics pipeline.

use magma_m3e::{LruOrder, StoredSolution};
use magma_model::{JobSignature, LayerClass, TaskType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One job signature, quantized to log-scale magnitude buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuantizedSignature {
    /// Task category (exact).
    pub task: TaskType,
    /// Layer class (exact).
    pub class: LayerClass,
    /// `ln(1 + macs) / step`, rounded.
    pub macs_bucket: u32,
    /// `ln(1 + weight_elems) / step`, rounded.
    pub weights_bucket: u32,
    /// `ln(1 + activation_elems) / step`, rounded.
    pub activations_bucket: u32,
}

/// The cache key of a dispatch group: its quantized signatures as a sorted
/// multiset (order-insensitive by construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignatureKey(Vec<QuantizedSignature>);

impl SignatureKey {
    /// Number of jobs behind the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key covers no jobs (never true for a quantized group).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Quantizes a group's signatures into its cache key. `step` is the
/// log-scale bucket width in nats: jobs whose MACs (or weight / activation
/// footprints) differ by less than `e^step` land in the same bucket.
///
/// # Panics
///
/// Panics if `step` is not finite and positive.
pub fn quantize_signatures(sigs: &[JobSignature], step: f64) -> SignatureKey {
    assert!(step.is_finite() && step > 0.0, "quantization step must be finite and positive");
    let bucket = |x: u64| ((1.0 + x as f64).ln() / step).round() as u32;
    let mut quantized: Vec<QuantizedSignature> = sigs
        .iter()
        .map(|s| QuantizedSignature {
            task: s.task(),
            class: s.class(),
            macs_bucket: bucket(s.macs()),
            weights_bucket: bucket(s.weight_elems()),
            activations_bucket: bucket(s.activation_elems()),
        })
        .collect();
    quantized.sort_unstable();
    SignatureKey(quantized)
}

/// Hit/miss/eviction counters of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Insertions (fresh keys and replacements).
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded LRU mapping cache. Recency bookkeeping is the shared
/// [`magma_m3e::LruOrder`] (the same machinery bounding
/// [`magma_m3e::SolutionHistory`]).
#[derive(Debug, Clone)]
pub struct MappingCache {
    capacity: usize,
    entries: HashMap<SignatureKey, StoredSolution>,
    /// Recency order; always lists exactly the keys of `entries`.
    recency: LruOrder<SignatureKey>,
    stats: CacheStats,
}

impl MappingCache {
    /// Creates an empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a mapping cache must hold at least one entry");
        MappingCache {
            capacity,
            entries: HashMap::new(),
            recency: LruOrder::new(),
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks `key` up, counting a hit or miss and marking a hit entry most
    /// recently used.
    pub fn lookup(&mut self, key: &SignatureKey) -> Option<&StoredSolution> {
        if self.entries.contains_key(key) {
            self.stats.hits += 1;
            self.recency.bump(key);
            self.entries.get(key)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Inserts (or replaces) the entry for `key`, marks it most recently
    /// used and evicts the least recently used entry when over capacity.
    pub fn insert(&mut self, key: SignatureKey, solution: StoredSolution) {
        self.stats.insertions += 1;
        self.entries.insert(key.clone(), solution);
        self.recency.bump(&key);
        while self.entries.len() > self.capacity {
            let lru = self.recency.pop_lru().expect("recency tracks every entry");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::Mapping;
    use magma_model::{TaskType, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(task: TaskType, n: usize, seed: u64) -> SignatureKey {
        quantize_signatures(&WorkloadSpec::single_group(task, n, seed).signatures(), 1.0)
    }

    fn solution(n: usize, seed: u64) -> StoredSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        StoredSolution::new(Mapping::random(&mut rng, n, 4), None)
    }

    #[test]
    fn key_is_order_insensitive_and_seed_sensitive() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 16, 3);
        let sigs = group.signatures();
        let reversed: Vec<_> = sigs.iter().rev().copied().collect();
        assert_eq!(quantize_signatures(&sigs, 1.0), quantize_signatures(&reversed, 1.0));
        // Different workloads (almost surely) produce different keys.
        assert_ne!(key(TaskType::Vision, 16, 0), key(TaskType::Language, 16, 0));
    }

    #[test]
    fn coarser_steps_merge_nearby_magnitudes() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 12, 1);
        let sigs = group.signatures();
        let fine = quantize_signatures(&sigs, 1e-6);
        let coarse = quantize_signatures(&sigs, 50.0);
        assert_eq!(fine.len(), 12);
        assert_eq!(coarse.len(), 12);
        // At an absurdly coarse step every magnitude bucket collapses, so
        // the key degenerates to (task, class) pairs.
        assert!(coarse.0.iter().all(|q| q.macs_bucket <= 1));
        // At a fine step distinct layers keep distinct buckets.
        let mut fine_buckets: Vec<u32> = fine.0.iter().map(|q| q.macs_bucket).collect();
        fine_buckets.dedup();
        assert!(fine_buckets.len() > 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = MappingCache::new(2);
        let (a, b, c) =
            (key(TaskType::Vision, 8, 0), key(TaskType::Language, 8, 0), key(TaskType::Mix, 8, 0));
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(b.clone(), solution(8, 1));
        // Touch `a` so `b` becomes LRU.
        assert!(cache.lookup(&a).is_some());
        cache.insert(c.clone(), solution(8, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&b).is_none(), "b was LRU and must be evicted");
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn replacement_does_not_grow_or_evict() {
        let mut cache = MappingCache::new(2);
        let a = key(TaskType::Vision, 8, 0);
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(a.clone(), solution(8, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let mut cache = MappingCache::new(4);
        let a = key(TaskType::Vision, 8, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.lookup(&a).is_none());
        cache.insert(a.clone(), solution(8, 0));
        assert!(cache.lookup(&a).is_some());
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MappingCache::new(0);
    }
}
