//! The signature-keyed mapping cache: a bounded LRU from quantized
//! [`JobSignature`] sets to stored solutions.
//!
//! PR 2 established that solved mappings transfer to *similar* job groups
//! (Table V); this cache turns that property into an online win. A dispatch
//! group is keyed by the **sorted multiset of its quantized job signatures**
//! — layer class, task and log-scale magnitude buckets — so two groups whose
//! jobs are pairwise similar (whatever their order) share a key. A hit hands
//! back a [`StoredSolution`] whose mapping is adapted via profile matching
//! and refined with a small budget; a miss triggers a full MAGMA search
//! whose result is inserted for the next recurrence.
//!
//! The cache is a bounded LRU: lookups and insertions mark an entry most
//! recently used; inserting beyond the capacity evicts the least recently
//! used entry. [`CacheStats`] counts hits, misses, insertions and evictions
//! for the metrics pipeline.
//!
//! The whole cache round-trips through serde ([`MappingCache::save`] /
//! [`MappingCache::load`], behind the `MAGMA_SERVE_CACHE_PATH` knob) so a
//! serve or fleet restart starts warm: entries, LRU order *and* counters
//! survive byte-for-byte.

use magma_m3e::{LruOrder, StoredSolution};
use magma_model::{JobSignature, LayerClass, TaskType};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::HashMap;
use std::path::Path;

/// One job signature, quantized to log-scale magnitude buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuantizedSignature {
    /// Task category (exact).
    pub task: TaskType,
    /// Layer class (exact).
    pub class: LayerClass,
    /// `ln(1 + macs) / step`, rounded.
    pub macs_bucket: u32,
    /// `ln(1 + weight_elems) / step`, rounded.
    pub weights_bucket: u32,
    /// `ln(1 + activation_elems) / step`, rounded.
    pub activations_bucket: u32,
}

/// The cache key of a dispatch group: its quantized signatures as a sorted
/// multiset (order-insensitive by construction). Serializes transparently
/// as the signature array.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SignatureKey(Vec<QuantizedSignature>);

impl SignatureKey {
    /// Number of jobs behind the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key covers no jobs (never true for a quantized group).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Quantizes a group's signatures into its cache key. `step` is the
/// log-scale bucket width in nats: jobs whose MACs (or weight / activation
/// footprints) differ by less than `e^step` land in the same bucket.
///
/// # Panics
///
/// Panics if `step` is not finite and positive.
pub fn quantize_signatures(sigs: &[JobSignature], step: f64) -> SignatureKey {
    assert!(step.is_finite() && step > 0.0, "quantization step must be finite and positive");
    let bucket = |x: u64| ((1.0 + x as f64).ln() / step).round() as u32;
    let mut quantized: Vec<QuantizedSignature> = sigs
        .iter()
        .map(|s| QuantizedSignature {
            task: s.task(),
            class: s.class(),
            macs_bucket: bucket(s.macs()),
            weights_bucket: bucket(s.weight_elems()),
            activations_bucket: bucket(s.activation_elems()),
        })
        .collect();
    quantized.sort_unstable();
    SignatureKey(quantized)
}

/// Hit/miss/eviction counters of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry (exact-key and nearest-key combined).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// The subset of `hits` served by the nearest-key probe
    /// ([`MappingCache::lookup_near`]) rather than an exact key match.
    pub near_hits: u64,
    /// Insertions (fresh keys and replacements).
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded LRU mapping cache. Recency bookkeeping is the shared
/// [`magma_m3e::LruOrder`] (the same machinery bounding
/// [`magma_m3e::SolutionHistory`]).
#[derive(Debug, Clone)]
pub struct MappingCache {
    capacity: usize,
    entries: HashMap<SignatureKey, StoredSolution>,
    /// Recency order; always lists exactly the keys of `entries`.
    recency: LruOrder<SignatureKey>,
    stats: CacheStats,
}

impl MappingCache {
    /// Creates an empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a mapping cache must hold at least one entry");
        MappingCache {
            capacity,
            entries: HashMap::new(),
            recency: LruOrder::new(),
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Whether `key` is cached, **without** counting a lookup or touching
    /// recency — the peek behind shared-tier-aware routing.
    pub fn contains_key(&self, key: &SignatureKey) -> bool {
        self.entries.contains_key(key)
    }

    /// The cached keys in recency order, least recently used first.
    pub fn keys_by_recency(&self) -> &[SignatureKey] {
        self.recency.as_slice()
    }

    /// Removes the entry for `key` (counted as an eviction when present).
    pub fn remove(&mut self, key: &SignatureKey) -> Option<StoredSolution> {
        let removed = self.entries.remove(key);
        if removed.is_some() {
            self.recency.remove(key);
            self.stats.evictions += 1;
        }
        removed
    }

    /// Looks `key` up, counting a hit or miss and marking a hit entry most
    /// recently used.
    pub fn lookup(&mut self, key: &SignatureKey) -> Option<&StoredSolution> {
        if self.entries.contains_key(key) {
            self.stats.hits += 1;
            self.recency.bump(key);
            self.entries.get(key)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks `key` up with a nearest-key fallback: on an exact-key miss, the
    /// stored entry with the minimum **mean per-job [`JobSignature`]
    /// distance** to `sigs` is served as a *near hit* if that mean is at
    /// most `epsilon` (each of the group's signatures is matched to its
    /// nearest stored signature — a cheap non-bijective proxy for the full
    /// assignment the adaptation itself performs). `epsilon <= 0` disables
    /// the probe, making this exactly [`MappingCache::lookup`].
    ///
    /// Only entries that stored signatures for the *same group size* are
    /// candidates, so the adapted mapping always covers the group one-job-
    /// to-one-job. The tie-break is explicit: minimum mean distance first,
    /// then the **most recently used** entry among equal distances. Keying
    /// the winner on recency rank (not scan order) means evictions,
    /// re-insertions or a [`MappingCache::load`] of a persisted cache can
    /// never silently change which entry serves a tie. This is what lets
    /// mixed-tenant traffic — whose quantized signature multisets essentially
    /// never repeat exactly — still reuse solved mappings of *similar*
    /// groups.
    pub fn lookup_near(
        &mut self,
        key: &SignatureKey,
        sigs: &[JobSignature],
        epsilon: f64,
    ) -> Option<&StoredSolution> {
        if epsilon <= 0.0 || self.entries.contains_key(key) {
            return self.lookup(key);
        }
        // Best candidate as (mean distance, recency rank). The recency slice
        // is LRU-first, so a *higher* rank is *more* recently used.
        let mut best: Option<(f64, usize)> = None;
        for (rank, stored_key) in self.recency.as_slice().iter().enumerate() {
            let stored = &self.entries[stored_key];
            let Some(stored_sigs) = stored.signatures() else { continue };
            if stored_sigs.len() != sigs.len() {
                continue;
            }
            let total: f64 = sigs
                .iter()
                .map(|s| stored_sigs.iter().map(|t| s.distance(t)).fold(f64::INFINITY, f64::min))
                .sum();
            let mean = total / sigs.len().max(1) as f64;
            if mean <= epsilon && best.is_none_or(|(bd, br)| mean < bd || (mean == bd && rank > br))
            {
                best = Some((mean, rank));
            }
        }
        match best {
            Some((_, rank)) => {
                let near_key = self.recency.as_slice()[rank].clone();
                self.stats.hits += 1;
                self.stats.near_hits += 1;
                self.recency.bump(&near_key);
                self.entries.get(&near_key)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `key`, marks it most recently
    /// used and evicts the least recently used entry when over capacity.
    pub fn insert(&mut self, key: SignatureKey, solution: StoredSolution) {
        self.stats.insertions += 1;
        self.entries.insert(key.clone(), solution);
        self.recency.bump(&key);
        while self.entries.len() > self.capacity {
            let lru = self.recency.pop_lru().expect("recency tracks every entry");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }

    /// Re-bounds the cache to `capacity`, evicting least recently used
    /// entries (counted in the stats) until it fits. Used when a persisted
    /// cache is installed under a configuration with a smaller capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn rebound(&mut self, capacity: usize) {
        assert!(capacity > 0, "a mapping cache must hold at least one entry");
        self.capacity = capacity;
        while self.entries.len() > self.capacity {
            let lru = self.recency.pop_lru().expect("recency tracks every entry");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }

    /// Writes the cache as pretty-printed JSON to `path` (the format behind
    /// `MAGMA_SERVE_CACHE_PATH`). Entries are emitted least recently used
    /// first, so LRU order — and with it every future eviction and near-hit
    /// tie-break — survives the round trip exactly, as do the counters.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = serde_json::to_string_pretty(self)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        std::fs::write(path, json + "\n")
    }

    /// Loads a cache previously written by [`MappingCache::save`].
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

// Hand-written because `SignatureKey` serializes as an array, which the
// generic map impls cannot use as a JSON object key: entries are emitted as
// a sequence of `[key, solution]` pairs in LRU→MRU order, which is exactly
// the information needed to rebuild both the hash map and the recency order.
impl Serialize for MappingCache {
    fn to_value(&self) -> Value {
        let entries: Vec<Value> = self
            .recency
            .as_slice()
            .iter()
            .map(|k| Value::Seq(vec![k.to_value(), self.entries[k].to_value()]))
            .collect();
        Value::Map(vec![
            ("capacity".to_string(), self.capacity.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("entries".to_string(), Value::Seq(entries)),
        ])
    }
}

impl Deserialize for MappingCache {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if v.as_map().is_none() {
            return Err(DeError::mismatch("object", v));
        }
        let capacity = usize::from_value(v.get("capacity"))
            .map_err(|e| DeError::custom(format!("field capacity: {e}")))?;
        if capacity == 0 {
            return Err(DeError::custom(
                "field capacity: a mapping cache holds at least one entry",
            ));
        }
        // Tolerate a missing stats block (counters restart at zero).
        let stats = match v.get("stats") {
            Value::Null => CacheStats::default(),
            other => CacheStats::from_value(other)
                .map_err(|e| DeError::custom(format!("field stats: {e}")))?,
        };
        let pairs = Vec::<(SignatureKey, StoredSolution)>::from_value(v.get("entries"))
            .map_err(|e| DeError::custom(format!("field entries: {e}")))?;
        if pairs.len() > capacity {
            return Err(DeError::custom(format!(
                "field entries: {} entries exceed the declared capacity {capacity}",
                pairs.len()
            )));
        }
        let mut cache =
            MappingCache { capacity, entries: HashMap::new(), recency: LruOrder::new(), stats };
        // Pairs are stored LRU-first; bumping in order reproduces the
        // recency order exactly.
        for (key, solution) in pairs {
            cache.entries.insert(key.clone(), solution);
            cache.recency.bump(&key);
        }
        Ok(cache)
    }
}

/// The fleet-wide shared cache tier sitting *behind* the per-shard
/// [`MappingCache`]s (`MAGMA_FLEET_SHARED_CACHE`).
///
/// A shard that misses its own cache falls through to this tier, so a
/// mapping solved on shard 2 warms a recurrence routed to shard 0 —
/// previously only the router's sticky affinity kept warm state reachable.
/// Inserts publish to both tiers. On top of the shared LRU sits a
/// **per-tenant quota** (`MAGMA_FLEET_TENANT_QUOTA`): each publishing
/// tenant may hold at most that many shared entries, so one chatty tenant
/// cannot monopolise the fleet tier; its own least recently used entry is
/// evicted first.
///
/// The tier lives on the fleet simulator's single-threaded event loop, so
/// determinism across `MAGMA_THREADS` is inherited, not re-proved.
#[derive(Debug, Clone)]
pub struct SharedCache {
    cache: MappingCache,
    tenant_quota: usize,
    /// Publishing tenant of each live entry (quota bookkeeping).
    owners: HashMap<SignatureKey, usize>,
}

impl SharedCache {
    /// Creates an empty shared tier bounded to `capacity` entries, with at
    /// most `tenant_quota` entries per publishing tenant (0 = no quota).
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize, tenant_quota: usize) -> Self {
        SharedCache { cache: MappingCache::new(capacity), tenant_quota, owners: HashMap::new() }
    }

    /// The capacity bound of the shared LRU.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }

    /// The per-tenant entry quota (0 = unlimited).
    pub fn tenant_quota(&self) -> usize {
        self.tenant_quota
    }

    /// Number of shared entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Whether the tier is empty.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// The tier's own hit/miss/eviction counters (disjoint from the
    /// per-shard counters: a shard miss that the tier serves counts as a
    /// shard miss *and* a shared hit).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of live entries published by `tenant`.
    pub fn tenant_entries(&self, tenant: usize) -> usize {
        self.owners.values().filter(|&&t| t == tenant).count()
    }

    /// Whether `key` is in the tier, without counting a lookup — the cheap
    /// peek behind shared-tier-aware placement ([`crate::ShardRouter`]).
    pub fn contains(&self, key: &SignatureKey) -> bool {
        self.cache.contains_key(key)
    }

    /// The shard-miss fallthrough: exactly [`MappingCache::lookup_near`]
    /// over the shared LRU (same epsilon semantics and tie-break).
    pub fn lookup_near(
        &mut self,
        key: &SignatureKey,
        sigs: &[JobSignature],
        epsilon: f64,
    ) -> Option<&StoredSolution> {
        self.cache.lookup_near(key, sigs, epsilon)
    }

    /// Publishes a solved mapping to the shared tier on behalf of `tenant`,
    /// then enforces the tenant quota (evicting the tenant's own LRU
    /// entries) and the global capacity.
    pub fn publish(&mut self, key: SignatureKey, solution: StoredSolution, tenant: usize) {
        self.cache.insert(key.clone(), solution);
        self.owners.insert(key.clone(), tenant);
        // Capacity eviction inside `insert` may have dropped entries; keep
        // the owner map aligned with the live set.
        let cache = &self.cache;
        self.owners.retain(|k, _| cache.contains_key(k));
        if self.tenant_quota > 0 {
            while self.tenant_entries(tenant) > self.tenant_quota {
                let victim = self
                    .cache
                    .keys_by_recency()
                    .iter()
                    .find(|k| self.owners.get(*k) == Some(&tenant) && **k != key)
                    .cloned()
                    .expect("over-quota tenant owns an older entry");
                self.cache.remove(&victim);
                self.owners.remove(&victim);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::Mapping;
    use magma_model::{TaskType, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(task: TaskType, n: usize, seed: u64) -> SignatureKey {
        quantize_signatures(&WorkloadSpec::single_group(task, n, seed).signatures(), 1.0)
    }

    fn solution(n: usize, seed: u64) -> StoredSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        StoredSolution::new(Mapping::random(&mut rng, n, 4), None)
    }

    #[test]
    fn key_is_order_insensitive_and_seed_sensitive() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 16, 3);
        let sigs = group.signatures();
        let reversed: Vec<_> = sigs.iter().rev().copied().collect();
        assert_eq!(quantize_signatures(&sigs, 1.0), quantize_signatures(&reversed, 1.0));
        // Different workloads (almost surely) produce different keys.
        assert_ne!(key(TaskType::Vision, 16, 0), key(TaskType::Language, 16, 0));
    }

    #[test]
    fn coarser_steps_merge_nearby_magnitudes() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 12, 1);
        let sigs = group.signatures();
        let fine = quantize_signatures(&sigs, 1e-6);
        let coarse = quantize_signatures(&sigs, 50.0);
        assert_eq!(fine.len(), 12);
        assert_eq!(coarse.len(), 12);
        // At an absurdly coarse step every magnitude bucket collapses, so
        // the key degenerates to (task, class) pairs.
        assert!(coarse.0.iter().all(|q| q.macs_bucket <= 1));
        // At a fine step distinct layers keep distinct buckets.
        let mut fine_buckets: Vec<u32> = fine.0.iter().map(|q| q.macs_bucket).collect();
        fine_buckets.dedup();
        assert!(fine_buckets.len() > 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = MappingCache::new(2);
        let (a, b, c) =
            (key(TaskType::Vision, 8, 0), key(TaskType::Language, 8, 0), key(TaskType::Mix, 8, 0));
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(b.clone(), solution(8, 1));
        // Touch `a` so `b` becomes LRU.
        assert!(cache.lookup(&a).is_some());
        cache.insert(c.clone(), solution(8, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&b).is_none(), "b was LRU and must be evicted");
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn replacement_does_not_grow_or_evict() {
        let mut cache = MappingCache::new(2);
        let a = key(TaskType::Vision, 8, 0);
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(a.clone(), solution(8, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let mut cache = MappingCache::new(4);
        let a = key(TaskType::Vision, 8, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.lookup(&a).is_none());
        cache.insert(a.clone(), solution(8, 0));
        assert!(cache.lookup(&a).is_some());
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MappingCache::new(0);
    }

    fn profiled_solution(task: TaskType, n: usize, seed: u64) -> (SignatureKey, StoredSolution) {
        let sigs = WorkloadSpec::single_group(task, n, seed).signatures();
        let mut rng = StdRng::seed_from_u64(seed);
        let key = quantize_signatures(&sigs, 1.0);
        (key, StoredSolution::new(Mapping::random(&mut rng, n, 4), Some(sigs)))
    }

    #[test]
    fn lookup_near_exact_hit_does_not_count_as_near() {
        let mut cache = MappingCache::new(4);
        let (key, solution) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key.clone(), solution);
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures();
        assert!(cache.lookup_near(&key, &sigs, 100.0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.near_hits, stats.misses), (1, 0, 0));
    }

    #[test]
    fn lookup_near_serves_a_similar_group_within_epsilon() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        // A different window of the same tenant: near-identical per-job
        // profiles, but (almost surely) a different quantized key.
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 8, 5).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        let hit = cache.lookup_near(&key_b, &sigs_b, 1e6);
        assert!(hit.is_some(), "a huge epsilon must accept any same-size entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.near_hits), (1, 1));
    }

    #[test]
    fn lookup_near_epsilon_zero_is_exact_only() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 8, 5).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        if key_b
            == quantize_signatures(
                &WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures(),
                1.0,
            )
        {
            return; // seeds collided on one key; nothing to probe
        }
        assert!(cache.lookup_near(&key_b, &sigs_b, 0.0).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().near_hits, 0);
    }

    #[test]
    fn lookup_near_never_crosses_group_sizes() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 12, 0).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        assert!(cache.lookup_near(&key_b, &sigs_b, 1e9).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lookup_near_breaks_distance_ties_toward_the_most_recent_entry() {
        // Two entries under different keys but with *identical* stored
        // signatures, so any probe sees them at exactly equal distance.
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures();
        let key_a = quantize_signatures(&sigs, 1.0);
        let key_b = key(TaskType::Language, 8, 0);
        let sol_a = solution(8, 10);
        let sol_b = solution(8, 11);
        let mapping_a = sol_a.mapping().clone();
        let mapping_b = sol_b.mapping().clone();
        let probe_key = key(TaskType::Mix, 8, 0);
        assert!(probe_key != key_a && probe_key != key_b, "the probe key must be an exact miss");

        let mut cache = MappingCache::new(4);
        cache.insert(key_a.clone(), StoredSolution::new(mapping_a.clone(), Some(sigs.clone())));
        cache.insert(key_b, StoredSolution::new(mapping_b.clone(), Some(sigs.clone())));
        // B is most recent: the tie must go to B.
        let hit = cache.lookup_near(&probe_key, &sigs, 1e6).expect("both entries are in range");
        assert_eq!(hit.mapping(), &mapping_b);
        // Touch A; the same tie must now go to A — recency, not scan or
        // insertion order, decides.
        assert!(cache.lookup(&key_a).is_some());
        let hit = cache.lookup_near(&probe_key, &sigs, 1e6).expect("still in range");
        assert_eq!(hit.mapping(), &mapping_a);
    }

    #[test]
    fn serde_round_trip_preserves_entries_lru_order_and_stats() {
        let mut cache = MappingCache::new(4);
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        let (key_l, sol_l) = profiled_solution(TaskType::Language, 8, 1);
        let (key_m, sol_m) = profiled_solution(TaskType::Mix, 8, 2);
        cache.insert(key_v.clone(), sol_v);
        cache.insert(key_l, sol_l);
        cache.insert(key_m, sol_m);
        // Accrue non-trivial stats and a non-insertion recency order.
        assert!(cache.lookup(&key_v).is_some());
        assert!(cache.lookup(&key(TaskType::Vision, 8, 99)).is_none());

        let json = serde_json::to_string_pretty(&cache).unwrap();
        let back: MappingCache = serde_json::from_str(&json).unwrap();
        assert_eq!(back.capacity(), cache.capacity());
        assert_eq!(back.stats(), cache.stats());
        assert_eq!(back.keys_by_recency(), cache.keys_by_recency());
        for k in cache.keys_by_recency() {
            assert_eq!(back.entries[k].mapping(), cache.entries[k].mapping());
        }
        // Byte-equal re-serialization: nothing was lost or reordered.
        assert_eq!(serde_json::to_string_pretty(&back).unwrap(), json);
    }

    #[test]
    fn save_and_load_round_trip_through_a_file() {
        let mut cache = MappingCache::new(4);
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_v.clone(), sol_v);
        assert!(cache.lookup(&key_v).is_some());
        let path =
            std::env::temp_dir().join(format!("magma_cache_roundtrip_{}.json", std::process::id()));
        cache.save(&path).expect("temp dir is writable");
        let back = MappingCache::load(&path).expect("just written");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back.stats(), cache.stats());
        assert_eq!(back.keys_by_recency(), cache.keys_by_recency());
    }

    #[test]
    fn load_rejects_entries_beyond_capacity() {
        let mut cache = MappingCache::new(2);
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_v, sol_v);
        let json =
            serde_json::to_string(&cache).unwrap().replace("\"capacity\":2", "\"capacity\":0");
        assert!(serde_json::from_str::<MappingCache>(&json).is_err());
    }

    #[test]
    fn rebound_evicts_down_to_the_new_capacity() {
        let mut cache = MappingCache::new(4);
        let (a, b, c) =
            (key(TaskType::Vision, 8, 0), key(TaskType::Language, 8, 0), key(TaskType::Mix, 8, 0));
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(b, solution(8, 1));
        cache.insert(c.clone(), solution(8, 2));
        assert!(cache.lookup(&a).is_some()); // a becomes MRU
        cache.rebound(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.contains_key(&a) && cache.contains_key(&c), "the MRU entries survive");
    }

    #[test]
    fn shared_tier_serves_a_shard_miss_and_enforces_the_tenant_quota() {
        let mut shared = SharedCache::new(8, 2);
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        shared.publish(key_v.clone(), sol_v, 3);
        // The peek is stat-free; the fallthrough lookup counts a hit.
        assert!(shared.contains(&key_v));
        assert_eq!(shared.stats().hits + shared.stats().misses, 0);
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures();
        assert!(shared.lookup_near(&key_v, &sigs, 0.0).is_some());
        assert_eq!(shared.stats().hits, 1);

        // A tenant over quota evicts its *own* LRU entry; other tenants are
        // untouched.
        let (key_l, sol_l) = profiled_solution(TaskType::Language, 8, 1);
        let (key_m, sol_m) = profiled_solution(TaskType::Mix, 8, 2);
        let (key_r, sol_r) = profiled_solution(TaskType::Recommendation, 8, 3);
        shared.publish(key_l.clone(), sol_l, 3);
        shared.publish(key_m.clone(), sol_m, 7);
        shared.publish(key_r.clone(), sol_r, 3);
        assert_eq!(shared.tenant_entries(3), 2);
        assert_eq!(shared.tenant_entries(7), 1);
        assert!(!shared.contains(&key_v), "tenant 3's LRU entry was evicted by its quota");
        assert!(shared.contains(&key_m), "tenant 7 is under quota");
        assert!(shared.contains(&key_l) && shared.contains(&key_r));
    }

    #[test]
    fn lookup_near_prefers_the_closest_entry() {
        let mut cache = MappingCache::new(4);
        // Same-size entries of two different task categories; a vision query
        // must pick the vision entry (class/task penalties dominate).
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        let (key_l, sol_l) = profiled_solution(TaskType::Language, 8, 0);
        let vision_mapping = sol_v.mapping().clone();
        cache.insert(key_v, sol_v);
        cache.insert(key_l, sol_l);
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 9).signatures();
        let key = quantize_signatures(&sigs, 1.0);
        let hit = cache.lookup_near(&key, &sigs, 1e6).expect("huge epsilon always hits");
        assert_eq!(hit.mapping(), &vision_mapping);
    }
}
