//! The signature-keyed mapping cache: a bounded LRU from quantized
//! [`JobSignature`] sets to stored solutions.
//!
//! PR 2 established that solved mappings transfer to *similar* job groups
//! (Table V); this cache turns that property into an online win. A dispatch
//! group is keyed by the **sorted multiset of its quantized job signatures**
//! — layer class, task and log-scale magnitude buckets — so two groups whose
//! jobs are pairwise similar (whatever their order) share a key. A hit hands
//! back a [`StoredSolution`] whose mapping is adapted via profile matching
//! and refined with a small budget; a miss triggers a full MAGMA search
//! whose result is inserted for the next recurrence.
//!
//! The cache is a bounded LRU: lookups and insertions mark an entry most
//! recently used; inserting beyond the capacity evicts the least recently
//! used entry. [`CacheStats`] counts hits, misses, insertions and evictions
//! for the metrics pipeline.

use magma_m3e::{LruOrder, StoredSolution};
use magma_model::{JobSignature, LayerClass, TaskType};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One job signature, quantized to log-scale magnitude buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QuantizedSignature {
    /// Task category (exact).
    pub task: TaskType,
    /// Layer class (exact).
    pub class: LayerClass,
    /// `ln(1 + macs) / step`, rounded.
    pub macs_bucket: u32,
    /// `ln(1 + weight_elems) / step`, rounded.
    pub weights_bucket: u32,
    /// `ln(1 + activation_elems) / step`, rounded.
    pub activations_bucket: u32,
}

/// The cache key of a dispatch group: its quantized signatures as a sorted
/// multiset (order-insensitive by construction).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SignatureKey(Vec<QuantizedSignature>);

impl SignatureKey {
    /// Number of jobs behind the key.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the key covers no jobs (never true for a quantized group).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Quantizes a group's signatures into its cache key. `step` is the
/// log-scale bucket width in nats: jobs whose MACs (or weight / activation
/// footprints) differ by less than `e^step` land in the same bucket.
///
/// # Panics
///
/// Panics if `step` is not finite and positive.
pub fn quantize_signatures(sigs: &[JobSignature], step: f64) -> SignatureKey {
    assert!(step.is_finite() && step > 0.0, "quantization step must be finite and positive");
    let bucket = |x: u64| ((1.0 + x as f64).ln() / step).round() as u32;
    let mut quantized: Vec<QuantizedSignature> = sigs
        .iter()
        .map(|s| QuantizedSignature {
            task: s.task(),
            class: s.class(),
            macs_bucket: bucket(s.macs()),
            weights_bucket: bucket(s.weight_elems()),
            activations_bucket: bucket(s.activation_elems()),
        })
        .collect();
    quantized.sort_unstable();
    SignatureKey(quantized)
}

/// Hit/miss/eviction counters of a [`MappingCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups that found an entry (exact-key and nearest-key combined).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// The subset of `hits` served by the nearest-key probe
    /// ([`MappingCache::lookup_near`]) rather than an exact key match.
    pub near_hits: u64,
    /// Insertions (fresh keys and replacements).
    pub insertions: u64,
    /// Entries evicted by the capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when no lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The bounded LRU mapping cache. Recency bookkeeping is the shared
/// [`magma_m3e::LruOrder`] (the same machinery bounding
/// [`magma_m3e::SolutionHistory`]).
#[derive(Debug, Clone)]
pub struct MappingCache {
    capacity: usize,
    entries: HashMap<SignatureKey, StoredSolution>,
    /// Recency order; always lists exactly the keys of `entries`.
    recency: LruOrder<SignatureKey>,
    stats: CacheStats,
}

impl MappingCache {
    /// Creates an empty cache bounded to `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a mapping cache must hold at least one entry");
        MappingCache {
            capacity,
            entries: HashMap::new(),
            recency: LruOrder::new(),
            stats: CacheStats::default(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The running counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks `key` up, counting a hit or miss and marking a hit entry most
    /// recently used.
    pub fn lookup(&mut self, key: &SignatureKey) -> Option<&StoredSolution> {
        if self.entries.contains_key(key) {
            self.stats.hits += 1;
            self.recency.bump(key);
            self.entries.get(key)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Looks `key` up with a nearest-key fallback: on an exact-key miss, the
    /// stored entry with the minimum **mean per-job [`JobSignature`]
    /// distance** to `sigs` is served as a *near hit* if that mean is at
    /// most `epsilon` (each of the group's signatures is matched to its
    /// nearest stored signature — a cheap non-bijective proxy for the full
    /// assignment the adaptation itself performs). `epsilon <= 0` disables
    /// the probe, making this exactly [`MappingCache::lookup`].
    ///
    /// Only entries that stored signatures for the *same group size* are
    /// candidates, so the adapted mapping always covers the group one-job-
    /// to-one-job. Candidates are scanned in recency order (deterministic);
    /// ties prefer the most recently used entry. This is what lets
    /// mixed-tenant traffic — whose quantized signature multisets essentially
    /// never repeat exactly — still reuse solved mappings of *similar*
    /// groups.
    pub fn lookup_near(
        &mut self,
        key: &SignatureKey,
        sigs: &[JobSignature],
        epsilon: f64,
    ) -> Option<&StoredSolution> {
        if epsilon <= 0.0 || self.entries.contains_key(key) {
            return self.lookup(key);
        }
        let mut best: Option<(f64, SignatureKey)> = None;
        for stored_key in self.recency.as_slice().iter().rev() {
            let stored = &self.entries[stored_key];
            let Some(stored_sigs) = stored.signatures() else { continue };
            if stored_sigs.len() != sigs.len() {
                continue;
            }
            let total: f64 = sigs
                .iter()
                .map(|s| stored_sigs.iter().map(|t| s.distance(t)).fold(f64::INFINITY, f64::min))
                .sum();
            let mean = total / sigs.len().max(1) as f64;
            if mean <= epsilon && best.as_ref().is_none_or(|(b, _)| mean < *b) {
                best = Some((mean, stored_key.clone()));
            }
        }
        match best {
            Some((_, near_key)) => {
                self.stats.hits += 1;
                self.stats.near_hits += 1;
                self.recency.bump(&near_key);
                self.entries.get(&near_key)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or replaces) the entry for `key`, marks it most recently
    /// used and evicts the least recently used entry when over capacity.
    pub fn insert(&mut self, key: SignatureKey, solution: StoredSolution) {
        self.stats.insertions += 1;
        self.entries.insert(key.clone(), solution);
        self.recency.bump(&key);
        while self.entries.len() > self.capacity {
            let lru = self.recency.pop_lru().expect("recency tracks every entry");
            self.entries.remove(&lru);
            self.stats.evictions += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::Mapping;
    use magma_model::{TaskType, WorkloadSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(task: TaskType, n: usize, seed: u64) -> SignatureKey {
        quantize_signatures(&WorkloadSpec::single_group(task, n, seed).signatures(), 1.0)
    }

    fn solution(n: usize, seed: u64) -> StoredSolution {
        let mut rng = StdRng::seed_from_u64(seed);
        StoredSolution::new(Mapping::random(&mut rng, n, 4), None)
    }

    #[test]
    fn key_is_order_insensitive_and_seed_sensitive() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 16, 3);
        let sigs = group.signatures();
        let reversed: Vec<_> = sigs.iter().rev().copied().collect();
        assert_eq!(quantize_signatures(&sigs, 1.0), quantize_signatures(&reversed, 1.0));
        // Different workloads (almost surely) produce different keys.
        assert_ne!(key(TaskType::Vision, 16, 0), key(TaskType::Language, 16, 0));
    }

    #[test]
    fn coarser_steps_merge_nearby_magnitudes() {
        let group = WorkloadSpec::single_group(TaskType::Mix, 12, 1);
        let sigs = group.signatures();
        let fine = quantize_signatures(&sigs, 1e-6);
        let coarse = quantize_signatures(&sigs, 50.0);
        assert_eq!(fine.len(), 12);
        assert_eq!(coarse.len(), 12);
        // At an absurdly coarse step every magnitude bucket collapses, so
        // the key degenerates to (task, class) pairs.
        assert!(coarse.0.iter().all(|q| q.macs_bucket <= 1));
        // At a fine step distinct layers keep distinct buckets.
        let mut fine_buckets: Vec<u32> = fine.0.iter().map(|q| q.macs_bucket).collect();
        fine_buckets.dedup();
        assert!(fine_buckets.len() > 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used_entry() {
        let mut cache = MappingCache::new(2);
        let (a, b, c) =
            (key(TaskType::Vision, 8, 0), key(TaskType::Language, 8, 0), key(TaskType::Mix, 8, 0));
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(b.clone(), solution(8, 1));
        // Touch `a` so `b` becomes LRU.
        assert!(cache.lookup(&a).is_some());
        cache.insert(c.clone(), solution(8, 2));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&b).is_none(), "b was LRU and must be evicted");
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&c).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.insertions, 3);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn replacement_does_not_grow_or_evict() {
        let mut cache = MappingCache::new(2);
        let a = key(TaskType::Vision, 8, 0);
        cache.insert(a.clone(), solution(8, 0));
        cache.insert(a.clone(), solution(8, 1));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(cache.stats().insertions, 2);
    }

    #[test]
    fn hit_rate_tracks_counters() {
        let mut cache = MappingCache::new(4);
        let a = key(TaskType::Vision, 8, 0);
        assert_eq!(cache.stats().hit_rate(), 0.0);
        assert!(cache.lookup(&a).is_none());
        cache.insert(a.clone(), solution(8, 0));
        assert!(cache.lookup(&a).is_some());
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_panics() {
        let _ = MappingCache::new(0);
    }

    fn profiled_solution(task: TaskType, n: usize, seed: u64) -> (SignatureKey, StoredSolution) {
        let sigs = WorkloadSpec::single_group(task, n, seed).signatures();
        let mut rng = StdRng::seed_from_u64(seed);
        let key = quantize_signatures(&sigs, 1.0);
        (key, StoredSolution::new(Mapping::random(&mut rng, n, 4), Some(sigs)))
    }

    #[test]
    fn lookup_near_exact_hit_does_not_count_as_near() {
        let mut cache = MappingCache::new(4);
        let (key, solution) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key.clone(), solution);
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures();
        assert!(cache.lookup_near(&key, &sigs, 100.0).is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.near_hits, stats.misses), (1, 0, 0));
    }

    #[test]
    fn lookup_near_serves_a_similar_group_within_epsilon() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        // A different window of the same tenant: near-identical per-job
        // profiles, but (almost surely) a different quantized key.
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 8, 5).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        let hit = cache.lookup_near(&key_b, &sigs_b, 1e6);
        assert!(hit.is_some(), "a huge epsilon must accept any same-size entry");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.near_hits), (1, 1));
    }

    #[test]
    fn lookup_near_epsilon_zero_is_exact_only() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 8, 5).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        if key_b
            == quantize_signatures(
                &WorkloadSpec::single_group(TaskType::Vision, 8, 0).signatures(),
                1.0,
            )
        {
            return; // seeds collided on one key; nothing to probe
        }
        assert!(cache.lookup_near(&key_b, &sigs_b, 0.0).is_none());
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().near_hits, 0);
    }

    #[test]
    fn lookup_near_never_crosses_group_sizes() {
        let mut cache = MappingCache::new(4);
        let (key_a, solution_a) = profiled_solution(TaskType::Vision, 8, 0);
        cache.insert(key_a, solution_a);
        let sigs_b = WorkloadSpec::single_group(TaskType::Vision, 12, 0).signatures();
        let key_b = quantize_signatures(&sigs_b, 1.0);
        assert!(cache.lookup_near(&key_b, &sigs_b, 1e9).is_none());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn lookup_near_prefers_the_closest_entry() {
        let mut cache = MappingCache::new(4);
        // Same-size entries of two different task categories; a vision query
        // must pick the vision entry (class/task penalties dominate).
        let (key_v, sol_v) = profiled_solution(TaskType::Vision, 8, 0);
        let (key_l, sol_l) = profiled_solution(TaskType::Language, 8, 0);
        let vision_mapping = sol_v.mapping().clone();
        cache.insert(key_v, sol_v);
        cache.insert(key_l, sol_l);
        let sigs = WorkloadSpec::single_group(TaskType::Vision, 8, 9).signatures();
        let key = quantize_signatures(&sigs, 1.0);
        let hit = cache.lookup_near(&key, &sigs, 1e6).expect("huge epsilon always hits");
        assert_eq!(hit.mapping(), &vision_mapping);
    }
}
