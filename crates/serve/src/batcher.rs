//! The admission batcher: folds arrivals into dispatch groups under a
//! group-size / deadline policy.
//!
//! The paper's host "chops the job pool into dependency-free groups" — the
//! online analogue is an admission queue: arrivals accumulate until either
//! the group-size target is reached (the throughput path) or the oldest
//! arrival has waited out the admission deadline (the latency path, which
//! keeps trickle traffic from starving). Groups are dispatched FIFO.

use crate::trace::Arrival;
use std::collections::VecDeque;

/// The admission policy of the batcher.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPolicy {
    /// Dispatch as soon as this many jobs are pending.
    pub target_size: usize,
    /// Dispatch a partial group once the oldest pending arrival has waited
    /// this long, in virtual seconds.
    pub max_wait_sec: f64,
}

impl BatchPolicy {
    /// Creates a policy.
    ///
    /// # Panics
    ///
    /// Panics if `target_size == 0` or `max_wait_sec` is negative or NaN.
    pub fn new(target_size: usize, max_wait_sec: f64) -> Self {
        assert!(target_size > 0, "the group-size target must be non-zero");
        assert!(max_wait_sec >= 0.0, "the admission deadline must be non-negative");
        BatchPolicy { target_size, max_wait_sec }
    }
}

/// A formed dispatch group: up to `target_size` arrivals, oldest first.
#[derive(Debug, Clone, PartialEq)]
pub struct DispatchGroup {
    /// The admitted arrivals, in arrival order.
    pub arrivals: Vec<Arrival>,
    /// The virtual time the group was cut.
    pub formed_at_sec: f64,
}

/// The admission queue. Push arrivals in time order; ask
/// [`earliest_ready`](AdmissionBatcher::earliest_ready) when the next group
/// could be cut; take it with [`take_group`](AdmissionBatcher::take_group).
#[derive(Debug, Clone)]
pub struct AdmissionBatcher {
    policy: BatchPolicy,
    pending: VecDeque<Arrival>,
}

impl AdmissionBatcher {
    /// Creates an empty batcher under `policy`.
    pub fn new(policy: BatchPolicy) -> Self {
        AdmissionBatcher { policy, pending: VecDeque::new() }
    }

    /// The admission policy in force.
    pub fn policy(&self) -> &BatchPolicy {
        &self.policy
    }

    /// Admits one arrival. Arrivals must be pushed in non-decreasing time
    /// order (the simulator's event loop guarantees this).
    pub fn push(&mut self, arrival: Arrival) {
        debug_assert!(
            self.pending.back().is_none_or(|b| b.time_sec <= arrival.time_sec),
            "arrivals must be admitted in time order"
        );
        self.pending.push_back(arrival);
    }

    /// Number of pending (admitted, not yet dispatched) arrivals.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// The arrivals the next [`take_group`](AdmissionBatcher::take_group)
    /// would admit, oldest first — the fleet scheduler peeks these to price a
    /// prospective group (deadline, preemption value) *before* committing to
    /// a cut.
    pub fn peek_next_group(&self) -> impl Iterator<Item = &Arrival> {
        let count = self.pending.len().min(self.policy.target_size);
        self.pending.iter().take(count)
    }

    /// The earliest virtual time a group can be cut, or `None` when nothing
    /// is pending: the arrival time of the `target_size`-th pending job when
    /// the queue is full enough, the oldest arrival's admission deadline
    /// otherwise.
    pub fn earliest_ready(&self) -> Option<f64> {
        if self.pending.len() >= self.policy.target_size {
            Some(self.pending[self.policy.target_size - 1].time_sec)
        } else {
            self.pending.front().map(|a| a.time_sec + self.policy.max_wait_sec)
        }
    }

    /// Cuts the next dispatch group at virtual time `now`, if one is ready
    /// (i.e. `now >= earliest_ready()`). Takes the oldest `target_size`
    /// arrivals, or every pending arrival on the deadline path.
    pub fn take_group(&mut self, now: f64) -> Option<DispatchGroup> {
        let ready = self.earliest_ready()?;
        if now < ready {
            return None;
        }
        let count = self.pending.len().min(self.policy.target_size);
        let arrivals: Vec<Arrival> = self.pending.drain(..count).collect();
        Some(DispatchGroup { arrivals, formed_at_sec: now })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::{Job, JobId, LayerShape, TaskType};

    fn arrival(t: f64, i: usize) -> Arrival {
        let job = Job::new(
            JobId(i),
            "m",
            0,
            LayerShape::FullyConnected { out_features: 64, in_features: 64 },
            4,
            TaskType::Recommendation,
        );
        Arrival { time_sec: t, tenant: 0, job }
    }

    #[test]
    fn full_group_is_ready_at_the_filling_arrival() {
        let mut b = AdmissionBatcher::new(BatchPolicy::new(3, 10.0));
        assert_eq!(b.earliest_ready(), None);
        b.push(arrival(1.0, 0));
        b.push(arrival(2.0, 1));
        // Two pending of three: only the deadline path is available.
        assert_eq!(b.earliest_ready(), Some(11.0));
        b.push(arrival(3.0, 2));
        // Target reached: ready the moment the third job arrived.
        assert_eq!(b.earliest_ready(), Some(3.0));
        let g = b.take_group(3.0).expect("group is ready");
        assert_eq!(g.arrivals.len(), 3);
        assert_eq!(g.formed_at_sec, 3.0);
        assert_eq!(b.pending(), 0);
    }

    #[test]
    fn deadline_cuts_a_partial_group() {
        let mut b = AdmissionBatcher::new(BatchPolicy::new(8, 5.0));
        b.push(arrival(1.0, 0));
        b.push(arrival(2.0, 1));
        assert_eq!(b.earliest_ready(), Some(6.0));
        assert!(b.take_group(5.9).is_none(), "not ready before the deadline");
        let g = b.take_group(6.0).expect("deadline reached");
        assert_eq!(g.arrivals.len(), 2);
        assert_eq!(b.pending(), 0);
        assert_eq!(b.earliest_ready(), None);
    }

    #[test]
    fn oversize_queue_dispatches_target_sized_groups_fifo() {
        let mut b = AdmissionBatcher::new(BatchPolicy::new(2, 1.0));
        for i in 0..5 {
            b.push(arrival(i as f64, i));
        }
        let g1 = b.take_group(10.0).unwrap();
        let g2 = b.take_group(10.0).unwrap();
        assert_eq!(g1.arrivals[0].job.id(), JobId(0));
        assert_eq!(g1.arrivals[1].job.id(), JobId(1));
        assert_eq!(g2.arrivals[0].job.id(), JobId(2));
        assert_eq!(b.pending(), 1);
    }

    #[test]
    #[should_panic(expected = "group-size target")]
    fn zero_target_panics() {
        let _ = BatchPolicy::new(0, 1.0);
    }
}
