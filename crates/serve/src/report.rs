//! The schema-stable serving report behind `BENCH_serve.json`.
//!
//! Mirrors the contract of `magma-bench`'s `BENCH_parallel_eval.json`
//! ([`SCHEMA`] is a versioned tag; fields are only ever added, with a
//! version bump, never renamed or removed) so trend tooling can diff serving
//! profiles across commits. The report is purely virtual-clock — it contains
//! **no wall-clock measurements and no thread counts** — which is what makes
//! the determinism suite's bit-identical-JSON assertion possible across
//! `MAGMA_THREADS` settings.

use crate::descriptor::{CustomScenario, ScenarioDescriptor};
use crate::sim::{simulate, SimConfig};
use crate::trace::Scenario;
use magma_model::{TaskType, TenantMix};
use magma_platform::settings::ServeKnobs;
use serde::{Deserialize, Serialize, Value};
use std::path::PathBuf;

/// Version tag of the report layout. Bump when (and only when) fields are
/// added; existing fields are never renamed or removed.
///
/// `v2` (the steppable-session release) adds, on top of `v1`: the
/// `primary_overlap` flag, the `baseline_scenarios` ladder (the *other*
/// serving mode, so every report carries both overlap and legacy results),
/// the per-scenario `comparison` block, `overlap` on every scenario entry,
/// `near_hits` in the cache block and `sla_multiplier` per tenant.
///
/// `v3` (the scenario-registry release) adds the embedded
/// `scenario_descriptor`: what the report measured — builtin ladder knobs or
/// the resolved registry definitions — content-hashed and required by
/// [`ServeReport::validate`].
pub const SCHEMA: &str = "magma-serve/v3";

/// One simulated scenario's block in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Short stable identifier (e.g. `repeated_tenant`).
    pub name: String,
    /// The traffic scenario simulated.
    pub scenario: Scenario,
    /// Whether this entry was simulated in overlap mode.
    pub overlap: bool,
    /// Arrivals simulated.
    pub requests: usize,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Calibrated mean inter-arrival gap, µs of virtual time.
    pub mean_interarrival_us: f64,
    /// Per-job SLA bound, µs of virtual time.
    pub sla_us: f64,
    /// The full metrics block.
    pub metrics: crate::metrics::ServeMetrics,
}

/// The overlap-vs-legacy end-to-end latency comparison of one scenario —
/// the headline the overlap redesign is measured by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioComparison {
    /// Scenario identifier (matches the ladders).
    pub name: String,
    /// Mean end-to-end latency in overlap mode, µs of virtual time.
    pub overlap_mean_e2e_us: f64,
    /// Mean end-to-end latency in legacy (serial) mode, µs.
    pub legacy_mean_e2e_us: f64,
    /// p95 end-to-end latency in overlap mode, µs.
    pub overlap_p95_e2e_us: f64,
    /// p95 end-to-end latency in legacy mode, µs.
    pub legacy_p95_e2e_us: f64,
    /// `legacy_mean / overlap_mean` — > 1 means overlap wins.
    pub mean_speedup: f64,
}

/// The full report written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Schema version tag ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Whether `scenarios` (the primary ladder) ran in overlap mode; the
    /// `baseline_scenarios` ladder always holds the other mode.
    pub primary_overlap: bool,
    /// Trace/search seed.
    pub seed: u64,
    /// Cold-search sampling budget.
    pub cold_budget: usize,
    /// Cache-hit refinement budget.
    pub refine_budget: usize,
    /// Mapping-cache capacity.
    pub cache_capacity: usize,
    /// What this report measured: the resolved scenario descriptor
    /// (builtin ladder parameters, or the registry definitions behind a
    /// `--scenario` run), content-hashed.
    pub scenario_descriptor: ScenarioDescriptor,
    /// One entry per simulated scenario, in the primary serving mode
    /// (overlap by default, `MAGMA_SERVE_OVERLAP=0` flips it).
    pub scenarios: Vec<ScenarioResult>,
    /// The same scenario ladder in the other serving mode, so every report
    /// carries both the overlap and the legacy baselines.
    pub baseline_scenarios: Vec<ScenarioResult>,
    /// Per-scenario overlap-vs-legacy end-to-end comparison.
    pub comparison: Vec<ScenarioComparison>,
}

impl ServeReport {
    /// The ladder simulated in overlap mode (primary or baseline).
    pub fn overlap_scenarios(&self) -> &[ScenarioResult] {
        if self.primary_overlap {
            &self.scenarios
        } else {
            &self.baseline_scenarios
        }
    }

    /// The ladder simulated in legacy (serial) mode.
    pub fn legacy_scenarios(&self) -> &[ScenarioResult] {
        if self.primary_overlap {
            &self.baseline_scenarios
        } else {
            &self.scenarios
        }
    }

    /// The `magma-serve/v3` schema self-check: the versioned invariants CI
    /// asserts before uploading a profile. Returns the first violation as an
    /// error string.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema tag {} != {}", self.schema, SCHEMA));
        }
        self.scenario_descriptor.validate().map_err(|e| format!("serve report: {e}"))?;
        if self.scenarios.is_empty() {
            return Err("empty primary ladder".into());
        }
        if self.scenarios.len() != self.baseline_scenarios.len() {
            return Err("primary and baseline ladders differ in length".into());
        }
        if self.comparison.len() != self.scenarios.len() {
            return Err("one comparison entry per scenario required".into());
        }
        for (s, b) in self.scenarios.iter().zip(&self.baseline_scenarios) {
            if s.name != b.name {
                return Err(format!("ladder misalignment: {} vs {}", s.name, b.name));
            }
            if s.overlap != self.primary_overlap || b.overlap == self.primary_overlap {
                return Err(format!("mode flags inconsistent on {}", s.name));
            }
        }
        for c in &self.comparison {
            let overlap = self
                .overlap_scenarios()
                .iter()
                .find(|s| s.name == c.name)
                .ok_or_else(|| format!("comparison for unknown scenario {}", c.name))?;
            let legacy = self
                .legacy_scenarios()
                .iter()
                .find(|s| s.name == c.name)
                .expect("ladders are aligned");
            let mean = |s: &ScenarioResult| s.metrics.end_to_end.mean_sec * 1e6;
            if (c.overlap_mean_e2e_us - mean(overlap)).abs() > 1e-9 * mean(overlap).max(1.0)
                || (c.legacy_mean_e2e_us - mean(legacy)).abs() > 1e-9 * mean(legacy).max(1.0)
            {
                return Err(format!("comparison of {} disagrees with its ladders", c.name));
            }
        }
        Ok(())
    }
}

/// The standard scenario ladder: what `serve_sim` runs and the determinism
/// suite locks down.
///
/// * `poisson_mix` — stationary multi-tenant traffic (the paper's Mix task,
///   served online).
/// * `repeated_tenant` — a single small-model tenant whose job windows
///   recur; the repeated-tenant trace of the acceptance criteria (cache
///   economics and the overlap end-to-end win).
/// * (full mode only) `bursty_mix` and `drift_mix` — deadline-path stress
///   and cache-invalidation-under-drift.
pub fn standard_scenarios(smoke: bool) -> Vec<(&'static str, Scenario, TenantMix)> {
    let mut scenarios = vec![
        ("poisson_mix", Scenario::Poisson, TenantMix::standard()),
        (
            "repeated_tenant",
            Scenario::Poisson,
            TenantMix::single(
                "recommendation",
                TaskType::Recommendation,
                vec![magma_model::zoo::ncf()],
            ),
        ),
    ];
    if !smoke {
        scenarios.push(("bursty_mix", Scenario::Bursty, TenantMix::standard()));
        scenarios.push(("drift_mix", Scenario::Drift, TenantMix::standard()));
    }
    scenarios
}

/// Runs one ladder pass in the given mode.
fn run_ladder(knobs: &ServeKnobs, smoke: bool, overlap: bool) -> Vec<ScenarioResult> {
    standard_scenarios(smoke)
        .into_iter()
        .map(|(name, scenario, mix)| {
            let mut config = SimConfig::from_knobs(knobs, scenario).with_overlap(overlap);
            // The report's acceptance criteria assume every scenario starts
            // cold; a persistence file (`MAGMA_SERVE_CACHE_PATH`) would leak
            // cache state across scenarios and ladders. Warm restarts are
            // exercised by `sim::simulate` callers and the integration
            // suites, never by the standard report.
            config.cache_path = None;
            let result = simulate(&config, &mix);
            ScenarioResult {
                name: name.to_string(),
                scenario,
                overlap,
                requests: config.requests,
                group_target: config.group_target,
                mean_interarrival_us: result.mean_interarrival_sec * 1e6,
                sla_us: result.sla_sec * 1e6,
                metrics: result.metrics,
            }
        })
        .collect()
}

/// Assembles a two-ladder report (primary + baseline + comparison) from its
/// parts — shared by the builtin and registry paths.
fn assemble_report(
    knobs: &ServeKnobs,
    smoke: bool,
    seed: u64,
    descriptor: ScenarioDescriptor,
    scenarios: Vec<ScenarioResult>,
    baseline_scenarios: Vec<ScenarioResult>,
) -> ServeReport {
    let (overlap_ladder, legacy_ladder) = if knobs.overlap {
        (&scenarios, &baseline_scenarios)
    } else {
        (&baseline_scenarios, &scenarios)
    };
    let comparison = overlap_ladder
        .iter()
        .zip(legacy_ladder)
        .map(|(o, l)| {
            let overlap_mean = o.metrics.end_to_end.mean_sec * 1e6;
            let legacy_mean = l.metrics.end_to_end.mean_sec * 1e6;
            ScenarioComparison {
                name: o.name.clone(),
                overlap_mean_e2e_us: overlap_mean,
                legacy_mean_e2e_us: legacy_mean,
                overlap_p95_e2e_us: o.metrics.end_to_end.p95_sec * 1e6,
                legacy_p95_e2e_us: l.metrics.end_to_end.p95_sec * 1e6,
                mean_speedup: if overlap_mean > 0.0 { legacy_mean / overlap_mean } else { 0.0 },
            }
        })
        .collect();
    ServeReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        primary_overlap: knobs.overlap,
        seed,
        cold_budget: knobs.cold_budget,
        refine_budget: knobs.refine_budget,
        cache_capacity: knobs.cache_capacity,
        scenario_descriptor: descriptor,
        scenarios,
        baseline_scenarios,
        comparison,
    }
}

/// The builtin ladder's self-describing descriptor: the knob values that
/// shape the run plus the ladder's scenario names (the registry path embeds
/// the full resolved definitions instead).
fn builtin_serve_descriptor(knobs: &ServeKnobs, smoke: bool) -> ScenarioDescriptor {
    let names: Vec<Value> = standard_scenarios(smoke)
        .iter()
        .map(|(name, _, _)| Value::Str((*name).to_string()))
        .collect();
    let params = Value::Map(vec![
        ("requests".into(), Value::U64(knobs.requests as u64)),
        ("group_target".into(), Value::U64(knobs.group_target as u64)),
        ("offered_load".into(), Value::F64(knobs.offered_load)),
        ("sla_x".into(), Value::F64(knobs.sla_x)),
        ("cold_budget".into(), Value::U64(knobs.cold_budget as u64)),
        ("refine_budget".into(), Value::U64(knobs.refine_budget as u64)),
        ("cache_capacity".into(), Value::U64(knobs.cache_capacity as u64)),
        ("cache_epsilon".into(), Value::F64(knobs.cache_epsilon)),
        ("quant_step".into(), Value::F64(knobs.quant_step)),
        ("platform".into(), Value::Str("S2".into())),
        ("seed".into(), Value::U64(knobs.seed)),
        ("scenarios".into(), Value::Seq(names)),
    ]);
    ScenarioDescriptor::new("builtin", "standard_ladder", params)
}

/// Runs the standard scenario ladder under `knobs` in **both** serving modes
/// and assembles the report: the primary ladder follows `knobs.overlap`
/// (`MAGMA_SERVE_OVERLAP`, default on), the baseline ladder is the other
/// mode, and the comparison block pairs them per scenario.
pub fn run_standard_scenarios(knobs: &ServeKnobs, smoke: bool) -> ServeReport {
    let scenarios = run_ladder(knobs, smoke, knobs.overlap);
    let baseline_scenarios = run_ladder(knobs, smoke, !knobs.overlap);
    let descriptor = builtin_serve_descriptor(knobs, smoke);
    assemble_report(knobs, smoke, knobs.seed, descriptor, scenarios, baseline_scenarios)
}

/// Runs one registry-defined scenario in **both** serving modes and
/// assembles a single-scenario report embedding its descriptor. Knob-level
/// budgets and cache geometry come from `knobs`; the scenario supplies the
/// platform, mix and arrival process, its optional `requests` /
/// `offered_load` / `seed` override the knob defaults, and a pinned
/// `serving` block overrides the cache/SLA knobs
/// ([`CustomScenario::apply_serving`]).
pub fn run_custom_scenario(
    knobs: &ServeKnobs,
    smoke: bool,
    custom: &CustomScenario,
) -> ServeReport {
    let knobs = &custom.apply_serving(knobs);
    let run_one = |overlap: bool| -> ScenarioResult {
        let mut config = SimConfig::from_knobs(knobs, custom.scenario).with_overlap(overlap);
        config.platform = custom.platform.clone();
        if let Some(requests) = custom.requests {
            config.requests = requests;
        }
        if let Some(load) = custom.offered_load {
            config.offered_load = load;
        }
        if let Some(seed) = custom.seed {
            config.seed = seed;
        }
        // Same cold-start contract as the builtin ladders.
        config.cache_path = None;
        let result = simulate(&config, &custom.mix);
        ScenarioResult {
            name: custom.name.clone(),
            scenario: custom.scenario,
            overlap,
            requests: config.requests,
            group_target: config.group_target,
            mean_interarrival_us: result.mean_interarrival_sec * 1e6,
            sla_us: result.sla_sec * 1e6,
            metrics: result.metrics,
        }
    };
    let scenarios = vec![run_one(knobs.overlap)];
    let baseline_scenarios = vec![run_one(!knobs.overlap)];
    let seed = custom.seed.unwrap_or(knobs.seed);
    assemble_report(knobs, smoke, seed, custom.descriptor.clone(), scenarios, baseline_scenarios)
}

/// Writes the report to `BENCH_serve.json` in `MAGMA_BENCH_DIR` (default:
/// the current directory, i.e. the repo root under `cargo run`), returning
/// the path on success — same contract as the perf harness, so CI never
/// silently uploads a stale profile.
pub fn write_bench_json(report: &ServeReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    let path = dir.join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the serve report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_knobs() -> ServeKnobs {
        ServeKnobs {
            requests: 40,
            group_target: 8,
            cold_budget: 40,
            refine_budget: 4,
            cache_capacity: 8,
            ..ServeKnobs::smoke()
        }
    }

    #[test]
    fn smoke_ladder_has_the_acceptance_scenario() {
        let names: Vec<&str> = standard_scenarios(true).iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, ["poisson_mix", "repeated_tenant"]);
        let full: Vec<&str> = standard_scenarios(false).iter().map(|(n, _, _)| *n).collect();
        assert_eq!(full.len(), 4);
        assert!(full.contains(&"repeated_tenant"));
    }

    #[test]
    fn report_round_trips_through_serde_with_stable_keys() {
        let report = run_standard_scenarios(&tiny_knobs(), true);
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.scenarios.len(), 2);
        let json = serde_json::to_string_pretty(&report).unwrap();
        // The schema contract: these keys must never be renamed (only added
        // to, with a SCHEMA bump). v1 keys first, then the v2 additions.
        for key in [
            "\"schema\"",
            "\"mode\"",
            "\"seed\"",
            "\"cold_budget\"",
            "\"refine_budget\"",
            "\"cache_capacity\"",
            "\"scenarios\"",
            "\"name\"",
            "\"scenario\"",
            "\"requests\"",
            "\"group_target\"",
            "\"mean_interarrival_us\"",
            "\"sla_us\"",
            "\"metrics\"",
            "\"jobs\"",
            "\"duration_sec\"",
            "\"jobs_per_sec\"",
            "\"throughput_gflops\"",
            "\"queueing\"",
            "\"service\"",
            "\"end_to_end\"",
            "\"p50_sec\"",
            "\"p95_sec\"",
            "\"p99_sec\"",
            "\"tenants\"",
            "\"sla_violations\"",
            "\"cache\"",
            "\"hit_rate\"",
            "\"dispatch\"",
            "\"hit_cold_throughput_ratio\"",
            "\"hit_sample_fraction\"",
            // v2 additions.
            "\"primary_overlap\"",
            "\"baseline_scenarios\"",
            "\"comparison\"",
            "\"overlap\"",
            "\"overlap_mean_e2e_us\"",
            "\"legacy_mean_e2e_us\"",
            "\"overlap_p95_e2e_us\"",
            "\"legacy_p95_e2e_us\"",
            "\"mean_speedup\"",
            "\"near_hits\"",
            "\"sla_multiplier\"",
            // v3 additions.
            "\"scenario_descriptor\"",
            "\"source\"",
            "\"content_hash\"",
            "\"params\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn report_carries_both_modes_and_validates() {
        let report = run_standard_scenarios(&tiny_knobs(), true);
        assert!(report.primary_overlap, "overlap is the default primary mode");
        assert!(report.scenarios.iter().all(|s| s.overlap));
        assert!(report.baseline_scenarios.iter().all(|s| !s.overlap));
        assert_eq!(report.comparison.len(), report.scenarios.len());
        report.validate().expect("a freshly assembled report must self-check");
        // The accessors pick the right ladders.
        assert!(report.overlap_scenarios().iter().all(|s| s.overlap));
        assert!(report.legacy_scenarios().iter().all(|s| !s.overlap));
        // A knob-flipped report keeps the same two ladders, swapped.
        let flipped = run_standard_scenarios(&ServeKnobs { overlap: false, ..tiny_knobs() }, true);
        flipped.validate().expect("legacy-primary report must self-check too");
        assert!(!flipped.primary_overlap);
        assert_eq!(flipped.overlap_scenarios(), report.overlap_scenarios());
        assert_eq!(flipped.legacy_scenarios(), report.legacy_scenarios());
    }

    #[test]
    fn validate_rejects_a_corrupted_report() {
        let mut report = run_standard_scenarios(&tiny_knobs(), true);
        report.comparison[0].overlap_mean_e2e_us *= 2.0;
        assert!(report.validate().is_err(), "a tampered comparison must fail the self-check");
        let mut wrong_tag = run_standard_scenarios(&tiny_knobs(), true);
        wrong_tag.schema = "magma-serve/v1".into();
        assert!(wrong_tag.validate().is_err());
        // v3: a descriptor whose params were edited without re-hashing
        // fails the self-check.
        let mut stale_hash = run_standard_scenarios(&tiny_knobs(), true);
        stale_hash.scenario_descriptor.params = serde::Value::Null;
        assert!(stale_hash.validate().is_err());
    }

    #[test]
    fn custom_scenario_runs_and_embeds_its_descriptor() {
        use crate::descriptor::ScenarioDescriptor;
        use magma_platform::{PlatformSpec, Setting};
        let knobs = tiny_knobs();
        let descriptor = ScenarioDescriptor::new(
            "registry",
            "test_custom",
            serde::Value::Map(vec![("platform".into(), serde::Value::Str("S1".into()))]),
        );
        let custom = CustomScenario {
            name: "test_custom".into(),
            scenario: Scenario::Poisson,
            mix: TenantMix::standard(),
            platform: PlatformSpec::Setting(Setting::S1),
            requests: Some(32),
            offered_load: None,
            seed: Some(9),
            cache_epsilon: None,
            refine_budget: None,
            quant_step: None,
            sla_x: None,
            descriptor,
        };
        let report = run_custom_scenario(&knobs, true, &custom);
        report.validate().expect("custom-scenario report must self-check");
        assert_eq!(report.scenario_descriptor.source, "registry");
        assert_eq!(report.seed, 9);
        assert_eq!(report.scenarios.len(), 1);
        assert_eq!(report.scenarios[0].name, "test_custom");
        assert_eq!(report.scenarios[0].requests, 32);
        assert_eq!(report.scenarios[0].metrics.jobs, 32);
    }

    #[test]
    fn pinned_serving_block_overrides_the_knobs_in_the_report() {
        use crate::descriptor::ScenarioDescriptor;
        use magma_platform::{PlatformSpec, Setting};
        let knobs = tiny_knobs();
        let descriptor = ScenarioDescriptor::new("registry", "pinned", serde::Value::Null);
        let custom = CustomScenario {
            name: "pinned".into(),
            scenario: Scenario::Poisson,
            mix: TenantMix::standard(),
            platform: PlatformSpec::Setting(Setting::S1),
            requests: Some(16),
            offered_load: None,
            seed: None,
            cache_epsilon: Some(2.5),
            refine_budget: Some(7),
            quant_step: None,
            sla_x: None,
            descriptor,
        };
        let effective = custom.apply_serving(&knobs);
        assert_eq!(effective.cache_epsilon, 2.5);
        assert_eq!(effective.refine_budget, 7);
        assert_eq!(effective.quant_step, knobs.quant_step, "unpinned knob inherits");
        let report = run_custom_scenario(&knobs, true, &custom);
        report.validate().expect("self-check");
        assert_eq!(report.refine_budget, 7, "report reflects the pinned serving config");
    }
}
