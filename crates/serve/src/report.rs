//! The schema-stable serving report behind `BENCH_serve.json`.
//!
//! Mirrors the contract of `magma-bench`'s `BENCH_parallel_eval.json`
//! ([`SCHEMA`] is a versioned tag; fields are only ever added, with a
//! version bump, never renamed or removed) so trend tooling can diff serving
//! profiles across commits. The report is purely virtual-clock — it contains
//! **no wall-clock measurements and no thread counts** — which is what makes
//! the determinism suite's bit-identical-JSON assertion possible across
//! `MAGMA_THREADS` settings.

use crate::sim::{simulate, SimConfig};
use crate::trace::Scenario;
use magma_model::{TaskType, TenantMix};
use magma_platform::settings::ServeKnobs;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

/// Version tag of the report layout. Bump when (and only when) fields are
/// added; existing fields are never renamed or removed.
pub const SCHEMA: &str = "magma-serve/v1";

/// One simulated scenario's block in the report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Short stable identifier (e.g. `repeat_recommendation`).
    pub name: String,
    /// The traffic scenario simulated.
    pub scenario: Scenario,
    /// Arrivals simulated.
    pub requests: usize,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Calibrated mean inter-arrival gap, µs of virtual time.
    pub mean_interarrival_us: f64,
    /// Per-job SLA bound, µs of virtual time.
    pub sla_us: f64,
    /// The full metrics block.
    pub metrics: crate::metrics::ServeMetrics,
}

/// The full report written to `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Schema version tag ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Trace/search seed.
    pub seed: u64,
    /// Cold-search sampling budget.
    pub cold_budget: usize,
    /// Cache-hit refinement budget.
    pub refine_budget: usize,
    /// Mapping-cache capacity.
    pub cache_capacity: usize,
    /// One entry per simulated scenario.
    pub scenarios: Vec<ScenarioResult>,
}

/// The standard scenario ladder: what `serve_sim` runs and the determinism
/// suite locks down.
///
/// * `poisson_mix` — stationary multi-tenant traffic (the paper's Mix task,
///   served online).
/// * `repeat_recommendation` — a single small-model tenant whose job windows
///   recur; the repeated-tenant trace of the acceptance criterion.
/// * (full mode only) `bursty_mix` and `drift_mix` — deadline-path stress
///   and cache-invalidation-under-drift.
pub fn standard_scenarios(smoke: bool) -> Vec<(&'static str, Scenario, TenantMix)> {
    let mut scenarios = vec![
        ("poisson_mix", Scenario::Poisson, TenantMix::standard()),
        (
            "repeat_recommendation",
            Scenario::Poisson,
            TenantMix::single(
                "recommendation",
                TaskType::Recommendation,
                vec![magma_model::zoo::ncf()],
            ),
        ),
    ];
    if !smoke {
        scenarios.push(("bursty_mix", Scenario::Bursty, TenantMix::standard()));
        scenarios.push(("drift_mix", Scenario::Drift, TenantMix::standard()));
    }
    scenarios
}

/// Runs the standard scenario ladder under `knobs` and assembles the report.
pub fn run_standard_scenarios(knobs: &ServeKnobs, smoke: bool) -> ServeReport {
    let scenarios = standard_scenarios(smoke)
        .into_iter()
        .map(|(name, scenario, mix)| {
            let config = SimConfig::from_knobs(knobs, scenario);
            let result = simulate(&config, &mix);
            ScenarioResult {
                name: name.to_string(),
                scenario,
                requests: config.requests,
                group_target: config.group_target,
                mean_interarrival_us: result.mean_interarrival_sec * 1e6,
                sla_us: result.sla_sec * 1e6,
                metrics: result.metrics,
            }
        })
        .collect();
    ServeReport {
        schema: SCHEMA.to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        seed: knobs.seed,
        cold_budget: knobs.cold_budget,
        refine_budget: knobs.refine_budget,
        cache_capacity: knobs.cache_capacity,
        scenarios,
    }
}

/// Writes the report to `BENCH_serve.json` in `MAGMA_BENCH_DIR` (default:
/// the current directory, i.e. the repo root under `cargo run`), returning
/// the path on success — same contract as the perf harness, so CI never
/// silently uploads a stale profile.
pub fn write_bench_json(report: &ServeReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    let path = dir.join("BENCH_serve.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the serve report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_knobs() -> ServeKnobs {
        ServeKnobs {
            requests: 40,
            group_target: 8,
            cold_budget: 40,
            refine_budget: 4,
            cache_capacity: 8,
            ..ServeKnobs::smoke()
        }
    }

    #[test]
    fn smoke_ladder_has_the_acceptance_scenario() {
        let names: Vec<&str> = standard_scenarios(true).iter().map(|(n, _, _)| *n).collect();
        assert_eq!(names, ["poisson_mix", "repeat_recommendation"]);
        let full: Vec<&str> = standard_scenarios(false).iter().map(|(n, _, _)| *n).collect();
        assert_eq!(full.len(), 4);
        assert!(full.contains(&"repeat_recommendation"));
    }

    #[test]
    fn report_round_trips_through_serde_with_stable_keys() {
        let report = run_standard_scenarios(&tiny_knobs(), true);
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.scenarios.len(), 2);
        let json = serde_json::to_string_pretty(&report).unwrap();
        // The schema contract: these keys must never be renamed (only added
        // to, with a SCHEMA bump).
        for key in [
            "\"schema\"",
            "\"mode\"",
            "\"seed\"",
            "\"cold_budget\"",
            "\"refine_budget\"",
            "\"cache_capacity\"",
            "\"scenarios\"",
            "\"name\"",
            "\"scenario\"",
            "\"requests\"",
            "\"group_target\"",
            "\"mean_interarrival_us\"",
            "\"sla_us\"",
            "\"metrics\"",
            "\"jobs\"",
            "\"duration_sec\"",
            "\"jobs_per_sec\"",
            "\"throughput_gflops\"",
            "\"queueing\"",
            "\"service\"",
            "\"end_to_end\"",
            "\"p50_sec\"",
            "\"p95_sec\"",
            "\"p99_sec\"",
            "\"tenants\"",
            "\"sla_violations\"",
            "\"cache\"",
            "\"hit_rate\"",
            "\"dispatch\"",
            "\"hit_cold_throughput_ratio\"",
            "\"hit_sample_fraction\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        let back: ServeReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
