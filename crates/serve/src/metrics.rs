//! The metrics pipeline: latency percentiles, per-tenant SLA accounting,
//! throughput and cache/dispatch summaries.
//!
//! Like the SG2042 HPC characterization in PAPERS.md, the serving simulator
//! reports a full profile — p50/p95/p99 percentiles, not just means — for
//! queueing, service and end-to-end latency, globally and per tenant. All
//! statistics are computed with deterministic, order-stable arithmetic so
//! the emitted report is bit-identical across runs and thread counts.

use crate::dispatch::{DispatchKind, DispatchOutcome};
use magma_model::TaskType;
use serde::{Deserialize, Serialize};

/// Nearest-rank percentile of an ascending-sorted sample vector.
///
/// # Contract
///
/// `q` must lie in `(0, 1]`: the nearest-rank statistic is undefined at
/// `q = 0` (there is no 0th-smallest sample) and extrapolates nothing above
/// the maximum. An out-of-contract quantile is a caller bug — debug builds
/// panic on it; release builds clamp to the nearest valid rank so a stray
/// quantile degrades instead of crashing a serving fleet. Returns 0.0 for
/// an empty vector.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(q > 0.0 && q <= 1.0, "percentile quantile must lie in (0, 1], got {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary statistics of one latency population, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyStats {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_sec: f64,
    /// Median (nearest rank).
    pub p50_sec: f64,
    /// 95th percentile (nearest rank).
    pub p95_sec: f64,
    /// 99th percentile (nearest rank).
    pub p99_sec: f64,
    /// Maximum.
    pub max_sec: f64,
}

impl LatencyStats {
    /// Computes the summary of `samples` (not required to be sorted).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let count = samples.len();
        let mean_sec = if count == 0 { 0.0 } else { samples.iter().sum::<f64>() / count as f64 };
        LatencyStats {
            count,
            mean_sec,
            p50_sec: percentile(&samples, 0.50),
            p95_sec: percentile(&samples, 0.95),
            p99_sec: percentile(&samples, 0.99),
            max_sec: samples.last().copied().unwrap_or(0.0),
        }
    }
}

/// Per-tenant latency and SLA accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant name.
    pub tenant: String,
    /// Tenant task category.
    pub task: TaskType,
    /// Jobs completed for this tenant.
    pub jobs: usize,
    /// End-to-end (arrival → completion) latency profile.
    pub latency: LatencyStats,
    /// The SLA bound applied **to this tenant**, in seconds: the uniform
    /// baseline scaled by the tenant's contracted multiplier.
    pub sla_sec: f64,
    /// The tenant's SLA contract multiplier (1.0 when uncontracted, i.e.
    /// the uniform `MAGMA_SERVE_SLA_X` bound applies unscaled).
    pub sla_multiplier: f64,
    /// Jobs whose end-to-end latency exceeded the bound.
    pub sla_violations: usize,
    /// `sla_violations / jobs` (0 when no jobs).
    pub sla_violation_rate: f64,
}

/// Cache summary in the emitted report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheReport {
    /// Lookup hits (exact-key and nearest-key combined).
    pub hits: u64,
    /// Lookup misses.
    pub misses: u64,
    /// The subset of `hits` served by the nearest-key probe
    /// (`MAGMA_SERVE_CACHE_EPSILON`).
    pub near_hits: u64,
    /// Capacity evictions.
    pub evictions: u64,
    /// `hits / (hits + misses)`.
    pub hit_rate: f64,
    /// Live entries at the end of the run.
    pub entries: usize,
}

/// Mapping-quality and budget summary over all dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DispatchSummary {
    /// Total dispatch groups.
    pub dispatches: usize,
    /// Cache-miss (cold-search) dispatches.
    pub cold: usize,
    /// Cache-hit (adapt-then-refine) dispatches.
    pub hits: usize,
    /// Search samples spent by cold dispatches.
    pub cold_samples: u64,
    /// Search samples spent by hit dispatches.
    pub hit_samples: u64,
    /// Mean best-mapping throughput of cold dispatches, GFLOP/s.
    pub cold_gflops_mean: f64,
    /// Mean best-mapping throughput of hit dispatches, GFLOP/s.
    pub hit_gflops_mean: f64,
    /// `hit_gflops_mean / cold_gflops_mean` (0 when either side is empty) —
    /// the ≥ 0.9 acceptance metric.
    pub hit_cold_throughput_ratio: f64,
    /// Mean hit samples / mean cold samples (0 when either side is empty) —
    /// the ≤ 0.1 acceptance metric.
    pub hit_sample_fraction: f64,
}

impl DispatchSummary {
    /// Aggregates the per-dispatch outcomes.
    pub fn from_outcomes(outcomes: &[DispatchOutcome]) -> Self {
        let mut s = DispatchSummary {
            dispatches: outcomes.len(),
            cold: 0,
            hits: 0,
            cold_samples: 0,
            hit_samples: 0,
            cold_gflops_mean: 0.0,
            hit_gflops_mean: 0.0,
            hit_cold_throughput_ratio: 0.0,
            hit_sample_fraction: 0.0,
        };
        let (mut cold_gflops, mut hit_gflops) = (0.0f64, 0.0f64);
        for o in outcomes {
            match o.kind {
                DispatchKind::ColdSearch => {
                    s.cold += 1;
                    s.cold_samples += o.samples as u64;
                    cold_gflops += o.best_fitness;
                }
                DispatchKind::CacheHit => {
                    s.hits += 1;
                    s.hit_samples += o.samples as u64;
                    hit_gflops += o.best_fitness;
                }
            }
        }
        if s.cold > 0 {
            s.cold_gflops_mean = cold_gflops / s.cold as f64;
        }
        if s.hits > 0 {
            s.hit_gflops_mean = hit_gflops / s.hits as f64;
        }
        if s.cold > 0 && s.hits > 0 && s.cold_gflops_mean > 0.0 {
            s.hit_cold_throughput_ratio = s.hit_gflops_mean / s.cold_gflops_mean;
            let cold_mean = s.cold_samples as f64 / s.cold as f64;
            let hit_mean = s.hit_samples as f64 / s.hits as f64;
            if cold_mean > 0.0 {
                s.hit_sample_fraction = hit_mean / cold_mean;
            }
        }
        s
    }
}

/// The full metrics block of one simulated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeMetrics {
    /// Jobs completed.
    pub jobs: usize,
    /// Virtual-clock span of the run, from the clock origin (t = 0, just
    /// before the first arrival) to the last completion, in seconds.
    pub duration_sec: f64,
    /// Jobs per virtual second.
    pub jobs_per_sec: f64,
    /// Useful work per virtual second, GFLOP/s.
    pub throughput_gflops: f64,
    /// Queueing (arrival → dispatch) latency profile.
    pub queueing: LatencyStats,
    /// Service (dispatch → completion, incl. mapper overhead) profile.
    pub service: LatencyStats,
    /// End-to-end (arrival → completion) latency profile.
    pub end_to_end: LatencyStats,
    /// Per-tenant breakdown, in tenant-mix order.
    pub tenants: Vec<TenantReport>,
    /// Mapping-cache counters.
    pub cache: CacheReport,
    /// Dispatch/budget/quality summary.
    pub dispatch: DispatchSummary,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn percentile_contract_boundaries() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // The closed upper boundary is in contract and returns the maximum.
        assert_eq!(percentile(&v, 1.0), 100.0);
        // Any in-contract quantile, however tiny, resolves to rank 1 — the
        // open lower boundary never reaches a "0th smallest" sample.
        assert_eq!(percentile(&v, 1e-12), 1.0);
        assert_eq!(percentile(&v, 0.01), 1.0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn percentile_rejects_a_zero_quantile() {
        let _ = percentile(&[1.0, 2.0], 0.0);
    }

    #[test]
    #[should_panic(expected = "must lie in (0, 1]")]
    fn percentile_rejects_a_quantile_above_one() {
        let _ = percentile(&[1.0, 2.0], 1.5);
    }

    #[test]
    fn latency_stats_are_ordered() {
        let stats = LatencyStats::from_samples((0..250).map(|i| (i % 97) as f64).collect());
        assert_eq!(stats.count, 250);
        assert!(stats.p50_sec <= stats.p95_sec);
        assert!(stats.p95_sec <= stats.p99_sec);
        assert!(stats.p99_sec <= stats.max_sec);
        assert!(stats.mean_sec > 0.0);
    }

    #[test]
    fn empty_latency_stats_are_zero() {
        let stats = LatencyStats::from_samples(Vec::new());
        assert_eq!(stats.count, 0);
        assert_eq!(stats.mean_sec, 0.0);
        assert_eq!(stats.max_sec, 0.0);
    }
}
