//! The mapping service: cache-hit adapt-then-refine vs cache-miss cold
//! search, both through the parallel batch evaluator.
//!
//! Every dispatch group becomes an [`M3e`] problem; the service then either
//!
//! * **hits** the [`MappingCache`]: the stored solution is adapted onto the
//!   new group by profile matching ([`StoredSolution::seed_population`], the
//!   machinery behind `WarmStartEngine::adapt_matched`) and refined with the
//!   small `refine_budget` via [`Magma::refine`] — the budget-limited resume
//!   path; or
//! * **misses**: a full MAGMA search runs at `cold_budget`.
//!
//! Both paths evaluate candidates through `magma_optim::parallel` (every
//! `Magma` search batches its generations), so `MAGMA_THREADS` is a pure
//! wall-clock knob here too — dispatch outcomes are bit-identical at every
//! worker count. Either way the best mapping found is (re-)inserted under
//! the group's key, so the cache tracks the freshest solution per traffic
//! pattern.
//!
//! Since the session redesign the service is **steppable**: a dispatch is
//! [`plan`](MappingService::plan_group)ned (cache probe + seed adaptation),
//! its search opened as a resumable [`SearchSession`]
//! ([`MappingService::start_search`]) that the caller advances in budget
//! slices, and [`complete`](MappingService::complete_group)d into the cache.
//! [`MappingService::map_group`] remains the one-call composition of the
//! three — and, by the session-stepping invariant, any slicing of the same
//! budget produces the same outcome.

use crate::cache::{quantize_signatures, CacheStats, MappingCache, SharedCache, SignatureKey};
use magma_m3e::{M3e, Mapping, MappingProblem, Schedule, StoredSolution};
use magma_optim::{Magma, Optimizer, SearchOutcome, SearchSession, SessionState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a dispatch was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchKind {
    /// Cache miss: full MAGMA search at the cold budget.
    ColdSearch,
    /// Cache hit: stored solution adapted and refined at the small budget.
    CacheHit,
}

impl fmt::Display for DispatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchKind::ColdSearch => f.write_str("cold-search"),
            DispatchKind::CacheHit => f.write_str("cache-hit"),
        }
    }
}

/// Budgets and cache geometry of the mapping service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Sampling budget of a cache-miss search.
    pub cold_budget: usize,
    /// Sampling budget of a cache-hit refinement (the ≤ 10%-of-cold lever).
    pub refine_budget: usize,
    /// Log-scale quantization step of the cache key, in nats.
    pub quant_step: f64,
    /// LRU capacity of the mapping cache.
    pub cache_capacity: usize,
    /// Nearest-key probe threshold (mean per-job signature distance) for the
    /// cache; `0.0` keeps lookups exact-key only. See
    /// [`MappingCache::lookup_near`].
    pub cache_epsilon: f64,
}

impl DispatchConfig {
    /// Creates a config with the nearest-key probe disabled (exact-key
    /// lookups only); chain [`DispatchConfig::with_cache_epsilon`] to enable
    /// it.
    ///
    /// # Panics
    ///
    /// Panics if any budget or the capacity is zero, or `quant_step` is not
    /// finite and positive.
    pub fn new(
        cold_budget: usize,
        refine_budget: usize,
        quant_step: f64,
        cache_capacity: usize,
    ) -> Self {
        assert!(cold_budget > 0 && refine_budget > 0, "budgets must be non-zero");
        assert!(cache_capacity > 0, "the cache must hold at least one entry");
        assert!(quant_step.is_finite() && quant_step > 0.0, "quant step must be positive");
        DispatchConfig {
            cold_budget,
            refine_budget,
            quant_step,
            cache_capacity,
            cache_epsilon: 0.0,
        }
    }

    /// Enables the nearest-key cache probe at threshold `epsilon` (mean
    /// per-job signature distance; `0.0` disables it again).
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn with_cache_epsilon(mut self, epsilon: f64) -> Self {
        assert!(epsilon.is_finite() && epsilon >= 0.0, "epsilon must be finite and non-negative");
        self.cache_epsilon = epsilon;
        self
    }
}

/// The result of mapping one dispatch group.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// Whether the cache served this dispatch.
    pub kind: DispatchKind,
    /// Search samples actually evaluated.
    pub samples: usize,
    /// Fitness of the best mapping (GFLOP/s under the throughput objective).
    pub best_fitness: f64,
    /// The best mapping found.
    pub mapping: Mapping,
    /// The full schedule of the best mapping (per-job finish times feed the
    /// latency metrics).
    pub schedule: Schedule,
}

/// The stateful mapping service: one [`MappingCache`] plus the search
/// budgets.
#[derive(Debug)]
pub struct MappingService {
    config: DispatchConfig,
    cache: MappingCache,
}

impl MappingService {
    /// Creates a service with an empty cache.
    pub fn new(config: DispatchConfig) -> Self {
        MappingService { cache: MappingCache::new(config.cache_capacity), config }
    }

    /// The configured budgets.
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// The cache's running counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Read-only view of the cache — the persistence seam: save it with
    /// [`MappingCache::save`] at the end of a run (`MAGMA_SERVE_CACHE_PATH`).
    pub fn cache(&self) -> &MappingCache {
        &self.cache
    }

    /// Installs `cache` — typically one [`MappingCache::load`]ed from a
    /// previous run — re-bounded to the configured capacity. A service that
    /// starts with a persisted cache behaves hit-for-hit identically to the
    /// service that kept running (the warm-restart invariant the
    /// integration suite pins down).
    pub fn install_cache(&mut self, mut cache: MappingCache) {
        cache.rebound(self.config.cache_capacity);
        self.cache = cache;
    }

    /// Plans how a dispatch group will be searched: probes the cache (exact
    /// key, then the nearest-key fallback when `cache_epsilon > 0`) and, on
    /// a hit, adapts the stored solution into a seed population. The plan
    /// carries everything [`MappingService::start_search`] needs; nothing is
    /// evaluated yet.
    ///
    /// `rng` must be the same RNG later handed to `start_search` — the seed
    /// population draws from it, exactly as the pre-session one-call path
    /// did.
    pub fn plan_group(&mut self, problem: &M3e, rng: &mut StdRng) -> SearchPlan {
        self.plan_group_shared(problem, rng, None)
    }

    /// [`MappingService::plan_group`] with a fleet-tier fallthrough: a miss
    /// in this service's own cache probes the [`SharedCache`] (same epsilon,
    /// same tie-break) before falling back to a cold search. A dispatch the
    /// tier serves counts as a miss in the shard's counters and a hit in
    /// the tier's — the two stat streams stay disjoint.
    pub fn plan_group_shared(
        &mut self,
        problem: &M3e,
        rng: &mut StdRng,
        shared: Option<&mut SharedCache>,
    ) -> SearchPlan {
        let sigs = problem.signatures();
        let key = quantize_signatures(sigs, self.config.quant_step);
        let num_accels = MappingProblem::num_accels(problem);
        let magma = Magma::default();
        let budget = self.config.refine_budget;
        // Sized by Magma itself so the seeds fill exactly one initial
        // population (pure in the problem and budget; no RNG draw).
        let pop = magma.population_size_for(problem, budget);
        if let Some(stored) = self.cache.lookup_near(&key, sigs, self.config.cache_epsilon) {
            let seeds = stored.seed_population(rng, sigs, num_accels, pop);
            return SearchPlan { kind: DispatchKind::CacheHit, budget, key, seeds: Some(seeds) };
        }
        if let Some(tier) = shared {
            if let Some(stored) = tier.lookup_near(&key, sigs, self.config.cache_epsilon) {
                let seeds = stored.seed_population(rng, sigs, num_accels, pop);
                return SearchPlan {
                    kind: DispatchKind::CacheHit,
                    budget,
                    key,
                    seeds: Some(seeds),
                };
            }
        }
        SearchPlan {
            kind: DispatchKind::ColdSearch,
            budget: self.config.cold_budget,
            key,
            seeds: None,
        }
    }

    /// Opens the (resumable) search session a plan describes: a seeded
    /// refinement session on a cache hit, a cold MAGMA session on a miss.
    /// The caller owns the stepping — spend [`SearchPlan::budget`] samples
    /// in whatever slices fit its schedule (the serving simulator's overlap
    /// mode interleaves them with accelerator execution), then pass the
    /// finished outcome to [`MappingService::complete_group`].
    pub fn start_search<'a>(
        &self,
        plan: &SearchPlan,
        problem: &'a M3e,
        rng: &'a mut StdRng,
    ) -> Box<dyn SearchSession + 'a> {
        let magma = Magma::default();
        match &plan.seeds {
            Some(seeds) => magma.refine_session(problem, seeds.clone(), rng),
            None => magma.start(problem, rng),
        }
    }

    /// The owned counterpart of [`MappingService::start_search`]: returns a
    /// detached [`SessionState`] so a scheduler can hold many live searches
    /// at once and lend each its problem and RNG per step. Bit-identical to
    /// `start_search` driven at the same slices.
    pub fn open_search(
        &self,
        plan: &SearchPlan,
        problem: &M3e,
        rng: &mut StdRng,
    ) -> Box<dyn SessionState> {
        let magma = Magma::default();
        match &plan.seeds {
            Some(seeds) => magma.refine_open(problem, seeds.clone(), rng),
            None => magma.open(problem, rng),
        }
    }

    /// Completes a planned dispatch: stores the best mapping under the
    /// group's key (so the cache tracks the freshest solution per traffic
    /// pattern) and assembles the [`DispatchOutcome`].
    pub fn complete_group(
        &mut self,
        problem: &M3e,
        plan: SearchPlan,
        outcome: SearchOutcome,
    ) -> DispatchOutcome {
        self.cache.insert(
            plan.key,
            StoredSolution::new(outcome.best_mapping.clone(), Some(problem.signatures().to_vec())),
        );
        let schedule = problem.schedule(&outcome.best_mapping);
        DispatchOutcome {
            kind: plan.kind,
            samples: outcome.history.num_samples(),
            best_fitness: outcome.best_fitness,
            mapping: outcome.best_mapping,
            schedule,
        }
    }

    /// Maps one dispatch group in one call: plan, open the session, step it
    /// to the plan's budget, complete. `seed` drives the (deterministic)
    /// search RNG; the simulator derives it from the trace seed and dispatch
    /// index. This is the legacy-mode path — overlap mode drives the same
    /// plan/start/complete primitives itself, slice by slice.
    pub fn map_group(&mut self, problem: &M3e, seed: u64) -> DispatchOutcome {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = self.plan_group(problem, &mut rng);
        let budget = plan.budget;
        let mut session = self.start_search(&plan, problem, &mut rng);
        loop {
            let remaining = budget - session.spent();
            if remaining == 0 {
                break;
            }
            if session.step(remaining).spent == 0 {
                break;
            }
        }
        let outcome = session.finish();
        self.complete_group(problem, plan, outcome)
    }
}

/// The decision [`MappingService::plan_group`] makes for one dispatch group:
/// how it will be served (cold vs hit), at what budget, under which cache
/// key, and — on a hit — the adapted seed population.
#[derive(Debug, Clone)]
pub struct SearchPlan {
    kind: DispatchKind,
    budget: usize,
    key: SignatureKey,
    seeds: Option<Vec<Mapping>>,
}

impl SearchPlan {
    /// How the dispatch will be served.
    pub fn kind(&self) -> DispatchKind {
        self.kind
    }

    /// The sampling budget the search should spend.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The cache key the group quantized to — what the fleet loop publishes
    /// the completed mapping under in the shared tier (avoiding a second
    /// quantization pass).
    pub fn key(&self) -> &SignatureKey {
        &self.key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::Objective;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};

    fn problem(seed: u64) -> M3e {
        let group = WorkloadSpec::single_group(TaskType::Recommendation, 8, seed);
        M3e::new(settings::build(Setting::S2), group, Objective::Throughput)
    }

    fn config() -> DispatchConfig {
        DispatchConfig::new(80, 8, 1.0, 8)
    }

    #[test]
    fn first_dispatch_is_cold_repeat_is_a_hit() {
        let mut service = MappingService::new(config());
        let p = problem(0);
        let cold = service.map_group(&p, 1);
        assert_eq!(cold.kind, DispatchKind::ColdSearch);
        assert_eq!(cold.samples, 80);
        let hit = service.map_group(&p, 2);
        assert_eq!(hit.kind, DispatchKind::CacheHit);
        assert_eq!(hit.samples, 8);
        assert_eq!(service.cache_len(), 1);
        assert_eq!(service.cache_stats().hits, 1);
        assert_eq!(service.cache_stats().misses, 1);
    }

    #[test]
    fn hit_on_an_identical_group_recovers_cold_quality() {
        let mut service = MappingService::new(config());
        let p = problem(3);
        let cold = service.map_group(&p, 1);
        let hit = service.map_group(&p, 99);
        // The adapted seed IS the stored best mapping (identical signature
        // set), so refinement can only improve on the cold result.
        assert!(hit.best_fitness >= cold.best_fitness * (1.0 - 1e-12));
        assert!(hit.samples * 10 <= cold.samples);
    }

    #[test]
    fn dispatch_is_deterministic_in_the_seed() {
        let p = problem(5);
        let run = || {
            let mut service = MappingService::new(config());
            let a = service.map_group(&p, 7);
            let b = service.map_group(&p, 8);
            (a.best_fitness, a.mapping, b.best_fitness, b.mapping)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_groups_miss_each_other() {
        let mut service = MappingService::new(config());
        let a = problem(0);
        let b = M3e::new(
            settings::build(Setting::S2),
            WorkloadSpec::single_group(TaskType::Vision, 8, 0),
            Objective::Throughput,
        );
        assert_eq!(service.map_group(&a, 1).kind, DispatchKind::ColdSearch);
        assert_eq!(service.map_group(&b, 2).kind, DispatchKind::ColdSearch);
        assert_eq!(service.cache_len(), 2);
    }

    #[test]
    fn schedule_covers_the_group() {
        let mut service = MappingService::new(config());
        let p = problem(1);
        let out = service.map_group(&p, 3);
        assert_eq!(out.schedule.segments().len(), 8);
        assert!(out.schedule.makespan_sec() > 0.0);
    }

    #[test]
    fn sliced_plan_start_complete_equals_one_call_map_group() {
        let p = problem(7);
        // One-call path (cold, then a hit) ...
        let mut one_call = MappingService::new(config());
        let cold_a = one_call.map_group(&p, 1);
        let hit_a = one_call.map_group(&p, 2);
        // ... versus the steppable path driven in slices of 3 samples.
        let mut sliced = MappingService::new(config());
        let mut drive = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            let plan = sliced.plan_group(&p, &mut rng);
            let budget = plan.budget();
            let mut session = sliced.start_search(&plan, &p, &mut rng);
            loop {
                let remaining = budget - session.spent();
                if remaining == 0 {
                    break;
                }
                if session.step(remaining.min(3)).spent == 0 {
                    break;
                }
            }
            let outcome = session.finish();
            sliced.complete_group(&p, plan, outcome)
        };
        let cold_b = drive(1);
        let hit_b = drive(2);
        assert_eq!(cold_a.kind, cold_b.kind);
        assert_eq!(cold_a.samples, cold_b.samples);
        assert_eq!(cold_a.best_fitness.to_bits(), cold_b.best_fitness.to_bits());
        assert_eq!(cold_a.mapping, cold_b.mapping);
        assert_eq!(hit_a.kind, hit_b.kind);
        assert_eq!(hit_a.best_fitness.to_bits(), hit_b.best_fitness.to_bits());
        assert_eq!(hit_a.mapping, hit_b.mapping);
    }

    #[test]
    fn a_shard_miss_falls_through_to_the_shared_tier() {
        let p = problem(0);
        // Shard A solves the group and publishes to the shared tier.
        let mut shard_a = MappingService::new(config());
        let cold = shard_a.map_group(&p, 1);
        let mut shared = SharedCache::new(8, 0);
        let sigs = p.signatures().to_vec();
        let key = quantize_signatures(&sigs, shard_a.config().quant_step);
        shared.publish(key, StoredSolution::new(cold.mapping.clone(), Some(sigs)), 0);
        // Shard B's own cache is cold: alone it would cold-search, but the
        // tier turns the plan into a refine-budget hit. The miss lands in
        // shard B's counters, the hit in the tier's.
        let mut shard_b = MappingService::new(config());
        let mut rng = StdRng::seed_from_u64(2);
        let plan = shard_b.plan_group_shared(&p, &mut rng, Some(&mut shared));
        assert_eq!(plan.kind(), DispatchKind::CacheHit);
        assert_eq!(plan.budget(), shard_b.config().refine_budget);
        assert_eq!(shard_b.cache_stats().misses, 1);
        assert_eq!(shard_b.cache_stats().hits, 0);
        assert_eq!(shared.stats().hits, 1);
    }

    #[test]
    fn an_installed_cache_restores_hit_behaviour() {
        let p = problem(0);
        let mut service = MappingService::new(config());
        service.map_group(&p, 1);
        let saved = service.cache().clone();
        let mut restarted = MappingService::new(config());
        restarted.install_cache(saved);
        assert_eq!(restarted.map_group(&p, 2).kind, DispatchKind::CacheHit);
    }

    #[test]
    fn nearest_key_probe_turns_a_similar_group_into_a_hit() {
        // Same task, same size, different window: exact keys (almost
        // surely) differ, so exact-only misses but a generous epsilon hits.
        let a = problem(0);
        let b = problem(9);
        let mut exact = MappingService::new(config());
        exact.map_group(&a, 1);
        let exact_b = exact.map_group(&b, 2);
        let mut near = MappingService::new(config().with_cache_epsilon(1e6));
        near.map_group(&a, 1);
        let near_b = near.map_group(&b, 2);
        assert_eq!(exact_b.kind, DispatchKind::ColdSearch);
        assert_eq!(near_b.kind, DispatchKind::CacheHit);
        assert_eq!(near.cache_stats().near_hits, 1);
    }
}
