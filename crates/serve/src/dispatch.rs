//! The mapping service: cache-hit adapt-then-refine vs cache-miss cold
//! search, both through the parallel batch evaluator.
//!
//! Every dispatch group becomes an [`M3e`] problem; the service then either
//!
//! * **hits** the [`MappingCache`]: the stored solution is adapted onto the
//!   new group by profile matching ([`StoredSolution::seed_population`], the
//!   machinery behind `WarmStartEngine::adapt_matched`) and refined with the
//!   small `refine_budget` via [`Magma::refine`] — the budget-limited resume
//!   path; or
//! * **misses**: a full MAGMA search runs at `cold_budget`.
//!
//! Both paths evaluate candidates through `magma_optim::parallel` (every
//! `Magma` search batches its generations), so `MAGMA_THREADS` is a pure
//! wall-clock knob here too — dispatch outcomes are bit-identical at every
//! worker count. Either way the best mapping found is (re-)inserted under
//! the group's key, so the cache tracks the freshest solution per traffic
//! pattern.

use crate::cache::{quantize_signatures, CacheStats, MappingCache};
use magma_m3e::{M3e, Mapping, MappingProblem, Schedule, StoredSolution};
use magma_optim::{Magma, Optimizer};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How a dispatch was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DispatchKind {
    /// Cache miss: full MAGMA search at the cold budget.
    ColdSearch,
    /// Cache hit: stored solution adapted and refined at the small budget.
    CacheHit,
}

impl fmt::Display for DispatchKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchKind::ColdSearch => f.write_str("cold-search"),
            DispatchKind::CacheHit => f.write_str("cache-hit"),
        }
    }
}

/// Budgets and cache geometry of the mapping service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchConfig {
    /// Sampling budget of a cache-miss search.
    pub cold_budget: usize,
    /// Sampling budget of a cache-hit refinement (the ≤ 10%-of-cold lever).
    pub refine_budget: usize,
    /// Log-scale quantization step of the cache key, in nats.
    pub quant_step: f64,
    /// LRU capacity of the mapping cache.
    pub cache_capacity: usize,
}

impl DispatchConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if any budget or the capacity is zero, or `quant_step` is not
    /// finite and positive.
    pub fn new(
        cold_budget: usize,
        refine_budget: usize,
        quant_step: f64,
        cache_capacity: usize,
    ) -> Self {
        assert!(cold_budget > 0 && refine_budget > 0, "budgets must be non-zero");
        assert!(cache_capacity > 0, "the cache must hold at least one entry");
        assert!(quant_step.is_finite() && quant_step > 0.0, "quant step must be positive");
        DispatchConfig { cold_budget, refine_budget, quant_step, cache_capacity }
    }
}

/// The result of mapping one dispatch group.
#[derive(Debug, Clone)]
pub struct DispatchOutcome {
    /// Whether the cache served this dispatch.
    pub kind: DispatchKind,
    /// Search samples actually evaluated.
    pub samples: usize,
    /// Fitness of the best mapping (GFLOP/s under the throughput objective).
    pub best_fitness: f64,
    /// The best mapping found.
    pub mapping: Mapping,
    /// The full schedule of the best mapping (per-job finish times feed the
    /// latency metrics).
    pub schedule: Schedule,
}

/// The stateful mapping service: one [`MappingCache`] plus the search
/// budgets.
#[derive(Debug)]
pub struct MappingService {
    config: DispatchConfig,
    cache: MappingCache,
}

impl MappingService {
    /// Creates a service with an empty cache.
    pub fn new(config: DispatchConfig) -> Self {
        MappingService { cache: MappingCache::new(config.cache_capacity), config }
    }

    /// The configured budgets.
    pub fn config(&self) -> &DispatchConfig {
        &self.config
    }

    /// The cache's running counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Number of live cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Maps one dispatch group. `seed` drives the (deterministic) search
    /// RNG; the simulator derives it from the trace seed and dispatch index.
    pub fn map_group(&mut self, problem: &M3e, seed: u64) -> DispatchOutcome {
        let sigs = problem.signatures();
        let key = quantize_signatures(sigs, self.config.quant_step);
        let mut rng = StdRng::seed_from_u64(seed);
        let num_accels = MappingProblem::num_accels(problem);
        let magma = Magma::default();

        let (kind, outcome) = match self.cache.lookup(&key) {
            Some(stored) => {
                let budget = self.config.refine_budget;
                // Sized by Magma itself so the seeds fill exactly one
                // initial population.
                let pop = magma.population_size_for(problem, budget);
                let seeds = stored.seed_population(&mut rng, sigs, num_accels, pop);
                (DispatchKind::CacheHit, magma.refine(problem, seeds, budget, &mut rng))
            }
            None => {
                (DispatchKind::ColdSearch, magma.search(problem, self.config.cold_budget, &mut rng))
            }
        };

        self.cache
            .insert(key, StoredSolution::new(outcome.best_mapping.clone(), Some(sigs.to_vec())));
        let schedule = problem.schedule(&outcome.best_mapping);
        DispatchOutcome {
            kind,
            samples: outcome.history.num_samples(),
            best_fitness: outcome.best_fitness,
            mapping: outcome.best_mapping,
            schedule,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_m3e::Objective;
    use magma_model::{TaskType, WorkloadSpec};
    use magma_platform::{settings, Setting};

    fn problem(seed: u64) -> M3e {
        let group = WorkloadSpec::single_group(TaskType::Recommendation, 8, seed);
        M3e::new(settings::build(Setting::S2), group, Objective::Throughput)
    }

    fn config() -> DispatchConfig {
        DispatchConfig::new(80, 8, 1.0, 8)
    }

    #[test]
    fn first_dispatch_is_cold_repeat_is_a_hit() {
        let mut service = MappingService::new(config());
        let p = problem(0);
        let cold = service.map_group(&p, 1);
        assert_eq!(cold.kind, DispatchKind::ColdSearch);
        assert_eq!(cold.samples, 80);
        let hit = service.map_group(&p, 2);
        assert_eq!(hit.kind, DispatchKind::CacheHit);
        assert_eq!(hit.samples, 8);
        assert_eq!(service.cache_len(), 1);
        assert_eq!(service.cache_stats().hits, 1);
        assert_eq!(service.cache_stats().misses, 1);
    }

    #[test]
    fn hit_on_an_identical_group_recovers_cold_quality() {
        let mut service = MappingService::new(config());
        let p = problem(3);
        let cold = service.map_group(&p, 1);
        let hit = service.map_group(&p, 99);
        // The adapted seed IS the stored best mapping (identical signature
        // set), so refinement can only improve on the cold result.
        assert!(hit.best_fitness >= cold.best_fitness * (1.0 - 1e-12));
        assert!(hit.samples * 10 <= cold.samples);
    }

    #[test]
    fn dispatch_is_deterministic_in_the_seed() {
        let p = problem(5);
        let run = || {
            let mut service = MappingService::new(config());
            let a = service.map_group(&p, 7);
            let b = service.map_group(&p, 8);
            (a.best_fitness, a.mapping, b.best_fitness, b.mapping)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_groups_miss_each_other() {
        let mut service = MappingService::new(config());
        let a = problem(0);
        let b = M3e::new(
            settings::build(Setting::S2),
            WorkloadSpec::single_group(TaskType::Vision, 8, 0),
            Objective::Throughput,
        );
        assert_eq!(service.map_group(&a, 1).kind, DispatchKind::ColdSearch);
        assert_eq!(service.map_group(&b, 2).kind, DispatchKind::ColdSearch);
        assert_eq!(service.cache_len(), 2);
    }

    #[test]
    fn schedule_covers_the_group() {
        let mut service = MappingService::new(config());
        let p = problem(1);
        let out = service.map_group(&p, 3);
        assert_eq!(out.schedule.segments().len(), 8);
        assert!(out.schedule.makespan_sec() > 0.0);
    }
}
