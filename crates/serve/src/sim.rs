//! The deterministic, virtual-clock, event-driven serving simulator.
//!
//! The loop closes the paper's missing link from *traffic* to *mappings*:
//! arrivals (from [`crate::trace`]) feed the admission batcher
//! ([`crate::batcher`]); when the accelerator is free and a group is ready,
//! the mapping service ([`crate::dispatch`]) searches or cache-adapts a
//! mapping; the resulting schedule's per-job finish times advance the
//! virtual clock and feed the metrics pipeline ([`crate::metrics`]).
//!
//! Everything is virtual-time: searching costs `overhead_sec_per_sample`
//! per evaluated sample (so cache hits buy latency, not just samples), and
//! the group then occupies the accelerator for its schedule's makespan.
//! The simulation is a pure function of `(config, mix)` — no wall clock, no
//! ambient RNG — and every search evaluates candidates through the parallel
//! batch oracle, so results are bit-identical at every `MAGMA_THREADS`.
//!
//! # Overlap vs legacy mode
//!
//! The simulator runs in one of two modes ([`SimConfig::overlap`], knob
//! `MAGMA_SERVE_OVERLAP`, default on):
//!
//! * **Legacy (serial)** — one timeline: a group is cut when the batcher is
//!   ready *and the accelerator is free*; its whole search runs as one lump
//!   of mapper time, then execution follows. This is the pre-session
//!   behaviour, kept as the baseline.
//! * **Overlap** — the mapper and the accelerator are separate resources: a
//!   group is cut when the batcher is ready and the *mapper* is free, its
//!   search advances in [`SimConfig::search_slice`]-sample slices through
//!   the steppable session API (each slice charging its **measured** spent
//!   samples to the mapper clock), and execution starts at `max(search end,
//!   accelerator free)` — so group *g+1*'s search hides behind group *g*'s
//!   execution. By the session-stepping invariant the slice size (and the
//!   mode itself) never changes which mapping a given dispatch group gets;
//!   overlap changes *when* things happen, which is exactly the end-to-end
//!   latency win `serve_sim` reports.
//!
//! # Calibration
//!
//! Arrival rates are specified as an *offered load* relative to the
//! platform's unoptimized service rate: a calibration group (the first
//! `group_target` jobs of the mix, round-robin across tenants) is scheduled
//! under a seeded random mapping, and its per-job makespan share becomes the
//! unit the mean inter-arrival gap is derived from. This keeps one knob
//! meaningful across platforms from S1 to S6. The per-job SLA bound is
//! `sla_x × (batch window + calibrated group service time + cold mapper
//! overhead)` — the latency a job would see in a healthy, uncongested
//! system, times a tolerance factor.

use crate::batcher::{AdmissionBatcher, BatchPolicy, DispatchGroup};
use crate::cache::MappingCache;
use crate::dispatch::{DispatchConfig, DispatchOutcome, MappingService};
use crate::metrics::{CacheReport, DispatchSummary, LatencyStats, ServeMetrics, TenantReport};
use crate::trace::{generate_trace, Scenario, TraceParams};
use magma_m3e::{M3e, Mapping, Objective};
use magma_model::{Group, JobId, TenantMix};
use magma_platform::settings::ServeKnobs;
use magma_platform::{PlatformSpec, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full parameter set of one simulated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The accelerator platform: a Table III setting or a custom
    /// (registry-loaded) platform.
    pub platform: PlatformSpec,
    /// The traffic scenario.
    pub scenario: Scenario,
    /// Arrivals to simulate.
    pub requests: usize,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Admission deadline in batch-formation windows.
    pub max_wait_x: f64,
    /// Mini-batch size per job.
    pub mini_batch: usize,
    /// Offered load relative to the calibrated service rate.
    pub offered_load: f64,
    /// SLA tolerance factor (see module docs).
    pub sla_x: f64,
    /// Virtual mapper cost per evaluated sample, in seconds.
    pub overhead_sec_per_sample: f64,
    /// Whether search overlaps accelerator execution (see module docs).
    pub overlap: bool,
    /// Samples per search slice in overlap mode (result-invariant; sets the
    /// granularity at which the mapper clock advances).
    pub search_slice: usize,
    /// Search budgets and cache geometry.
    pub dispatch: DispatchConfig,
    /// Mapping-cache persistence file (`MAGMA_SERVE_CACHE_PATH`): loaded —
    /// if present — before the run, saved back after it, so a restarted
    /// simulator starts warm. `None` keeps the cache in-memory only.
    pub cache_path: Option<std::path::PathBuf>,
    /// Trace/search seed.
    pub seed: u64,
}

impl SimConfig {
    /// Builds a config from the `MAGMA_SERVE_*` knob family for a scenario
    /// on the default platform (S2, the paper's main evaluation setting).
    pub fn from_knobs(knobs: &ServeKnobs, scenario: Scenario) -> Self {
        SimConfig {
            platform: PlatformSpec::Setting(Setting::S2),
            scenario,
            requests: knobs.requests,
            group_target: knobs.group_target,
            max_wait_x: knobs.max_wait_x,
            mini_batch: magma_model::workload::DEFAULT_MINI_BATCH,
            offered_load: knobs.offered_load,
            sla_x: knobs.sla_x,
            overhead_sec_per_sample: knobs.overhead_us_per_sample * 1e-6,
            overlap: knobs.overlap,
            search_slice: knobs.search_slice,
            dispatch: DispatchConfig::new(
                knobs.cold_budget,
                knobs.refine_budget,
                knobs.quant_step,
                knobs.cache_capacity,
            )
            .with_cache_epsilon(knobs.cache_epsilon),
            cache_path: knobs.cache_path.as_ref().map(std::path::PathBuf::from),
            seed: knobs.seed,
        }
    }

    /// This config with overlap mode forced on or off (used by the report
    /// layer to run the same scenario in both modes).
    pub fn with_overlap(mut self, overlap: bool) -> Self {
        self.overlap = overlap;
        self
    }

    /// This config with cache persistence at `path` (what
    /// `MAGMA_SERVE_CACHE_PATH` maps to; the warm-restart tests set it
    /// directly).
    pub fn with_cache_path(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }
}

/// The output of one simulated scenario: the metrics block plus the
/// calibration constants that shaped it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The full metrics block.
    pub metrics: ServeMetrics,
    /// The calibrated mean inter-arrival gap, in virtual seconds.
    pub mean_interarrival_sec: f64,
    /// The per-job SLA bound applied, in virtual seconds.
    pub sla_sec: f64,
}

/// One completed job's bookkeeping (shared with the fleet simulator).
pub(crate) struct JobRecord {
    pub(crate) tenant: usize,
    pub(crate) arrival_sec: f64,
    pub(crate) dispatched_sec: f64,
    pub(crate) completed_sec: f64,
    pub(crate) flops: u64,
}

/// The load calibration of one reference platform (see the module docs):
/// everything the trace synthesis and the SLA bound derive from the
/// unoptimized service rate.
pub(crate) struct Calibration {
    pub(crate) mean_interarrival_sec: f64,
    pub(crate) batch_window_sec: f64,
    pub(crate) sla_sec: f64,
}

/// Calibrates arrival rate and SLA bound against `platform`'s unoptimized
/// service time, exactly as [`simulate`] always has (same seeded random
/// mapping, same arithmetic). The fleet simulator calibrates against its
/// *reference* (first) shard so the offered load means "load on one shard".
#[allow(clippy::too_many_arguments)]
pub(crate) fn calibrate(
    platform: &magma_platform::AcceleratorPlatform,
    mix: &TenantMix,
    group_target: usize,
    mini_batch: usize,
    offered_load: f64,
    sla_x: f64,
    cold_budget: usize,
    overhead_sec_per_sample: f64,
    seed: u64,
) -> Calibration {
    let calib_group = calibration_group(mix, group_target, mini_batch);
    let calib_n = calib_group.len();
    let calib_problem = M3e::new(platform.clone(), calib_group, Objective::Throughput);
    let mut calib_rng = StdRng::seed_from_u64(seed);
    let calib_mapping = Mapping::random(&mut calib_rng, calib_n, platform.num_sub_accels());
    let calib_makespan = calib_problem.schedule(&calib_mapping).makespan_sec();
    let mean_interarrival_sec = calib_makespan / calib_n as f64 / offered_load;
    let batch_window_sec = group_target as f64 * mean_interarrival_sec;
    let cold_overhead_sec = cold_budget as f64 * overhead_sec_per_sample;
    let sla_sec = sla_x * (batch_window_sec + calib_makespan + cold_overhead_sec);
    Calibration { mean_interarrival_sec, batch_window_sec, sla_sec }
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Panics if the config is degenerate (zero requests/group target, a
/// non-positive offered load) — [`SimConfig::from_knobs`] never builds such
/// a config.
pub fn simulate(config: &SimConfig, mix: &TenantMix) -> SimResult {
    assert!(config.requests > 0 && config.group_target > 0);
    assert!(config.offered_load > 0.0 && config.offered_load.is_finite());
    let platform = config.platform.build();

    // --- calibration: unoptimized service time of one representative group.
    let Calibration { mean_interarrival_sec, batch_window_sec, sla_sec } = calibrate(
        &platform,
        mix,
        config.group_target,
        config.mini_batch,
        config.offered_load,
        config.sla_x,
        config.dispatch.cold_budget,
        config.overhead_sec_per_sample,
        config.seed,
    );

    // --- trace + components.
    let trace = generate_trace(
        &TraceParams {
            scenario: config.scenario,
            requests: config.requests,
            mean_interarrival_sec,
            mini_batch: config.mini_batch,
            seed: config.seed,
        },
        mix,
    );
    let batcher = AdmissionBatcher::new(BatchPolicy::new(
        config.group_target,
        config.max_wait_x * batch_window_sec,
    ));
    let mut service = MappingService::new(config.dispatch);
    // Warm restart: install a persisted cache when one exists. A missing
    // file is the normal first run; an unreadable one is reported and
    // ignored (a serving fleet must come up cold rather than not at all).
    if let Some(path) = &config.cache_path {
        if path.exists() {
            match MappingCache::load(path) {
                Ok(cache) => service.install_cache(cache),
                Err(e) => {
                    eprintln!("warning: ignoring mapping cache at {}: {e}", path.display())
                }
            }
        }
    }

    let (records, outcomes) = if config.overlap {
        run_overlap(config, &platform, trace, batcher, &mut service)
    } else {
        run_legacy(config, &platform, trace, batcher, &mut service)
    };

    if let Some(path) = &config.cache_path {
        if let Err(e) = service.cache().save(path) {
            eprintln!("warning: could not persist mapping cache to {}: {e}", path.display());
        }
    }

    let metrics = assemble_metrics(&records, &outcomes, cache_report(&service), mix, sla_sec);
    SimResult { metrics, mean_interarrival_sec, sla_sec }
}

/// Builds the M3E problem of one dispatch group.
pub(crate) fn group_problem(
    platform: &magma_platform::AcceleratorPlatform,
    group: &DispatchGroup,
) -> M3e {
    let jobs: Vec<_> =
        group.arrivals.iter().enumerate().map(|(k, a)| a.job.clone().with_id(JobId(k))).collect();
    M3e::new(platform.clone(), Group::new(jobs), Objective::Throughput)
}

/// Per-dispatch search seed, decorrelated by the golden-ratio stride.
pub(crate) fn dispatch_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_add((index as u64).wrapping_mul(K_SEED_STRIDE))
}

/// Appends the completed group's job records, given when execution started.
pub(crate) fn record_group(
    records: &mut Vec<JobRecord>,
    group: &DispatchGroup,
    outcome: &DispatchOutcome,
    dispatched_sec: f64,
    exec_start_sec: f64,
) {
    let mut end_by_job = vec![0.0f64; group.arrivals.len()];
    for seg in outcome.schedule.segments() {
        end_by_job[seg.job.0] = seg.end_sec;
    }
    for (k, a) in group.arrivals.iter().enumerate() {
        records.push(JobRecord {
            tenant: a.tenant,
            arrival_sec: a.time_sec,
            dispatched_sec,
            completed_sec: exec_start_sec + end_by_job[k],
            flops: a.job.flops(),
        });
    }
}

/// The legacy (serial) event loop: one timeline, the accelerator is busy
/// through search *and* execution, the next group waits for both. Kept
/// byte-compatible with the pre-overlap simulator — the mapper cost is still
/// the search's full sample count times the per-sample overhead, charged as
/// one lump before execution.
fn run_legacy(
    config: &SimConfig,
    platform: &magma_platform::AcceleratorPlatform,
    trace: Vec<crate::trace::Arrival>,
    mut batcher: AdmissionBatcher,
    service: &mut MappingService,
) -> (Vec<JobRecord>, Vec<DispatchOutcome>) {
    let mut records: Vec<JobRecord> = Vec::with_capacity(trace.len());
    let mut outcomes: Vec<DispatchOutcome> = Vec::new();
    let mut free_at = 0.0f64;
    let mut next = 0usize;
    loop {
        let next_arrival = trace.get(next).map(|a| a.time_sec);
        let dispatch_at = batcher.earliest_ready().map(|r| r.max(free_at));
        match (next_arrival, dispatch_at) {
            // The next arrival happens before (or exactly when) the next
            // group could be cut: admit it first so it can join the group.
            (Some(ta), Some(td)) if ta <= td => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (Some(_), None) => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (_, Some(td)) => {
                let group = batcher.take_group(td).expect("ready time reached");
                let problem = group_problem(platform, &group);
                let outcome =
                    service.map_group(&problem, dispatch_seed(config.seed, outcomes.len()));
                let overhead = outcome.samples as f64 * config.overhead_sec_per_sample;
                record_group(&mut records, &group, &outcome, td, td + overhead);
                free_at = td + overhead + outcome.schedule.makespan_sec();
                outcomes.push(outcome);
            }
            (None, None) => break,
        }
    }
    (records, outcomes)
}

/// The overlap event loop: the mapper (search) and the accelerator
/// (execution) are separate resources. A group is cut as soon as the batcher
/// is ready *and the mapper is free* — not when the accelerator is — and its
/// search advances in slices of `search_slice` samples through the steppable
/// session API, each slice charging its **measured** spent samples to the
/// mapper clock. Execution then starts at `max(search end, accelerator
/// free)`: while group *g* executes, group *g+1*'s search is already
/// running, hiding mapper latency behind execution. By the session-stepping
/// invariant the slice size never changes any mapping result — only the
/// virtual clock's granularity.
fn run_overlap(
    config: &SimConfig,
    platform: &magma_platform::AcceleratorPlatform,
    trace: Vec<crate::trace::Arrival>,
    mut batcher: AdmissionBatcher,
    service: &mut MappingService,
) -> (Vec<JobRecord>, Vec<DispatchOutcome>) {
    let mut records: Vec<JobRecord> = Vec::with_capacity(trace.len());
    let mut outcomes: Vec<DispatchOutcome> = Vec::new();
    let mut mapper_free = 0.0f64;
    let mut accel_free = 0.0f64;
    let mut next = 0usize;
    let slice = config.search_slice.max(1);
    loop {
        let next_arrival = trace.get(next).map(|a| a.time_sec);
        let cut_at = batcher.earliest_ready().map(|r| r.max(mapper_free));
        match (next_arrival, cut_at) {
            (Some(ta), Some(td)) if ta <= td => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (Some(_), None) => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (_, Some(td)) => {
                let group = batcher.take_group(td).expect("ready time reached");
                let problem = group_problem(platform, &group);
                let mut rng = StdRng::seed_from_u64(dispatch_seed(config.seed, outcomes.len()));
                let plan = service.plan_group(&problem, &mut rng);
                let budget = plan.budget();
                // Advance the search in slices on the mapper clock; the
                // accelerator may still be executing the previous group.
                // The clock is recomputed from the session's *cumulative*
                // measured samples (not accumulated per slice) so the sum's
                // floating-point rounding — and therefore every metric — is
                // bit-identical at any slice size.
                let mut clock = td;
                let mut session = service.start_search(&plan, &problem, &mut rng);
                loop {
                    let remaining = budget - session.spent();
                    if remaining == 0 {
                        break;
                    }
                    let report = session.step(remaining.min(slice));
                    if report.spent == 0 {
                        break;
                    }
                    // Measured per-step mapper cost, not a flat lump.
                    clock = td + report.total_spent as f64 * config.overhead_sec_per_sample;
                }
                let outcome = service.complete_group(&problem, plan, session.finish());
                let search_end = clock;
                let exec_start = search_end.max(accel_free);
                record_group(&mut records, &group, &outcome, td, exec_start);
                accel_free = exec_start + outcome.schedule.makespan_sec();
                mapper_free = search_end;
                outcomes.push(outcome);
            }
            (None, None) => break,
        }
    }
    (records, outcomes)
}

/// Seed stride decorrelating per-dispatch search RNG streams (the 64-bit
/// golden ratio, as used by splitmix-style generators).
pub(crate) const K_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The calibration group: the first `target` jobs of the mix, round-robin
/// across tenants, re-identified 0..target.
pub(crate) fn calibration_group(mix: &TenantMix, target: usize, mini_batch: usize) -> Group {
    let mut streams: Vec<_> = mix.tenants().iter().map(|t| t.job_stream(mini_batch)).collect();
    let tenants = streams.len();
    let jobs = (0..target).map(|k| streams[k % tenants].next_job(JobId(k))).collect();
    Group::new(jobs)
}

/// The cache block of one mapping service, as reported.
pub(crate) fn cache_report(service: &MappingService) -> CacheReport {
    let stats = service.cache_stats();
    CacheReport {
        hits: stats.hits,
        misses: stats.misses,
        near_hits: stats.near_hits,
        evictions: stats.evictions,
        hit_rate: stats.hit_rate(),
        entries: service.cache_len(),
    }
}

/// Folds the run's records into the metrics block. Takes the cache block by
/// value so the fleet simulator can pass an aggregate over many shards.
pub(crate) fn assemble_metrics(
    records: &[JobRecord],
    outcomes: &[DispatchOutcome],
    cache: CacheReport,
    mix: &TenantMix,
    sla_sec: f64,
) -> ServeMetrics {
    let duration_sec = records.iter().map(|r| r.completed_sec).fold(0.0f64, f64::max);
    let total_flops: u64 = records.iter().map(|r| r.flops).sum();
    let (jobs_per_sec, throughput_gflops) = if duration_sec > 0.0 {
        (records.len() as f64 / duration_sec, total_flops as f64 / duration_sec / 1e9)
    } else {
        (0.0, 0.0)
    };

    let queueing = LatencyStats::from_samples(
        records.iter().map(|r| r.dispatched_sec - r.arrival_sec).collect(),
    );
    let service_lat = LatencyStats::from_samples(
        records.iter().map(|r| r.completed_sec - r.dispatched_sec).collect(),
    );
    let end_to_end = LatencyStats::from_samples(
        records.iter().map(|r| r.completed_sec - r.arrival_sec).collect(),
    );

    let tenants = mix
        .tenants()
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let latencies: Vec<f64> = records
                .iter()
                .filter(|r| r.tenant == i)
                .map(|r| r.completed_sec - r.arrival_sec)
                .collect();
            let jobs = latencies.len();
            // Per-tenant SLA contract: the baseline bound scaled by the
            // tenant's multiplier (uniform bound without a contract).
            let tenant_sla_sec = tenant.effective_sla_sec(sla_sec);
            let sla_violations = latencies.iter().filter(|&&l| l > tenant_sla_sec).count();
            TenantReport {
                tenant: tenant.name().to_string(),
                task: tenant.task(),
                jobs,
                latency: LatencyStats::from_samples(latencies),
                sla_sec: tenant_sla_sec,
                sla_multiplier: tenant.sla_multiplier().unwrap_or(1.0),
                sla_violations,
                sla_violation_rate: if jobs == 0 {
                    0.0
                } else {
                    sla_violations as f64 / jobs as f64
                },
            }
        })
        .collect();

    ServeMetrics {
        jobs: records.len(),
        duration_sec,
        jobs_per_sec,
        throughput_gflops,
        queueing,
        service: service_lat,
        end_to_end,
        tenants,
        cache,
        dispatch: DispatchSummary::from_outcomes(outcomes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::TaskType;

    fn tiny_config(scenario: Scenario, seed: u64) -> SimConfig {
        SimConfig {
            platform: PlatformSpec::Setting(Setting::S2),
            scenario,
            requests: 48,
            group_target: 8,
            max_wait_x: 2.0,
            mini_batch: 4,
            offered_load: 0.7,
            sla_x: 3.0,
            overhead_sec_per_sample: 1e-6,
            overlap: false,
            search_slice: 8,
            dispatch: DispatchConfig::new(40, 4, 1.0, 16),
            cache_path: None,
            seed,
        }
    }

    #[test]
    fn every_arrival_completes_exactly_once() {
        let result = simulate(&tiny_config(Scenario::Poisson, 0), &TenantMix::standard());
        let m = &result.metrics;
        assert_eq!(m.jobs, 48);
        assert_eq!(m.tenants.iter().map(|t| t.jobs).sum::<usize>(), 48);
        assert_eq!(m.dispatch.cold + m.dispatch.hits, m.dispatch.dispatches);
        assert!(m.duration_sec > 0.0);
        assert!(m.jobs_per_sec > 0.0);
        assert!(m.throughput_gflops > 0.0);
    }

    #[test]
    fn latency_decomposition_is_consistent() {
        let result = simulate(&tiny_config(Scenario::Bursty, 1), &TenantMix::standard());
        let m = &result.metrics;
        // Percentile ordering within each profile.
        for stats in [&m.queueing, &m.service, &m.end_to_end] {
            assert!(stats.p50_sec <= stats.p95_sec);
            assert!(stats.p95_sec <= stats.p99_sec);
            assert!(stats.p99_sec <= stats.max_sec);
            assert!(stats.mean_sec >= 0.0);
        }
        // End-to-end mean = queueing mean + service mean (same population).
        let sum = m.queueing.mean_sec + m.service.mean_sec;
        assert!((m.end_to_end.mean_sec - sum).abs() < 1e-9 * sum.max(1.0));
    }

    #[test]
    fn simulation_is_deterministic() {
        let mix = TenantMix::standard();
        let a = simulate(&tiny_config(Scenario::Drift, 2), &mix);
        let b = simulate(&tiny_config(Scenario::Drift, 2), &mix);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_tenant_traffic_hits_the_cache() {
        let mix =
            TenantMix::single("recom", TaskType::Recommendation, vec![magma_model::zoo::ncf()]);
        let mut config = tiny_config(Scenario::Poisson, 3);
        config.requests = 64;
        let result = simulate(&config, &mix);
        let d = &result.metrics.dispatch;
        assert!(d.hits > 0, "periodic single-tenant windows must recur: {d:?}");
        assert!(result.metrics.cache.hit_rate > 0.0);
        // The acceptance criterion at miniature scale: hits reach ≥ 90% of
        // cold throughput on ≤ 10% of the cold sample budget.
        assert!(
            d.hit_cold_throughput_ratio >= 0.9,
            "hit/cold ratio {} too low",
            d.hit_cold_throughput_ratio
        );
        assert!(d.hit_sample_fraction <= 0.101, "fraction {}", d.hit_sample_fraction);
    }

    #[test]
    fn higher_load_increases_queueing() {
        let mix = TenantMix::standard();
        let mut relaxed = tiny_config(Scenario::Poisson, 4);
        relaxed.offered_load = 0.2;
        let mut loaded = tiny_config(Scenario::Poisson, 4);
        loaded.offered_load = 3.0;
        let a = simulate(&relaxed, &mix);
        let b = simulate(&loaded, &mix);
        // Queueing latency is measured in units of the (load-dependent)
        // inter-arrival scale; normalize before comparing.
        let norm_a = a.metrics.queueing.mean_sec / a.mean_interarrival_sec;
        let norm_b = b.metrics.queueing.mean_sec / b.mean_interarrival_sec;
        assert!(norm_b > norm_a, "overload must queue: {norm_b} vs {norm_a}");
    }

    #[test]
    fn sla_bound_scales_with_tolerance() {
        let mix = TenantMix::standard();
        let mut tight = tiny_config(Scenario::Poisson, 5);
        tight.sla_x = 0.01;
        let mut loose = tiny_config(Scenario::Poisson, 5);
        loose.sla_x = 100.0;
        let t = simulate(&tight, &mix);
        let l = simulate(&loose, &mix);
        let violations =
            |r: &SimResult| r.metrics.tenants.iter().map(|t| t.sla_violations).sum::<usize>();
        assert!(violations(&t) > 0, "a near-zero SLA must violate");
        assert_eq!(violations(&l), 0, "a huge SLA must not violate");
        assert!(t.sla_sec < l.sla_sec);
    }

    #[test]
    fn from_knobs_mirrors_the_knob_family() {
        let knobs = ServeKnobs::smoke();
        let config = SimConfig::from_knobs(&knobs, Scenario::Bursty);
        assert_eq!(config.requests, knobs.requests);
        assert_eq!(config.group_target, knobs.group_target);
        assert_eq!(config.dispatch.cold_budget, knobs.cold_budget);
        assert_eq!(config.dispatch.refine_budget, knobs.refine_budget);
        assert_eq!(config.scenario, Scenario::Bursty);
        assert!(config.overlap, "overlap mode defaults on");
        assert_eq!(config.search_slice, knobs.search_slice);
        assert_eq!(config.dispatch.cache_epsilon, knobs.cache_epsilon);
    }

    #[test]
    fn overlap_mode_is_deterministic_and_slice_size_invariant() {
        // The slice size only sets the mapper clock's granularity; by the
        // session-stepping invariant every mapping (and therefore every
        // metric) is identical at any slice size.
        let mix = TenantMix::standard();
        let base = tiny_config(Scenario::Poisson, 6).with_overlap(true);
        let a = simulate(&base, &mix);
        let mut one = base.clone();
        one.search_slice = 1;
        let mut big = base.clone();
        big.search_slice = 4096;
        assert_eq!(a, simulate(&one, &mix));
        assert_eq!(a, simulate(&big, &mix));
        assert_eq!(a, simulate(&base, &mix));
    }

    #[test]
    fn overlap_mode_cuts_mean_end_to_end_latency_under_load() {
        // Same trace, same budgets: overlap hides search behind execution
        // and never waits for the accelerator to cut a group, so the mean
        // end-to-end latency must drop.
        let mix =
            TenantMix::single("recom", TaskType::Recommendation, vec![magma_model::zoo::ncf()]);
        let mut config = tiny_config(Scenario::Poisson, 3);
        config.requests = 64;
        config.offered_load = 1.5;
        let legacy = simulate(&config.clone().with_overlap(false), &mix);
        let overlap = simulate(&config.with_overlap(true), &mix);
        assert!(
            overlap.metrics.end_to_end.mean_sec < legacy.metrics.end_to_end.mean_sec,
            "overlap {} must beat legacy {}",
            overlap.metrics.end_to_end.mean_sec,
            legacy.metrics.end_to_end.mean_sec
        );
    }

    #[test]
    fn per_tenant_sla_contracts_scale_the_bound() {
        let mix = TenantMix::standard().with_sla_multipliers(&[0.001, 1.0, 1000.0]);
        let result = simulate(&tiny_config(Scenario::Poisson, 5), &mix);
        let tenants = &result.metrics.tenants;
        assert_eq!(tenants[0].sla_multiplier, 0.001);
        assert_eq!(tenants[2].sla_multiplier, 1000.0);
        assert!(tenants[0].sla_sec < tenants[1].sla_sec);
        assert!(tenants[1].sla_sec < tenants[2].sla_sec);
        // A near-zero contract must violate on every job; a huge one never.
        assert_eq!(tenants[0].sla_violations, tenants[0].jobs);
        assert!(tenants[0].jobs > 0);
        assert_eq!(tenants[2].sla_violations, 0);
        // The uncontracted baseline equals the uniform bound.
        assert_eq!(tenants[1].sla_sec, result.sla_sec);
    }

    #[test]
    fn nearest_key_probe_unlocks_mix_traffic_hits() {
        // Mixed-tenant windows essentially never repeat a quantized
        // signature multiset; with the probe enabled, similar windows hit.
        let mix = TenantMix::standard();
        let mut config = tiny_config(Scenario::Poisson, 2);
        config.requests = 64;
        let exact = simulate(&config, &mix);
        config.dispatch = config.dispatch.with_cache_epsilon(3.0);
        let near = simulate(&config, &mix);
        assert_eq!(exact.metrics.cache.near_hits, 0);
        assert!(
            near.metrics.cache.near_hits > 0,
            "a generous epsilon must convert some mix misses into near hits: {:?}",
            near.metrics.cache
        );
        assert!(near.metrics.cache.hit_rate > exact.metrics.cache.hit_rate);
    }
}
