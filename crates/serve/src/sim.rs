//! The deterministic, virtual-clock, event-driven serving simulator.
//!
//! The loop closes the paper's missing link from *traffic* to *mappings*:
//! arrivals (from [`crate::trace`]) feed the admission batcher
//! ([`crate::batcher`]); when the accelerator is free and a group is ready,
//! the mapping service ([`crate::dispatch`]) searches or cache-adapts a
//! mapping; the resulting schedule's per-job finish times advance the
//! virtual clock and feed the metrics pipeline ([`crate::metrics`]).
//!
//! Everything is virtual-time: searching costs `overhead_sec_per_sample`
//! per evaluated sample (so cache hits buy latency, not just samples), and
//! the group then occupies the accelerator for its schedule's makespan.
//! The simulation is a pure function of `(config, mix)` — no wall clock, no
//! ambient RNG — and every search evaluates candidates through the parallel
//! batch oracle, so results are bit-identical at every `MAGMA_THREADS`.
//!
//! # Calibration
//!
//! Arrival rates are specified as an *offered load* relative to the
//! platform's unoptimized service rate: a calibration group (the first
//! `group_target` jobs of the mix, round-robin across tenants) is scheduled
//! under a seeded random mapping, and its per-job makespan share becomes the
//! unit the mean inter-arrival gap is derived from. This keeps one knob
//! meaningful across platforms from S1 to S6. The per-job SLA bound is
//! `sla_x × (batch window + calibrated group service time + cold mapper
//! overhead)` — the latency a job would see in a healthy, uncongested
//! system, times a tolerance factor.

use crate::batcher::{AdmissionBatcher, BatchPolicy};
use crate::dispatch::{DispatchConfig, DispatchOutcome, MappingService};
use crate::metrics::{CacheReport, DispatchSummary, LatencyStats, ServeMetrics, TenantReport};
use crate::trace::{generate_trace, Scenario, TraceParams};
use magma_m3e::{M3e, Mapping, Objective};
use magma_model::{Group, JobId, TenantMix};
use magma_platform::settings::{self, ServeKnobs};
use magma_platform::Setting;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The full parameter set of one simulated scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The accelerator platform (Table III setting).
    pub setting: Setting,
    /// The traffic scenario.
    pub scenario: Scenario,
    /// Arrivals to simulate.
    pub requests: usize,
    /// Dispatch-group size target.
    pub group_target: usize,
    /// Admission deadline in batch-formation windows.
    pub max_wait_x: f64,
    /// Mini-batch size per job.
    pub mini_batch: usize,
    /// Offered load relative to the calibrated service rate.
    pub offered_load: f64,
    /// SLA tolerance factor (see module docs).
    pub sla_x: f64,
    /// Virtual mapper cost per evaluated sample, in seconds.
    pub overhead_sec_per_sample: f64,
    /// Search budgets and cache geometry.
    pub dispatch: DispatchConfig,
    /// Trace/search seed.
    pub seed: u64,
}

impl SimConfig {
    /// Builds a config from the `MAGMA_SERVE_*` knob family for a scenario
    /// on the default platform (S2, the paper's main evaluation setting).
    pub fn from_knobs(knobs: &ServeKnobs, scenario: Scenario) -> Self {
        SimConfig {
            setting: Setting::S2,
            scenario,
            requests: knobs.requests,
            group_target: knobs.group_target,
            max_wait_x: knobs.max_wait_x,
            mini_batch: magma_model::workload::DEFAULT_MINI_BATCH,
            offered_load: knobs.offered_load,
            sla_x: knobs.sla_x,
            overhead_sec_per_sample: knobs.overhead_us_per_sample * 1e-6,
            dispatch: DispatchConfig::new(
                knobs.cold_budget,
                knobs.refine_budget,
                knobs.quant_step,
                knobs.cache_capacity,
            ),
            seed: knobs.seed,
        }
    }
}

/// The output of one simulated scenario: the metrics block plus the
/// calibration constants that shaped it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// The full metrics block.
    pub metrics: ServeMetrics,
    /// The calibrated mean inter-arrival gap, in virtual seconds.
    pub mean_interarrival_sec: f64,
    /// The per-job SLA bound applied, in virtual seconds.
    pub sla_sec: f64,
}

/// One completed job's bookkeeping.
struct JobRecord {
    tenant: usize,
    arrival_sec: f64,
    dispatched_sec: f64,
    completed_sec: f64,
    flops: u64,
}

/// Runs one scenario to completion.
///
/// # Panics
///
/// Panics if the config is degenerate (zero requests/group target, a
/// non-positive offered load) — [`SimConfig::from_knobs`] never builds such
/// a config.
pub fn simulate(config: &SimConfig, mix: &TenantMix) -> SimResult {
    assert!(config.requests > 0 && config.group_target > 0);
    assert!(config.offered_load > 0.0 && config.offered_load.is_finite());
    let platform = settings::build(config.setting);

    // --- calibration: unoptimized service time of one representative group.
    let calib_group = calibration_group(mix, config.group_target, config.mini_batch);
    let calib_n = calib_group.len();
    let calib_problem = M3e::new(platform.clone(), calib_group, Objective::Throughput);
    let mut calib_rng = StdRng::seed_from_u64(config.seed);
    let calib_mapping = Mapping::random(&mut calib_rng, calib_n, platform.num_sub_accels());
    let calib_makespan = calib_problem.schedule(&calib_mapping).makespan_sec();
    let mean_interarrival_sec = calib_makespan / calib_n as f64 / config.offered_load;
    let batch_window_sec = config.group_target as f64 * mean_interarrival_sec;
    let cold_overhead_sec = config.dispatch.cold_budget as f64 * config.overhead_sec_per_sample;
    let sla_sec = config.sla_x * (batch_window_sec + calib_makespan + cold_overhead_sec);

    // --- trace + components.
    let trace = generate_trace(
        &TraceParams {
            scenario: config.scenario,
            requests: config.requests,
            mean_interarrival_sec,
            mini_batch: config.mini_batch,
            seed: config.seed,
        },
        mix,
    );
    let mut batcher = AdmissionBatcher::new(BatchPolicy::new(
        config.group_target,
        config.max_wait_x * batch_window_sec,
    ));
    let mut service = MappingService::new(config.dispatch);

    // --- event loop: arrivals and dispatches in virtual-time order.
    let mut records: Vec<JobRecord> = Vec::with_capacity(trace.len());
    let mut outcomes: Vec<DispatchOutcome> = Vec::new();
    let mut free_at = 0.0f64;
    let mut next = 0usize;
    loop {
        let next_arrival = trace.get(next).map(|a| a.time_sec);
        let dispatch_at = batcher.earliest_ready().map(|r| r.max(free_at));
        match (next_arrival, dispatch_at) {
            // The next arrival happens before (or exactly when) the next
            // group could be cut: admit it first so it can join the group.
            (Some(ta), Some(td)) if ta <= td => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (Some(_), None) => {
                batcher.push(trace[next].clone());
                next += 1;
            }
            (_, Some(td)) => {
                let group = batcher.take_group(td).expect("ready time reached");
                let jobs: Vec<_> = group
                    .arrivals
                    .iter()
                    .enumerate()
                    .map(|(k, a)| a.job.clone().with_id(JobId(k)))
                    .collect();
                let problem = M3e::new(platform.clone(), Group::new(jobs), Objective::Throughput);
                let seed =
                    config.seed.wrapping_add((outcomes.len() as u64).wrapping_mul(K_SEED_STRIDE));
                let outcome = service.map_group(&problem, seed);
                let overhead = outcome.samples as f64 * config.overhead_sec_per_sample;
                let mut end_by_job = vec![0.0f64; group.arrivals.len()];
                for seg in outcome.schedule.segments() {
                    end_by_job[seg.job.0] = seg.end_sec;
                }
                for (k, a) in group.arrivals.iter().enumerate() {
                    records.push(JobRecord {
                        tenant: a.tenant,
                        arrival_sec: a.time_sec,
                        dispatched_sec: td,
                        completed_sec: td + overhead + end_by_job[k],
                        flops: a.job.flops(),
                    });
                }
                free_at = td + overhead + outcome.schedule.makespan_sec();
                outcomes.push(outcome);
            }
            (None, None) => break,
        }
    }

    let metrics = assemble_metrics(&records, &outcomes, &service, mix, sla_sec);
    SimResult { metrics, mean_interarrival_sec, sla_sec }
}

/// Seed stride decorrelating per-dispatch search RNG streams (the 64-bit
/// golden ratio, as used by splitmix-style generators).
const K_SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// The calibration group: the first `target` jobs of the mix, round-robin
/// across tenants, re-identified 0..target.
fn calibration_group(mix: &TenantMix, target: usize, mini_batch: usize) -> Group {
    let mut streams: Vec<_> = mix.tenants().iter().map(|t| t.job_stream(mini_batch)).collect();
    let tenants = streams.len();
    let jobs = (0..target).map(|k| streams[k % tenants].next_job(JobId(k))).collect();
    Group::new(jobs)
}

/// Folds the run's records into the metrics block.
fn assemble_metrics(
    records: &[JobRecord],
    outcomes: &[DispatchOutcome],
    service: &MappingService,
    mix: &TenantMix,
    sla_sec: f64,
) -> ServeMetrics {
    let duration_sec = records.iter().map(|r| r.completed_sec).fold(0.0f64, f64::max);
    let total_flops: u64 = records.iter().map(|r| r.flops).sum();
    let (jobs_per_sec, throughput_gflops) = if duration_sec > 0.0 {
        (records.len() as f64 / duration_sec, total_flops as f64 / duration_sec / 1e9)
    } else {
        (0.0, 0.0)
    };

    let queueing = LatencyStats::from_samples(
        records.iter().map(|r| r.dispatched_sec - r.arrival_sec).collect(),
    );
    let service_lat = LatencyStats::from_samples(
        records.iter().map(|r| r.completed_sec - r.dispatched_sec).collect(),
    );
    let end_to_end = LatencyStats::from_samples(
        records.iter().map(|r| r.completed_sec - r.arrival_sec).collect(),
    );

    let tenants = mix
        .tenants()
        .iter()
        .enumerate()
        .map(|(i, tenant)| {
            let latencies: Vec<f64> = records
                .iter()
                .filter(|r| r.tenant == i)
                .map(|r| r.completed_sec - r.arrival_sec)
                .collect();
            let jobs = latencies.len();
            let sla_violations = latencies.iter().filter(|&&l| l > sla_sec).count();
            TenantReport {
                tenant: tenant.name().to_string(),
                task: tenant.task(),
                jobs,
                latency: LatencyStats::from_samples(latencies),
                sla_sec,
                sla_violations,
                sla_violation_rate: if jobs == 0 {
                    0.0
                } else {
                    sla_violations as f64 / jobs as f64
                },
            }
        })
        .collect();

    let stats = service.cache_stats();
    ServeMetrics {
        jobs: records.len(),
        duration_sec,
        jobs_per_sec,
        throughput_gflops,
        queueing,
        service: service_lat,
        end_to_end,
        tenants,
        cache: CacheReport {
            hits: stats.hits,
            misses: stats.misses,
            evictions: stats.evictions,
            hit_rate: stats.hit_rate(),
            entries: service.cache_len(),
        },
        dispatch: DispatchSummary::from_outcomes(outcomes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magma_model::TaskType;

    fn tiny_config(scenario: Scenario, seed: u64) -> SimConfig {
        SimConfig {
            setting: Setting::S2,
            scenario,
            requests: 48,
            group_target: 8,
            max_wait_x: 2.0,
            mini_batch: 4,
            offered_load: 0.7,
            sla_x: 3.0,
            overhead_sec_per_sample: 1e-6,
            dispatch: DispatchConfig::new(40, 4, 1.0, 16),
            seed,
        }
    }

    #[test]
    fn every_arrival_completes_exactly_once() {
        let result = simulate(&tiny_config(Scenario::Poisson, 0), &TenantMix::standard());
        let m = &result.metrics;
        assert_eq!(m.jobs, 48);
        assert_eq!(m.tenants.iter().map(|t| t.jobs).sum::<usize>(), 48);
        assert_eq!(m.dispatch.cold + m.dispatch.hits, m.dispatch.dispatches);
        assert!(m.duration_sec > 0.0);
        assert!(m.jobs_per_sec > 0.0);
        assert!(m.throughput_gflops > 0.0);
    }

    #[test]
    fn latency_decomposition_is_consistent() {
        let result = simulate(&tiny_config(Scenario::Bursty, 1), &TenantMix::standard());
        let m = &result.metrics;
        // Percentile ordering within each profile.
        for stats in [&m.queueing, &m.service, &m.end_to_end] {
            assert!(stats.p50_sec <= stats.p95_sec);
            assert!(stats.p95_sec <= stats.p99_sec);
            assert!(stats.p99_sec <= stats.max_sec);
            assert!(stats.mean_sec >= 0.0);
        }
        // End-to-end mean = queueing mean + service mean (same population).
        let sum = m.queueing.mean_sec + m.service.mean_sec;
        assert!((m.end_to_end.mean_sec - sum).abs() < 1e-9 * sum.max(1.0));
    }

    #[test]
    fn simulation_is_deterministic() {
        let mix = TenantMix::standard();
        let a = simulate(&tiny_config(Scenario::Drift, 2), &mix);
        let b = simulate(&tiny_config(Scenario::Drift, 2), &mix);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_tenant_traffic_hits_the_cache() {
        let mix =
            TenantMix::single("recom", TaskType::Recommendation, vec![magma_model::zoo::ncf()]);
        let mut config = tiny_config(Scenario::Poisson, 3);
        config.requests = 64;
        let result = simulate(&config, &mix);
        let d = &result.metrics.dispatch;
        assert!(d.hits > 0, "periodic single-tenant windows must recur: {d:?}");
        assert!(result.metrics.cache.hit_rate > 0.0);
        // The acceptance criterion at miniature scale: hits reach ≥ 90% of
        // cold throughput on ≤ 10% of the cold sample budget.
        assert!(
            d.hit_cold_throughput_ratio >= 0.9,
            "hit/cold ratio {} too low",
            d.hit_cold_throughput_ratio
        );
        assert!(d.hit_sample_fraction <= 0.101, "fraction {}", d.hit_sample_fraction);
    }

    #[test]
    fn higher_load_increases_queueing() {
        let mix = TenantMix::standard();
        let mut relaxed = tiny_config(Scenario::Poisson, 4);
        relaxed.offered_load = 0.2;
        let mut loaded = tiny_config(Scenario::Poisson, 4);
        loaded.offered_load = 3.0;
        let a = simulate(&relaxed, &mix);
        let b = simulate(&loaded, &mix);
        // Queueing latency is measured in units of the (load-dependent)
        // inter-arrival scale; normalize before comparing.
        let norm_a = a.metrics.queueing.mean_sec / a.mean_interarrival_sec;
        let norm_b = b.metrics.queueing.mean_sec / b.mean_interarrival_sec;
        assert!(norm_b > norm_a, "overload must queue: {norm_b} vs {norm_a}");
    }

    #[test]
    fn sla_bound_scales_with_tolerance() {
        let mix = TenantMix::standard();
        let mut tight = tiny_config(Scenario::Poisson, 5);
        tight.sla_x = 0.01;
        let mut loose = tiny_config(Scenario::Poisson, 5);
        loose.sla_x = 100.0;
        let t = simulate(&tight, &mix);
        let l = simulate(&loose, &mix);
        let violations =
            |r: &SimResult| r.metrics.tenants.iter().map(|t| t.sla_violations).sum::<usize>();
        assert!(violations(&t) > 0, "a near-zero SLA must violate");
        assert_eq!(violations(&l), 0, "a huge SLA must not violate");
        assert!(t.sla_sec < l.sla_sec);
    }

    #[test]
    fn from_knobs_mirrors_the_knob_family() {
        let knobs = ServeKnobs::smoke();
        let config = SimConfig::from_knobs(&knobs, Scenario::Bursty);
        assert_eq!(config.requests, knobs.requests);
        assert_eq!(config.group_target, knobs.group_target);
        assert_eq!(config.dispatch.cold_budget, knobs.cold_budget);
        assert_eq!(config.dispatch.refine_budget, knobs.refine_budget);
        assert_eq!(config.scenario, Scenario::Bursty);
    }
}
