//! Criterion micro-benchmarks of the analytical cost model and the job
//! analyzer — the components queried for every (job, core) pair before each
//! search.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magma_cost::{best_flexible_shape, CostModel, DataflowStyle, SubAccelConfig};
use magma_m3e::JobAnalyzer;
use magma_model::{LayerShape, TaskType, WorkloadSpec};
use magma_platform::{settings, Setting};

fn bench_single_estimate(c: &mut Criterion) {
    let model = CostModel::default();
    let hb = SubAccelConfig::new("hb", 128, 64, DataflowStyle::HighBandwidth, 580 * 1024);
    let conv = LayerShape::Conv2d { k: 256, c: 256, y: 14, x: 14, r: 3, s: 3, stride: 1 };
    let fc = LayerShape::FullyConnected { out_features: 4096, in_features: 4096 };

    c.bench_function("cost_model/conv_estimate", |b| {
        b.iter(|| model.estimate(black_box(&conv), 4, &hb))
    });
    c.bench_function("cost_model/fc_estimate", |b| {
        b.iter(|| model.estimate(black_box(&fc), 4, &hb))
    });
    c.bench_function("cost_model/flexible_shape_search", |b| {
        b.iter(|| best_flexible_shape(&model, black_box(&conv), 4, &hb))
    });
}

fn bench_job_analyzer(c: &mut Criterion) {
    let group = WorkloadSpec::single_group(TaskType::Mix, 100, 0);
    let platform = settings::build(Setting::S4);
    let analyzer = JobAnalyzer::new();
    c.bench_function("job_analyzer/mix_100_jobs_s4", |b| {
        b.iter(|| analyzer.analyze(black_box(&group), black_box(&platform)))
    });
}

criterion_group!(benches, bench_single_estimate, bench_job_analyzer);
criterion_main!(benches);
