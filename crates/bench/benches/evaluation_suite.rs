//! Criterion benchmarks of the paper's evaluation experiments at reduced
//! scale: one benchmark per figure/table family, timing a representative
//! slice of the experiment so regressions in any crate show up here.
//!
//! The full-fidelity reproductions (paper-scale group size and budget) are
//! the binaries in `src/bin/`; these benches keep the sampling budgets small
//! so `cargo bench` completes in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magma::experiments;
use magma::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const GS: usize = 20;
const BUDGET: usize = 200;

/// Fig. 7 — job analysis.
fn bench_fig07(c: &mut Criterion) {
    c.bench_function("fig07/job_analysis", |b| b.iter(|| experiments::fig7_job_analysis(4)));
}

/// Fig. 8 / Fig. 9 — a single optimizer run per mapper family on S1 and S2.
fn bench_fig08_fig09(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig08_fig09/mappers");
    group.sample_size(10);
    for (setting, label) in [(Setting::S1, "S1_homog"), (Setting::S2, "S2_hetero")] {
        let problem = MapperBuilder::new()
            .setting(setting)
            .task(TaskType::Mix)
            .group_size(GS)
            .seed(0)
            .build_problem();
        for algo in [Algorithm::HeraldLike, Algorithm::StdGa, Algorithm::Magma] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), label),
                &problem,
                |b, p| {
                    b.iter(|| {
                        algo.build().search(p, BUDGET, &mut StdRng::seed_from_u64(0)).best_fitness
                    })
                },
            );
        }
    }
    group.finish();
}

/// Fig. 10 / Fig. 11 — MAGMA vs random search convergence.
fn bench_fig10_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_fig11/convergence");
    group.sample_size(10);
    let problem = MapperBuilder::new()
        .setting(Setting::S2)
        .task(TaskType::Mix)
        .group_size(GS)
        .seed(0)
        .build_problem();
    group.bench_function("magma", |b| {
        b.iter(|| Magma::default().search(&problem, BUDGET, &mut StdRng::seed_from_u64(1)))
    });
    group.bench_function("random_reference", |b| {
        b.iter(|| RandomSearch::new().search(&problem, BUDGET, &mut StdRng::seed_from_u64(1)))
    });
    group.finish();
}

/// Fig. 12 — one bandwidth point of the sweep.
fn bench_fig12(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12/bw_sweep_point");
    group.sample_size(10);
    group.bench_function("s2_mix_bw1", |b| {
        b.iter(|| experiments::bw_sweep(Setting::S2, TaskType::Mix, &[1.0], GS, 60, 0))
    });
    group.finish();
}

/// Fig. 13 — the sub-accelerator combination study at one bandwidth.
fn bench_fig13(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13/subaccel_combos");
    group.sample_size(10);
    group.bench_function("bw64", |b| {
        b.iter(|| experiments::subaccel_combination_study(TaskType::Mix, &[64.0], GS, BUDGET, 0))
    });
    group.finish();
}

/// Fig. 14 — fixed vs flexible arrays.
fn bench_fig14(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14/flexible");
    group.sample_size(10);
    group.bench_function("s1_mix_bw16", |b| {
        b.iter(|| experiments::flexible_vs_fixed(Setting::S1, TaskType::Mix, 16.0, GS, BUDGET, 0))
    });
    group.finish();
}

/// Fig. 15 — schedule comparison.
fn bench_fig15(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig15/schedule");
    group.sample_size(10);
    group.bench_function("s5_mix_bw1", |b| {
        b.iter(|| experiments::schedule_comparison(Setting::S5, TaskType::Mix, 1.0, GS, BUDGET, 0))
    });
    group.finish();
}

/// Fig. 16 — operator ablation.
fn bench_fig16(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16/operator_ablation");
    group.sample_size(10);
    group.bench_function("s2_vision", |b| {
        b.iter(|| {
            experiments::operator_ablation(
                Setting::S2,
                TaskType::Vision,
                Some(16.0),
                GS,
                BUDGET,
                5,
                0,
            )
        })
    });
    group.finish();
}

/// Fig. 17 — group-size sweep (two sizes).
fn bench_fig17(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17/group_size");
    group.sample_size(10);
    group.bench_function("sizes_10_40", |b| {
        b.iter(|| {
            experiments::group_size_sweep(
                Setting::S2,
                TaskType::Mix,
                Some(16.0),
                &[10, 40],
                BUDGET,
                0,
            )
        })
    });
    group.finish();
}

/// Table V — warm-start study with one transfer instance.
fn bench_tab05(c: &mut Criterion) {
    let mut group = c.benchmark_group("tab05/warm_start");
    group.sample_size(10);
    group.bench_function("s2_lang_one_instance", |b| {
        b.iter(|| {
            experiments::warm_start_study(Setting::S2, TaskType::Language, Some(16.0), 16, 1, 0)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_fig07,
    bench_fig08_fig09,
    bench_fig10_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_fig15,
    bench_fig16,
    bench_fig17,
    bench_tab05
);
criterion_main!(benches);
