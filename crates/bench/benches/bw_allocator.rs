//! Criterion micro-benchmarks of the bandwidth allocator (Algorithm 1) and
//! the fitness evaluation — the inner loop of every optimizer, executed once
//! per sampled mapping (10 000 times per search in the paper's setup).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use magma_m3e::{M3e, Mapping, Objective};
use magma_model::{TaskType, WorkloadSpec};
use magma_platform::{settings, Setting};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fitness_evaluation(c: &mut Criterion) {
    for (setting, label) in [(Setting::S2, "s2_small"), (Setting::S4, "s4_large")] {
        let group = WorkloadSpec::single_group(TaskType::Mix, 100, 0);
        let platform = settings::build(setting);
        let num_accels = platform.num_sub_accels();
        let m3e = M3e::new(platform, group, Objective::Throughput);
        let mut rng = StdRng::seed_from_u64(0);
        let mapping = Mapping::random(&mut rng, 100, num_accels);

        c.bench_function(&format!("bw_allocator/fitness_mix100_{label}"), |b| {
            b.iter(|| m3e.evaluate(black_box(&mapping)))
        });
        c.bench_function(&format!("bw_allocator/schedule_mix100_{label}"), |b| {
            b.iter(|| m3e.schedule(black_box(&mapping)))
        });
    }
}

fn bench_decode(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mapping = Mapping::random(&mut rng, 100, 8);
    c.bench_function("encoding/decode_100_jobs", |b| b.iter(|| black_box(&mapping).decode()));
}

criterion_group!(benches, bench_fitness_evaluation, bench_decode);
criterion_main!(benches);
