//! The perf harness behind `BENCH_parallel_eval.json`.
//!
//! Measures the throughput of batch fitness evaluation
//! ([`magma::optim::parallel::evaluate_batch_with`]) — the hot path of every
//! optimizer in the workspace — at 1..N worker threads on figure-scale
//! problem instances, and emits a schema-stable JSON report so every future
//! PR has a recorded perf trajectory to compare against.
//!
//! The report schema ([`SCHEMA`]) is a versioned contract: fields are only
//! ever added (with a version bump), never renamed or removed, so trend
//! tooling can diff `BENCH_parallel_eval.json` across commits. The harness
//! also cross-checks, at every thread count, that the fitness vector is
//! bit-identical to the serial one — a measurement run doubles as a
//! determinism check.
//!
//! Run it via the `perf_suite` binary; CI runs the smoke mode on the
//! homogeneous instance and uploads the JSON as a workflow artifact.

use magma::optim::parallel::evaluate_batch_with;
use magma::prelude::*;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Version tag of the report layout. Bump when (and only when) fields are
/// added; existing fields are never renamed or removed.
///
/// v2 (the persistent-pool PR) added per-rung `scaling_efficiency`, the
/// report-level `pool_mode`, `warmup_batches` and `host` block — so a
/// committed `BENCH_parallel_eval.json` is self-describing: it names the
/// batch-execution machinery, the warm-up discipline and the measuring
/// host, not just the numbers.
pub const SCHEMA: &str = "magma-perf/v2";

/// One thread-count measurement on one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadPerf {
    /// Worker threads used for the batch evaluation.
    pub threads: usize,
    /// Total wall-clock time of the timed batches, in milliseconds.
    pub wall_ms: f64,
    /// Achieved fitness evaluations per second.
    pub evals_per_sec: f64,
    /// Speedup over the 1-thread measurement of the same workload
    /// (`evals_per_sec / serial evals_per_sec`; 1.0 for the serial row).
    pub speedup_vs_serial: f64,
    /// Scaling efficiency of the rung: `speedup_vs_serial / threads`
    /// (1.0 = perfect linear scaling; the SG2042 HPC-characterization idiom
    /// of publishing a scaling curve, not one number). Zero when a pre-v2
    /// file is read back through [`crate::compare::load_report`].
    pub scaling_efficiency: f64,
}

/// All measurements for one problem instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPerf {
    /// Short stable identifier (e.g. `fig08_homogeneous_s1`).
    pub name: String,
    /// Accelerator setting of the instance.
    pub setting: Setting,
    /// Task mix of the instance.
    pub task: TaskType,
    /// Jobs per group (genome length).
    pub group_size: usize,
    /// Mappings per evaluated batch.
    pub batch_size: usize,
    /// Timed batches per thread count.
    pub batches: usize,
    /// One entry per measured thread count, serial (1 thread) first.
    pub measurements: Vec<ThreadPerf>,
}

impl WorkloadPerf {
    /// The measurement at exactly `threads` workers, if it was taken.
    pub fn at_threads(&self, threads: usize) -> Option<&ThreadPerf> {
        self.measurements.iter().find(|m| m.threads == threads)
    }
}

/// Metadata of the measuring host, stamped into every report so a committed
/// baseline can never be mistaken for numbers from a different machine (the
/// v1 file said only `host_parallelism`, which a CI re-measure silently
/// re-recorded).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostMeta {
    /// Available parallelism at measurement time.
    pub parallelism: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl HostMeta {
    /// Captures the current host.
    pub fn capture() -> Self {
        HostMeta {
            parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

/// The full report written to `BENCH_parallel_eval.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfReport {
    /// Schema version tag ([`SCHEMA`]).
    pub schema: String,
    /// `smoke` or `full`.
    pub mode: String,
    /// Available parallelism of the measuring host. Kept from v1 (fields are
    /// never removed); duplicated inside [`PerfReport::host`].
    pub host_parallelism: usize,
    /// How parallel batches were executed
    /// ([`magma::optim::parallel::pool_mode`]) — `persistent-work-stealing`
    /// since the pool PR. Empty when a pre-v2 file is read back through
    /// [`crate::compare::load_report`].
    pub pool_mode: String,
    /// Untimed batches run per thread count before the timed ones (the first
    /// doubles as the bit-identical determinism cross-check). Zero when a
    /// pre-v2 file is read back (v1 always warmed exactly once).
    pub warmup_batches: usize,
    /// The measuring host ([`HostMeta`]); zero/empty when a pre-v2 file is
    /// read back.
    pub host: HostMeta,
    /// Thread counts measured, ascending.
    pub thread_counts: Vec<usize>,
    /// Workload seed used to generate groups and candidate batches.
    pub seed: u64,
    /// One entry per measured problem instance.
    pub workloads: Vec<WorkloadPerf>,
}

/// Parameters of one harness run.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfParams {
    /// `smoke` or `full` (recorded in the report; smoke also trims the
    /// workload list to the homogeneous instance).
    pub mode: String,
    /// Jobs per group.
    pub group_size: usize,
    /// Mappings per evaluated batch.
    pub batch_size: usize,
    /// Timed batches per thread count.
    pub batches: usize,
    /// Thread counts to measure, ascending, starting at 1.
    pub thread_counts: Vec<usize>,
    /// Untimed warm-up batches per thread count (≥ 1; the first is also the
    /// determinism cross-check).
    pub warmup_batches: usize,
    /// Workload / candidate seed.
    pub seed: u64,
}

impl PerfParams {
    /// CI-friendly smoke parameters: tiny batch, homogeneous instance only.
    pub fn smoke(max_threads: usize, group_size: usize, seed: u64) -> Self {
        PerfParams {
            mode: "smoke".into(),
            group_size,
            batch_size: 64,
            batches: 2,
            thread_counts: thread_ladder(max_threads),
            warmup_batches: 1,
            seed,
        }
    }

    /// Full parameters: figure-scale batches on every workload.
    pub fn full(max_threads: usize, group_size: usize, seed: u64) -> Self {
        PerfParams {
            mode: "full".into(),
            group_size,
            batch_size: 256,
            batches: 4,
            thread_counts: thread_ladder(max_threads),
            warmup_batches: 2,
            seed,
        }
    }
}

/// The thread counts a run measures: 1, the powers of two up to
/// `max(max_threads, 4)`, `max_threads` itself, and one **oversubscription
/// rung** at twice the top — so the 1-thread baseline, the 2-thread gate
/// point and the 4-thread acceptance point are always present, big hosts
/// get their full width measured, and the curve shows what happens past the
/// hardware (a persistent pool should degrade gracefully there, not fall
/// off a cliff). Override with an explicit list via the `perf_suite`
/// binary's `MAGMA_PERF_LADDER` knob.
pub fn thread_ladder(max_threads: usize) -> Vec<usize> {
    let top = max_threads.max(4);
    let mut ladder = vec![1usize];
    let mut t = 2;
    while t <= top {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max_threads.max(1));
    ladder.push(top * 2);
    ladder.sort_unstable();
    ladder.dedup();
    ladder
}

/// The figure-scale instances the harness measures. Smoke mode keeps only
/// the first (the Fig. 8 homogeneous instance the acceptance criterion names);
/// full mode adds the heterogeneous instances of Fig. 9.
fn workload_specs(smoke: bool) -> Vec<(&'static str, Setting, TaskType, f64)> {
    let mut specs = vec![("fig08_homogeneous_s1", Setting::S1, TaskType::Mix, 16.0)];
    if !smoke {
        specs.push(("fig09_heterogeneous_s2", Setting::S2, TaskType::Mix, 16.0));
        specs.push(("fig09_heterogeneous_s4", Setting::S4, TaskType::Mix, 256.0));
    }
    specs
}

/// Measures one problem instance at every thread count in `params`.
///
/// Every parallel measurement is cross-checked bit-for-bit against the
/// serial fitness vector, so a perf run is also a determinism check.
///
/// # Panics
///
/// Panics if any thread count produces a fitness vector different from the
/// serial one (that would be a parallelism bug, never acceptable), or if
/// `batch_size`/`batches`/`thread_counts` is empty/zero.
pub fn measure_workload(
    name: &str,
    setting: Setting,
    task: TaskType,
    bw_gbps: f64,
    params: &PerfParams,
) -> WorkloadPerf {
    assert!(params.batch_size > 0 && params.batches > 0 && !params.thread_counts.is_empty());
    let group = WorkloadSpec::single_group(task, params.group_size, params.seed);
    let platform = settings::build_with_bw(setting, bw_gbps);
    let num_accels = platform.num_sub_accels();
    let problem = M3e::new(platform, group, Objective::Throughput);

    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);
    let batch: Vec<Mapping> = (0..params.batch_size)
        .map(|_| Mapping::random(&mut rng, params.group_size, num_accels))
        .collect();

    // Serial reference: warms the caches (including the launch-cost memo,
    // so every rung measures the same warm-evaluator regime) and anchors
    // the determinism check.
    let reference = evaluate_batch_with(&problem, &batch, 1);

    let mut measurements = Vec::with_capacity(params.thread_counts.len());
    let mut serial_rate = None;
    for &threads in &params.thread_counts {
        // Untimed warm-ups; the first doubles as the determinism
        // cross-check, the rest settle the (persistent) pool and the
        // branch predictors before the timer starts.
        let check = evaluate_batch_with(&problem, &batch, threads);
        assert!(
            check.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name}: fitness vector at {threads} threads differs from serial"
        );
        for _ in 1..params.warmup_batches.max(1) {
            std::hint::black_box(evaluate_batch_with(&problem, &batch, threads));
        }

        let start = Instant::now();
        for _ in 0..params.batches {
            std::hint::black_box(evaluate_batch_with(&problem, &batch, threads));
        }
        let wall = start.elapsed();
        let evals = (params.batches * params.batch_size) as f64;
        let evals_per_sec = evals / wall.as_secs_f64().max(1e-12);
        let serial = *serial_rate.get_or_insert(evals_per_sec);
        let speedup_vs_serial = evals_per_sec / serial;
        measurements.push(ThreadPerf {
            threads,
            wall_ms: wall.as_secs_f64() * 1e3,
            evals_per_sec,
            speedup_vs_serial,
            scaling_efficiency: speedup_vs_serial / threads as f64,
        });
    }

    WorkloadPerf {
        name: name.to_string(),
        setting,
        task,
        group_size: params.group_size,
        batch_size: params.batch_size,
        batches: params.batches,
        measurements,
    }
}

/// Runs the whole suite and assembles the report.
pub fn run_suite(params: &PerfParams) -> PerfReport {
    let smoke = params.mode == "smoke";
    let workloads = workload_specs(smoke)
        .into_iter()
        .map(|(name, setting, task, bw)| measure_workload(name, setting, task, bw, params))
        .collect();
    let host = HostMeta::capture();
    PerfReport {
        schema: SCHEMA.to_string(),
        mode: params.mode.clone(),
        host_parallelism: host.parallelism,
        pool_mode: magma::optim::parallel::pool_mode().to_string(),
        warmup_batches: params.warmup_batches.max(1),
        host,
        thread_counts: params.thread_counts.clone(),
        seed: params.seed,
        workloads,
    }
}

/// Prints the report as a per-workload table (threads, evals/sec, speedup).
pub fn print_report(report: &PerfReport) {
    for w in &report.workloads {
        println!(
            "\n[{}] {} / {} — {} jobs, batches of {} × {}",
            w.name, w.setting, w.task, w.group_size, w.batch_size, w.batches
        );
        println!(
            "{:>8} {:>12} {:>14} {:>10} {:>12}",
            "threads", "wall (ms)", "evals/sec", "speedup", "efficiency"
        );
        for m in &w.measurements {
            println!(
                "{:>8} {:>12.2} {:>14.0} {:>9.2}x {:>11.0}%",
                m.threads,
                m.wall_ms,
                m.evals_per_sec,
                m.speedup_vs_serial,
                m.scaling_efficiency * 100.0
            );
        }
    }
}

/// Writes the report to `BENCH_parallel_eval.json` in `MAGMA_BENCH_DIR`
/// (default: the current directory, i.e. the repo root under `cargo run`),
/// returning the path on success and the underlying error otherwise (the
/// `perf_suite` binary exits non-zero on failure so CI never silently
/// uploads a stale trajectory).
pub fn write_bench_json(report: &PerfReport) -> std::io::Result<PathBuf> {
    let dir = std::env::var("MAGMA_BENCH_DIR").map(PathBuf::from).unwrap_or_else(|_| ".".into());
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("BENCH_parallel_eval.json");
    let json = serde_json::to_string_pretty(report)
        .map_err(|e| std::io::Error::other(format!("serializing the perf report: {e}")))?;
    std::fs::write(&path, json + "\n")?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> PerfParams {
        PerfParams {
            mode: "smoke".into(),
            group_size: 4,
            batch_size: 8,
            batches: 1,
            thread_counts: vec![1, 2],
            warmup_batches: 1,
            seed: 0,
        }
    }

    #[test]
    fn thread_ladder_always_has_serial_four_and_oversubscription() {
        for max in [1, 2, 3, 4, 6, 8, 11, 64] {
            let ladder = thread_ladder(max);
            assert_eq!(ladder[0], 1, "max {max}");
            assert!(ladder.contains(&2), "max {max}: {ladder:?}");
            assert!(ladder.contains(&4), "max {max}: {ladder:?}");
            assert!(ladder.contains(&max.max(1)), "max {max}: {ladder:?}");
            // The oversubscription rung: twice the top of the ladder proper.
            assert!(ladder.contains(&(max.max(4) * 2)), "max {max}: {ladder:?}");
            assert!(ladder.windows(2).all(|w| w[0] < w[1]), "max {max}: {ladder:?}");
        }
    }

    #[test]
    fn measurements_are_positive_and_anchored_at_serial() {
        let w = measure_workload("t", Setting::S1, TaskType::Mix, 16.0, &tiny_params());
        assert_eq!(w.measurements.len(), 2);
        assert_eq!(w.measurements[0].threads, 1);
        assert_eq!(w.measurements[0].speedup_vs_serial, 1.0);
        assert_eq!(w.measurements[0].scaling_efficiency, 1.0);
        assert!(w.measurements.iter().all(|m| m.evals_per_sec > 0.0 && m.wall_ms > 0.0));
        for m in &w.measurements {
            assert_eq!(m.scaling_efficiency, m.speedup_vs_serial / m.threads as f64);
        }
        assert!(w.at_threads(2).is_some() && w.at_threads(3).is_none());
    }

    #[test]
    fn smoke_suite_covers_the_homogeneous_instance_only() {
        let report = run_suite(&tiny_params());
        assert_eq!(report.schema, SCHEMA);
        assert_eq!(report.workloads.len(), 1);
        assert_eq!(report.workloads[0].name, "fig08_homogeneous_s1");
        assert_eq!(report.workloads[0].setting, Setting::S1);
        assert!(report.host_parallelism >= 1);
        assert_eq!(report.host.parallelism, report.host_parallelism);
        assert_eq!(report.pool_mode, magma::optim::parallel::pool_mode());
        assert_eq!(report.warmup_batches, 1);
        assert!(!report.host.os.is_empty() && !report.host.arch.is_empty());
    }

    #[test]
    fn report_round_trips_through_serde_with_stable_keys() {
        let report = run_suite(&tiny_params());
        let json = serde_json::to_string_pretty(&report).unwrap();
        // The schema contract: these keys must never be renamed (only added
        // to, with a SCHEMA bump).
        for key in [
            "\"schema\"",
            "\"mode\"",
            "\"host_parallelism\"",
            "\"pool_mode\"",
            "\"warmup_batches\"",
            "\"host\"",
            "\"parallelism\"",
            "\"os\"",
            "\"arch\"",
            "\"scaling_efficiency\"",
            "\"thread_counts\"",
            "\"seed\"",
            "\"workloads\"",
            "\"name\"",
            "\"setting\"",
            "\"task\"",
            "\"group_size\"",
            "\"batch_size\"",
            "\"batches\"",
            "\"measurements\"",
            "\"threads\"",
            "\"wall_ms\"",
            "\"evals_per_sec\"",
            "\"speedup_vs_serial\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        let back: PerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
