//! `serve_sim` — the online multi-tenant serving simulator behind
//! `BENCH_serve.json` (not a paper artefact; the serving layer on top of the
//! paper's per-group mapper).
//!
//! Runs the standard scenario ladder of `magma_serve::report` — stationary
//! Poisson multi-tenant traffic, a repeated-tenant trace, and (full mode)
//! bursty and tenant-drift traffic — through the virtual-clock simulator in
//! **both serving modes** (overlap: search slices interleaved with
//! accelerator execution through the steppable session API; legacy: the
//! serial baseline), prints a latency/throughput/cache profile per scenario
//! plus the overlap-vs-legacy comparison, and writes the schema-stable
//! `BENCH_serve.json` (schema `magma-serve/v3`, self-checked via
//! `ServeReport::validate`).
//!
//! With `--scenario <file>` the builtin ladder is replaced by a scenario
//! from the registry (`magma-registry`): the file's platform / tenant-mix /
//! traffic definitions are validated, resolved and run in both serving
//! modes, and the report embeds the resolved scenario descriptor.
//!
//! The builtin run doubles as an acceptance check and panics on regression
//! (so CI can never silently lose either win): on the repeated-tenant
//! scenario the cache-hit dispatches must reach ≥ 90% of the cold-search
//! throughput while spending ≤ 10% of the cold sample budget, and overlap
//! mode must report a strictly lower mean end-to-end latency than legacy
//! mode. Registry scenarios skip the ladder-specific acceptance gate.
//!
//! # Knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `--smoke` / `MAGMA_SERVE_MODE=smoke` | CI scale: 96 requests, groups of 8, 60/6 budgets, 2 scenarios |
//! | `MAGMA_SERVE_REQUESTS` | arrivals per scenario |
//! | `MAGMA_SERVE_GROUP` | dispatch-group size target |
//! | `MAGMA_SERVE_MAX_WAIT_X` | admission deadline in batch windows |
//! | `MAGMA_SERVE_CACHE_CAP` | mapping-cache capacity (LRU) |
//! | `MAGMA_SERVE_COLD_BUDGET` | cache-miss search budget |
//! | `MAGMA_SERVE_REFINE_BUDGET` | cache-hit refinement budget |
//! | `MAGMA_SERVE_QUANT` | cache-key quantization step (nats) |
//! | `MAGMA_SERVE_CACHE_EPSILON` | nearest-key cache probe threshold (0 = exact-key only) |
//! | `MAGMA_SERVE_LOAD` | offered load vs calibrated service rate |
//! | `MAGMA_SERVE_SLA_X` | SLA tolerance factor |
//! | `MAGMA_SERVE_OVERHEAD_US` | virtual mapper cost per sample (µs) |
//! | `MAGMA_SERVE_OVERLAP` | `0` makes legacy the primary ladder (both are always simulated) |
//! | `MAGMA_SERVE_SLICE` | samples per search slice in overlap mode (result-invariant) |
//! | `MAGMA_SERVE_SEED` | trace/search seed |
//! | `--scenario <file>` | run a registry scenario file instead of the builtin ladder |
//! | `MAGMA_SCENARIO_DIR` | registry root the scenario's references resolve against (default `scenarios/`) |
//! | `MAGMA_THREADS` | evaluation worker threads — wall-clock only, the report never changes |
//! | `MAGMA_BENCH_DIR` | output directory of `BENCH_serve.json` |

use magma_serve::metrics::LatencyStats;
use magma_serve::report::{
    run_custom_scenario, run_standard_scenarios, write_bench_json, ScenarioResult,
};
use magma_serve::ServeReport;

fn main() {
    let cli = magma_bench::serving_cli("MAGMA_SERVE_MODE");
    let (smoke, scenario) = (cli.smoke, cli.scenario);
    let knobs = magma::platform::settings::ServeKnobs::from_env(smoke);
    println!("==============================================================");
    println!("serve_sim — online multi-tenant serving (magma-serve)");
    println!(
        "mode {}, {} requests/scenario, groups of {}, budgets {}/{} (cold/refine), \
         cache {} entries (epsilon {}), slice {}, seed {}",
        if smoke { "smoke" } else { "full" },
        knobs.requests,
        knobs.group_target,
        knobs.cold_budget,
        knobs.refine_budget,
        knobs.cache_capacity,
        knobs.cache_epsilon,
        knobs.search_slice,
        knobs.seed
    );
    println!(
        "primary serving mode: {} (MAGMA_SERVE_OVERLAP={})",
        if knobs.overlap { "overlap" } else { "legacy" },
        knobs.overlap as u8
    );
    println!("==============================================================");

    let report = match &scenario {
        Some(path) => {
            let resolved = magma_bench::resolve_scenario_or_exit(path);
            println!(
                "registry scenario {:?}: platform {} ({} cores), {} tenants, {} arrivals, \
                 descriptor {}",
                resolved.name,
                resolved.platform.name(),
                resolved.platform_def.core_count(),
                resolved.mix.len(),
                resolved.requests.unwrap_or(knobs.requests),
                resolved.descriptor.content_hash
            );
            run_custom_scenario(&knobs, smoke, &resolved.custom())
        }
        None => run_standard_scenarios(&knobs, smoke),
    };
    if let Err(violation) = report.validate() {
        eprintln!("magma-serve/v3 schema self-check failed: {violation}");
        std::process::exit(1);
    }
    print_report(&report);
    if scenario.is_none() {
        check_acceptance(&report);
    }

    match write_bench_json(&report) {
        Ok(path) => println!("\n(serving profile written to {})", path.display()),
        Err(e) => {
            eprintln!("could not write BENCH_serve.json: {e}");
            std::process::exit(1);
        }
    }
}

fn latency_row(label: &str, s: &LatencyStats) {
    println!(
        "  {label:<12} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
        s.mean_sec * 1e6,
        s.p50_sec * 1e6,
        s.p95_sec * 1e6,
        s.p99_sec * 1e6,
        s.max_sec * 1e6
    );
}

fn print_scenario(s: &ScenarioResult) {
    let m = &s.metrics;
    println!(
        "\n[{}] {} ({}) — {} jobs in {:.1} ms of virtual time ({:.0} jobs/s, {:.1} GFLOP/s)",
        s.name,
        s.scenario,
        if s.overlap { "overlap" } else { "legacy" },
        m.jobs,
        m.duration_sec * 1e3,
        m.jobs_per_sec,
        m.throughput_gflops
    );
    println!(
        "  {:<12} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "latency (µs)", "mean", "p50", "p95", "p99", "max"
    );
    latency_row("queueing", &m.queueing);
    latency_row("service", &m.service);
    latency_row("end-to-end", &m.end_to_end);
    println!(
        "  cache: {} hits ({} near) / {} misses (rate {:.2}), {} evictions, {} live entries",
        m.cache.hits,
        m.cache.near_hits,
        m.cache.misses,
        m.cache.hit_rate,
        m.cache.evictions,
        m.cache.entries
    );
    println!(
        "  dispatch: {} cold ({} samples, {:.1} GFLOP/s mean) vs {} hits \
         ({} samples, {:.1} GFLOP/s mean) → ratio {:.3} at {:.1}% of cold budget",
        m.dispatch.cold,
        m.dispatch.cold_samples,
        m.dispatch.cold_gflops_mean,
        m.dispatch.hits,
        m.dispatch.hit_samples,
        m.dispatch.hit_gflops_mean,
        m.dispatch.hit_cold_throughput_ratio,
        m.dispatch.hit_sample_fraction * 100.0
    );
    for t in &m.tenants {
        println!(
            "  tenant {:<16} {} jobs, p99 {:.1} µs, SLA({:.1} µs ×{:.2}) violations {} ({:.1}%)",
            t.tenant,
            t.jobs,
            t.latency.p99_sec * 1e6,
            t.sla_sec * 1e6,
            t.sla_multiplier,
            t.sla_violations,
            t.sla_violation_rate * 100.0
        );
    }
}

fn print_report(report: &ServeReport) {
    for s in &report.scenarios {
        print_scenario(s);
    }
    println!("\n--- baseline ({}) ---", if report.primary_overlap { "legacy" } else { "overlap" });
    for s in &report.baseline_scenarios {
        print_scenario(s);
    }
    println!("\noverlap vs legacy (end-to-end, µs of virtual time):");
    println!(
        "  {:<22} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "scenario", "ovl mean", "leg mean", "ovl p95", "leg p95", "speedup"
    );
    for c in &report.comparison {
        println!(
            "  {:<22} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>8.2}x",
            c.name,
            c.overlap_mean_e2e_us,
            c.legacy_mean_e2e_us,
            c.overlap_p95_e2e_us,
            c.legacy_p95_e2e_us,
            c.mean_speedup
        );
    }
}

/// The acceptance criteria on the repeated-tenant scenario. Panics on
/// regression so CI fails loudly.
fn check_acceptance(report: &ServeReport) {
    let repeat = |ladder: &[ScenarioResult]| -> ScenarioResult {
        ladder
            .iter()
            .find(|s| s.name == "repeated_tenant")
            .expect("the standard ladder always contains the repeated-tenant scenario")
            .clone()
    };
    // Cache economics hold in both serving modes.
    for ladder in [report.overlap_scenarios(), report.legacy_scenarios()] {
        let d = repeat(ladder).metrics.dispatch;
        assert!(d.hits > 0, "repeated-tenant traffic produced no cache hits");
        assert!(
            d.hit_cold_throughput_ratio >= 0.9,
            "cache-hit dispatch reached only {:.1}% of cold-search throughput (acceptance: ≥ 90%)",
            d.hit_cold_throughput_ratio * 100.0
        );
        assert!(
            d.hit_sample_fraction <= 0.101,
            "cache hits spent {:.1}% of the cold sample budget (acceptance: ≤ 10%)",
            d.hit_sample_fraction * 100.0
        );
    }
    // Overlap must strictly beat legacy end-to-end on the repeated trace.
    let overlap = repeat(report.overlap_scenarios());
    let legacy = repeat(report.legacy_scenarios());
    assert!(
        overlap.metrics.end_to_end.mean_sec < legacy.metrics.end_to_end.mean_sec,
        "overlap mean e2e {:.1} µs is not below legacy {:.1} µs",
        overlap.metrics.end_to_end.mean_sec * 1e6,
        legacy.metrics.end_to_end.mean_sec * 1e6
    );
    let d = overlap.metrics.dispatch;
    println!(
        "\nacceptance: hit/cold throughput ratio {:.3} (≥ 0.9) at {:.1}% of the cold budget \
         (≤ 10%); overlap e2e mean {:.1} µs < legacy {:.1} µs",
        d.hit_cold_throughput_ratio,
        d.hit_sample_fraction * 100.0,
        overlap.metrics.end_to_end.mean_sec * 1e6,
        legacy.metrics.end_to_end.mean_sec * 1e6
    );
}
