//! `fleet_sim` — the fleet-scale serving benchmark behind
//! `BENCH_fleet.json` (not a paper artefact; the multi-shard layer on top
//! of the paper's per-group mapper).
//!
//! Runs the standard fleet scenario set of `magma_serve::fleet` — the
//! `fleet_mix` scaling headline (a large synthetic tenant mix at an offered
//! load that drowns one shard) and the `deadline_pressure` preemption
//! stress (higher load, SLAs cut to a third, the mapper oversubscribed) —
//! over a shard-count ladder, prints a throughput/latency/preemption
//! profile per rung and writes the schema-stable `BENCH_fleet.json`
//! (schema `magma-fleet/v3`, self-checked via `FleetReport::validate`).
//!
//! With `--scenario <file>` the standard set is replaced by a registry
//! scenario (`magma-registry`): every shard runs the file's platform, the
//! trace follows its tenant mix and traffic block, and the report embeds
//! the resolved scenario descriptor.
//!
//! The builtin run doubles as an acceptance check and panics on regression:
//! the widest `fleet_mix` rung must beat the 1-shard rung's throughput, and
//! the `deadline_pressure` scenario must actually preempt (a nonzero
//! deadline-preemption counter at its widest rung). Registry scenarios skip
//! that gate.
//!
//! # Knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `--smoke` / `MAGMA_FLEET_MODE=smoke` | CI scale: 400 requests, 32 tenants, ladder {1, N} |
//! | `MAGMA_FLEET_SHARDS` | widest rung of the shard ladder |
//! | `MAGMA_FLEET_SETTINGS` | comma-separated Table III settings cycled across shards |
//! | `MAGMA_FLEET_REQUESTS` | arrivals per rung |
//! | `MAGMA_FLEET_TENANTS` | synthetic tenant count |
//! | `MAGMA_FLEET_LOAD` | offered load vs one calibrated reference shard |
//! | `MAGMA_FLEET_MAX_LIVE` | live search sessions per shard mapper |
//! | `MAGMA_FLEET_POLICY` | `uniform` or `deadline` scheduling |
//! | `MAGMA_FLEET_MIN_SLICE` | deadline-policy slice floor (samples) |
//! | `MAGMA_FLEET_PREEMPT` | value-preemption margin (0 disables) |
//! | `MAGMA_FLEET_SHARED_CACHE` | shared cache tier entries (0 disables the tier) |
//! | `MAGMA_FLEET_TENANT_QUOTA` | per-tenant entry quota over the shared tier (0 = unlimited) |
//! | `MAGMA_SERVE_CACHE_PATH` | per-shard cache persistence at `<path>.shard<i>` |
//! | `MAGMA_SERVE_*` | the underlying serving knobs (budgets, cache, SLA, seed) |
//! | `--scenario <file>` | run a registry scenario file instead of the standard set |
//! | `MAGMA_SCENARIO_DIR` | registry root the scenario's references resolve against (default `scenarios/`) |
//! | `MAGMA_THREADS` | evaluation worker threads — wall-clock only, the report never changes |
//! | `MAGMA_BENCH_DIR` | output directory of `BENCH_fleet.json` |

use magma_serve::fleet::{
    run_fleet_custom, run_fleet_ladder, write_fleet_json, FleetRung, FleetScenarioResult,
};
use magma_serve::FleetReport;

fn main() {
    let cli = magma_bench::serving_cli("MAGMA_FLEET_MODE");
    let (smoke, scenario) = (cli.smoke, cli.scenario);
    let knobs = magma::platform::settings::FleetKnobs::from_env(smoke);
    println!("==============================================================");
    println!("fleet_sim — fleet-scale multi-shard serving (magma-serve)");
    println!(
        "mode {}, {} shards ({:?}), {} requests/rung, {} tenants, load {}x, \
         policy {}, max_live {}, min_slice {}, preempt margin {}, seed {}",
        if smoke { "smoke" } else { "full" },
        knobs.shards,
        knobs.shard_settings,
        knobs.requests,
        knobs.tenants,
        knobs.offered_load,
        knobs.policy,
        knobs.max_live,
        knobs.min_slice,
        knobs.preempt_margin,
        knobs.serve.seed
    );
    println!("==============================================================");

    let report = match &scenario {
        Some(path) => {
            let resolved = magma_bench::resolve_scenario_or_exit(path);
            println!(
                "registry scenario {:?}: platform {} ({} cores) on every shard, {} tenants, \
                 descriptor {}",
                resolved.name,
                resolved.platform.name(),
                resolved.platform_def.core_count(),
                resolved.mix.len(),
                resolved.descriptor.content_hash
            );
            run_fleet_custom(&knobs, smoke, &resolved.custom())
        }
        None => run_fleet_ladder(&knobs, smoke),
    };
    if let Err(violation) = report.validate() {
        eprintln!("magma-fleet/v3 schema self-check failed: {violation}");
        std::process::exit(1);
    }
    print_report(&report);
    if scenario.is_none() {
        check_acceptance(&report);
    }

    match write_fleet_json(&report) {
        Ok(path) => println!("\n(fleet profile written to {})", path.display()),
        Err(e) => {
            eprintln!("could not write BENCH_fleet.json: {e}");
            std::process::exit(1);
        }
    }
}

fn print_rung(r: &FleetRung) {
    println!(
        "  {:>2} shard{} {:>9.0} jobs/s ({:>5.2}x) {:>8.1} GFLOP/s  \
         e2e p50/p95/p99 {:>9.1}/{:>9.1}/{:>9.1} µs",
        r.shards,
        if r.shards == 1 { " " } else { "s" },
        r.jobs_per_sec,
        r.speedup_vs_one_shard,
        r.throughput_gflops,
        r.p50_e2e_us,
        r.p95_e2e_us,
        r.p99_e2e_us
    );
    println!(
        "     sessions: {} admitted = {} completed + {} preempted \
         ({} deadline / {} value), {} late, {} floor-clamped slices",
        r.admitted,
        r.completed,
        r.preemptions,
        r.preempted_deadline,
        r.preempted_value,
        r.late_admissions,
        r.min_slice_clamps
    );
    println!(
        "     routing: {}/{} affinity hits, {} shared-balanced, per-shard jobs {:?}; \
         cache rate {:.2}; SLA violations {} ({:.1}%)",
        r.affinity_hits,
        r.placed,
        r.shared_balanced,
        r.per_shard_jobs,
        r.cache.hit_rate,
        r.sla_violations,
        r.sla_violation_rate * 100.0
    );
    if r.shared.hits + r.shared.misses > 0 {
        println!(
            "     shared tier: {} hits / {} lookups (rate {:.2}), {} entries, {} evictions",
            r.shared.hits,
            r.shared.hits + r.shared.misses,
            r.shared.hit_rate,
            r.shared.entries,
            r.shared.evictions
        );
    }
}

fn print_scenario(s: &FleetScenarioResult) {
    println!(
        "\n[{}] {} traffic, {} policy, load {:.2}x, SLA x{:.2}:",
        s.name, s.scenario, s.policy, s.offered_load, s.sla_x
    );
    for rung in &s.rungs {
        print_rung(rung);
    }
}

fn print_report(report: &FleetReport) {
    for s in &report.scenarios {
        print_scenario(s);
    }
}

/// The fleet acceptance criteria. Panics on regression so CI fails loudly.
fn check_acceptance(report: &FleetReport) {
    let scenario = |name: &str| -> &FleetScenarioResult {
        report
            .scenarios
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("the standard set always contains {name}"))
    };
    let mix = scenario("fleet_mix");
    let one = mix.rungs.first().expect("the ladder starts at 1 shard");
    let wide = mix.rungs.last().expect("the ladder is non-empty");
    assert!(
        wide.shards > one.shards,
        "the ladder must span more than one shard count to show scaling"
    );
    assert!(
        wide.jobs_per_sec > one.jobs_per_sec,
        "{} shards ({:.0} jobs/s) failed to beat 1 shard ({:.0} jobs/s) on the fleet mix",
        wide.shards,
        wide.jobs_per_sec,
        one.jobs_per_sec
    );
    let pressure = scenario("deadline_pressure");
    let stressed = pressure.rungs.last().expect("the ladder is non-empty");
    assert!(
        stressed.preemptions > 0,
        "the deadline-pressure scenario completed without a single preemption at {} shards",
        stressed.shards
    );
    println!(
        "\nacceptance: fleet_mix {}-shard speedup {:.2}x over 1 shard; \
         deadline_pressure preempted {} sessions ({} deadline / {} value) at {} shards",
        wide.shards,
        wide.speedup_vs_one_shard,
        stressed.preemptions,
        stressed.preempted_deadline,
        stressed.preempted_value,
        stressed.shards
    );
}
