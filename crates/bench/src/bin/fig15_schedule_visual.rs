//! Fig. 15 — visualization of the schedules found by Herald-like and MAGMA
//! on (Mix, S5, BW=1 GB/s): per-core job allocation and finish times.
//!
//! Regenerates the data behind Fig. 15. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::schedule_comparison;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 15 — schedule visualization (Mix, S5, BW=1 GB/s)", &scale);

    let cmp = schedule_comparison(
        Setting::S5,
        TaskType::Mix,
        1.0,
        scale.group_size,
        scale.budget,
        scale.seed,
    );

    println!(
        "\n--- Herald-like schedule (finish {:.3} ms, {:.1} GFLOP/s) ---",
        cmp.herald_finish_sec * 1e3,
        cmp.herald_gflops
    );
    print!("{}", cmp.herald_gantt);

    println!(
        "\n--- MAGMA schedule (finish {:.3} ms, {:.1} GFLOP/s) ---",
        cmp.magma_finish_sec * 1e3,
        cmp.magma_gflops
    );
    print!("{}", cmp.magma_gantt);

    println!(
        "\nMAGMA finishes the group {:.2}x faster than the Herald-like mapping.",
        cmp.herald_finish_sec / cmp.magma_finish_sec
    );
    dump_json("fig15_schedule_visual", &cmp);
}
