//! Perf harness — measures batch fitness evaluation (the hot path of every
//! optimizer) at 1..N worker threads on figure-scale instances and writes
//! the schema-stable `BENCH_parallel_eval.json` perf trajectory.
//!
//! Not a paper artefact: this binary tracks the *reproduction's* speed so
//! regressions (and wins) are visible across PRs. Every parallel measurement
//! is cross-checked bit-for-bit against the serial fitness vector, so a perf
//! run doubles as a determinism check. On a ≥ 4-core host the 4-thread row
//! of the Fig. 8 homogeneous instance is expected to show ≥ 2× the serial
//! evaluations/sec.
//!
//! Knobs: `MAGMA_PERF_MODE` (`full` (default) = figure-scale batches on the
//! Fig. 8/9 instances; `smoke` = tiny batches, homogeneous instance only —
//! what CI runs), `MAGMA_THREADS` (top of the measured thread ladder,
//! default: available parallelism; the ladder always includes 1, 2 and 4
//! plus an oversubscription rung), `MAGMA_PERF_LADDER` (comma-separated
//! explicit thread counts, e.g. `1,2,4` — replaces the computed ladder; CI
//! pins this so the gate measures exactly the rungs it judges),
//! `MAGMA_GROUP_SIZE` (jobs per group, default 30), `MAGMA_SEED`, and
//! `MAGMA_BENCH_DIR` (where `BENCH_parallel_eval.json` lands, default: the
//! current directory).

use magma_bench::perf::{print_report, run_suite, write_bench_json, PerfParams};
use magma_bench::Scale;

/// Parses `MAGMA_PERF_LADDER` (`"1,2,4"`) into an explicit thread ladder:
/// positive comma-separated counts, sorted and deduplicated. Unset, empty or
/// malformed values leave the computed ladder in place (malformed with a
/// warning — a typo'd CI variable must not silently change what the perf
/// gate measures).
fn ladder_override() -> Option<Vec<usize>> {
    let raw = std::env::var("MAGMA_PERF_LADDER").ok()?;
    if raw.trim().is_empty() {
        return None;
    }
    let parsed: Option<Vec<usize>> =
        raw.split(',').map(|t| t.trim().parse::<usize>().ok().filter(|&n| n > 0)).collect();
    match parsed {
        Some(mut counts) if !counts.is_empty() => {
            counts.sort_unstable();
            counts.dedup();
            Some(counts)
        }
        _ => {
            eprintln!(
                "warning: ignoring malformed MAGMA_PERF_LADDER '{raw}' (expected e.g. '1,2,4')"
            );
            None
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    let mode = std::env::var("MAGMA_PERF_MODE").unwrap_or_else(|_| "full".into());
    let mut params = match mode.as_str() {
        "smoke" => PerfParams::smoke(scale.threads, scale.group_size.min(8), scale.seed),
        "full" => PerfParams::full(scale.threads, scale.group_size, scale.seed),
        other => {
            eprintln!("warning: unknown MAGMA_PERF_MODE '{other}' (expected 'smoke' or 'full'); using full");
            PerfParams::full(scale.threads, scale.group_size, scale.seed)
        }
    };
    if let Some(ladder) = ladder_override() {
        params.thread_counts = ladder;
    }

    println!("==============================================================");
    println!("Perf suite — parallel batch evaluation ({} mode)", params.mode);
    println!(
        "group size {}, batch {} × {}, thread ladder {:?}, seed {}",
        params.group_size, params.batch_size, params.batches, params.thread_counts, params.seed
    );
    println!("==============================================================");

    let report = run_suite(&params);
    print_report(&report);

    if report.host_parallelism < 4 {
        println!(
            "\n(note: host has {} core(s); speedups above 1x are not expected here)",
            report.host_parallelism
        );
    }
    match write_bench_json(&report) {
        Ok(path) => println!("\n(perf trajectory written to {})", path.display()),
        Err(e) => {
            // Exit non-zero: CI uploads BENCH_*.json, and the committed
            // baseline at the repo root would otherwise mask the failure
            // with a stale artifact.
            eprintln!("could not write BENCH_parallel_eval.json: {e}");
            std::process::exit(1);
        }
    }
}
