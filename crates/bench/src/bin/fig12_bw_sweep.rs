//! Fig. 12 — bandwidth sweep on the heterogeneous accelerators: Herald-like,
//! RL A2C, RL PPO2 and MAGMA on S2 (1–16 GB/s) and S4 (1–256 GB/s), Mix task.
//!
//! Regenerates the data behind Fig. 12. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::bw_sweep;
use magma::prelude::*;
use magma_bench::{banner, dump_json, print_scores, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 12 — BW sweep (Mix task)", &scale);

    for setting in [Setting::S2, Setting::S4] {
        let bws = setting.bw_sweep_gbps();
        let rows =
            bw_sweep(setting, TaskType::Mix, &bws, scale.group_size, scale.budget, scale.seed);
        for (bw, scores) in &rows {
            print_scores(&format!("{setting} / Mix / BW={bw}"), scores);
        }
        dump_json(&format!("fig12_bw_sweep_{setting}"), &rows);
    }
}
