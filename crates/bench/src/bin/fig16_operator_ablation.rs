//! Fig. 16 — ablation of MAGMA's genetic operators: mutation only, mutation +
//! Crossover-gen, and the full operator set, on (Vision, S2, BW=16) and
//! (Mix, S3, BW=16).
//!
//! Regenerates the data behind Fig. 16. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::operator_ablation;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 16 — genetic-operator ablation", &scale);

    for (setting, task) in [(Setting::S2, TaskType::Vision), (Setting::S3, TaskType::Mix)] {
        println!("\n[{setting} / {task} / BW=16]");
        let curves = operator_ablation(
            setting,
            task,
            Some(16.0),
            scale.group_size,
            scale.budget,
            10,
            scale.seed,
        );
        print!("{:<30}", "operator set \\ samples");
        for (samples, _) in &curves.last().unwrap().points {
            print!("{samples:>9}");
        }
        println!();
        for c in &curves {
            print!("{:<30}", c.method);
            for (_, v) in &c.points {
                print!("{v:>9.1}");
            }
            println!();
        }
        dump_json(&format!("fig16_operator_ablation_{setting}_{task}"), &curves);
    }
}
