//! `loadgen` — the wall-clock load generator for the `magma_server`
//! daemon (`magma-server`).
//!
//! Replays a traffic scenario over the wire at a target rate: each trace
//! arrival becomes one `submit_group` RPC at its wall-clock due time,
//! admission verdicts and terminal `done`s are correlated by request id,
//! and after the last send the generator waits for stragglers, snapshots
//! the server's stats and drains it. The run emits the schema-stable
//! `BENCH_rpc.json` (`magma-rpc/v1`): client-measured p50/p95/p99,
//! accepted/rejected/timed-out/cancelled counts, the daemon's final
//! counters and the resolved scenario descriptor.
//!
//! The process exits non-zero if the report fails its own schema
//! self-check or if any accepted submit never reached a terminal
//! response (`dropped_in_flight != 0`) — the drain guarantee CI gates on.
//!
//! With `--scenario <file>` the trace replays a registry scenario's
//! traffic block and tenant mix; the daemon should be started with the
//! same file so the mixes agree.
//!
//! # Knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `--smoke` / `MAGMA_SERVER_MODE=smoke` | CI scale: fewer requests, higher rate |
//! | `MAGMA_SERVER_ADDR` | daemon address to dial (default `127.0.0.1:4270`) |
//! | `MAGMA_SERVER_RATE` | offered rate, groups per wall-clock second |
//! | `MAGMA_SERVER_REQUESTS` | trace length (arrivals replayed) |
//! | `MAGMA_SERVER_TIMEOUT_SEC` | client-side wait bound for stragglers |
//! | `MAGMA_SERVER_MAX_FRAME` | RPC frame size limit in bytes |
//! | `--scenario <file>` | replay a registry scenario's traffic/mix |
//! | `MAGMA_SCENARIO_DIR` | registry root for scenario references (default `scenarios/`) |
//! | `MAGMA_BENCH_DIR` | output directory of `BENCH_rpc.json` |

use magma::platform::settings::ServerKnobs;
use magma_model::TenantMix;
use magma_serve::trace::{generate_trace, Scenario, TraceParams};
use magma_serve::ScenarioDescriptor;
use magma_server::loadgen::{self, LoadgenParams};
use magma_server::write_rpc_json;

fn main() {
    let cli = magma_bench::serving_cli("MAGMA_SERVER_MODE");
    let smoke = cli.smoke;
    let knobs = ServerKnobs::from_env(smoke);
    let mode = if smoke { "smoke" } else { "full" };

    println!("==============================================================");
    println!("loadgen — wall-clock RPC load generator (magma-server)");

    let (scenario, mix, requests, seed, descriptor) = match &cli.scenario {
        Some(path) => {
            let resolved = magma_bench::resolve_scenario_or_exit(path);
            println!(
                "registry scenario {:?}: {} traffic, {} tenants, descriptor {}",
                resolved.name,
                resolved.scenario,
                resolved.mix.len(),
                resolved.descriptor.content_hash
            );
            let requests = resolved.requests.unwrap_or(knobs.requests);
            let seed = resolved.seed.unwrap_or(knobs.fleet.serve.seed);
            (resolved.scenario, resolved.mix.clone(), requests, seed, resolved.descriptor)
        }
        None => {
            let seed = knobs.fleet.serve.seed;
            let params = serde::Value::Map(vec![
                ("requests".into(), serde::Value::U64(knobs.requests as u64)),
                ("rate".into(), serde::Value::F64(knobs.rate)),
                ("tenants".into(), serde::Value::U64(knobs.fleet.tenants as u64)),
                ("scenario".into(), serde::Value::Str("poisson".into())),
                ("seed".into(), serde::Value::U64(seed)),
            ]);
            (
                Scenario::Poisson,
                TenantMix::synthetic(knobs.fleet.tenants, seed),
                knobs.requests,
                seed,
                ScenarioDescriptor::new("builtin", "loadgen_poisson", params),
            )
        }
    };
    println!(
        "mode {mode}, target {}, {} requests at {} groups/s, timeout {}s, seed {seed}",
        knobs.addr, requests, knobs.rate, knobs.timeout_sec
    );
    println!("==============================================================");

    let trace = generate_trace(
        &TraceParams {
            scenario,
            requests,
            mean_interarrival_sec: 1.0 / knobs.rate,
            mini_batch: magma_model::workload::DEFAULT_MINI_BATCH,
            seed,
        },
        &mix,
    );
    let params = LoadgenParams {
        addr: knobs.addr.clone(),
        rate: knobs.rate,
        max_frame_bytes: knobs.max_frame_bytes,
        timeout_sec: knobs.timeout_sec,
        speedup: 1.0,
    };
    let report = match loadgen::run(&params, &trace, descriptor, mode) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("loadgen run against {} failed: {e}", knobs.addr);
            std::process::exit(1);
        }
    };

    if let Some(violation) = report.validate() {
        eprintln!("magma-rpc/v1 schema self-check failed: {violation}");
        std::process::exit(1);
    }
    println!(
        "admission: {} accepted / {} busy / {} errored of {} requests",
        report.accepted, report.rejected, report.errored, report.requests
    );
    println!(
        "terminals: {} done ({} timed out), {} cancelled, {} dropped in flight",
        report.completed, report.timed_out, report.cancelled, report.dropped_in_flight
    );
    println!(
        "client latency: mean {:.1} ms, p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        report.mean_latency_ms, report.p50_latency_ms, report.p95_latency_ms, report.p99_latency_ms
    );
    println!(
        "server: {} jobs completed, {} sessions preempted, cache {}/{}/{} hit/near/miss",
        report.server.completed_jobs,
        report.server.preempted_sessions,
        report.server.cache_hits,
        report.server.cache_near_hits,
        report.server.cache_misses
    );

    match write_rpc_json(&report) {
        Ok(path) => println!("\n(RPC profile written to {})", path.display()),
        Err(e) => {
            eprintln!("could not write BENCH_rpc.json: {e}");
            std::process::exit(1);
        }
    }
    if report.dropped_in_flight != 0 {
        eprintln!(
            "{} accepted submits never reached a terminal response — the drain guarantee failed",
            report.dropped_in_flight
        );
        std::process::exit(1);
    }
}
