//! `cache_sweep` — the mapping-cache calibration sweep behind
//! `BENCH_cache.json` (not a paper artefact; the tuning harness for the
//! serving layer's warm-start cache).
//!
//! Sweeps the nearest-key probe threshold × refinement budget × key
//! quantization step grid of `magma_serve::sweep` on the standard Poisson
//! mix trace, prints the measured frontier (hit rate, near-hit share, hit
//! quality vs cold search, end-to-end latency per point) plus a
//! `MAGMA_SIGNATURE_PROFILE` on/off A/B at the shipped knob point, and
//! writes the schema-stable `BENCH_cache.json` (schema `magma-cache/v2`,
//! self-checked via `CacheSweepReport::validate`).
//!
//! With `--scenario <file>` the sweep's trace comes from a registry
//! scenario (`magma-registry`) instead of the standard Poisson mix, and
//! the report embeds the resolved scenario descriptor.
//!
//! The builtin run doubles as an acceptance check and panics on regression:
//! a calibrated point must exist (near-hit quality ≥ 0.95× cold search at
//! ≤ 0.25× of the cold budget), and in full mode the shipped defaults must
//! be that calibrated point — so a default that the frontier no longer
//! justifies fails CI instead of shipping silently. Registry scenarios
//! skip that gate — their frontier is the scenario's, not the shipped
//! defaults'.
//!
//! # Knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `--smoke` / `MAGMA_SERVE_MODE=smoke` | CI scale: tiny grid (probe off vs shipped epsilon) |
//! | `MAGMA_SERVE_*` | the underlying serving knobs (trace size, budgets, seed) |
//! | `--scenario <file>` | sweep on a registry scenario's trace instead of the standard Poisson mix |
//! | `MAGMA_SCENARIO_DIR` | registry root the scenario's references resolve against (default `scenarios/`) |
//! | `MAGMA_THREADS` | evaluation worker threads — wall-clock only, the report never changes |
//! | `MAGMA_BENCH_DIR` | output directory of `BENCH_cache.json` |

use magma_serve::sweep::{run_cache_sweep, run_cache_sweep_custom, write_cache_json, SweepPoint};
use magma_serve::CacheSweepReport;

fn main() {
    let cli = magma_bench::serving_cli("MAGMA_SERVE_MODE");
    let (smoke, scenario) = (cli.smoke, cli.scenario);
    let knobs = magma::platform::settings::ServeKnobs::from_env(smoke);
    println!("==============================================================");
    println!("cache_sweep — mapping-cache calibration (magma-serve)");
    println!(
        "mode {}, {} requests/point, groups of {}, cold budget {}, cache {} entries, seed {}",
        if smoke { "smoke" } else { "full" },
        knobs.requests,
        knobs.group_target,
        knobs.cold_budget,
        knobs.cache_capacity,
        knobs.seed
    );
    println!(
        "shipped defaults: epsilon {}, refine budget {}, quant step {}",
        knobs.cache_epsilon, knobs.refine_budget, knobs.quant_step
    );
    println!("==============================================================");

    let report = match &scenario {
        Some(path) => {
            let resolved = magma_bench::resolve_scenario_or_exit(path);
            println!(
                "registry scenario {:?}: platform {} ({} cores), {} tenants, descriptor {}",
                resolved.name,
                resolved.platform.name(),
                resolved.platform_def.core_count(),
                resolved.mix.len(),
                resolved.descriptor.content_hash
            );
            run_cache_sweep_custom(&knobs, smoke, true, &resolved.custom())
        }
        None => run_cache_sweep(&knobs, smoke, true),
    };
    if let Err(violation) = report.validate() {
        eprintln!("magma-cache/v2 schema self-check failed: {violation}");
        std::process::exit(1);
    }
    print_report(&report);

    // Write the profile before gating: a failing acceptance still leaves
    // the measured frontier on disk for diagnosis.
    match write_cache_json(&report) {
        Ok(path) => println!("\n(cache profile written to {})", path.display()),
        Err(e) => {
            eprintln!("could not write BENCH_cache.json: {e}");
            std::process::exit(1);
        }
    }
    if scenario.is_none() {
        check_acceptance(&report, smoke);
    }
}

fn print_point(p: &SweepPoint, marker: &str) {
    println!(
        "  {:>5.2} {:>7} {:>6.2} | {:>5} {:>5} {:>5} {:>6.3} | {:>8.3} {:>8.3} {:>8.3} | \
         {:>10.1} {:>10.1} {:>9.0}{marker}",
        p.epsilon,
        p.refine_budget,
        p.quant_step,
        p.hits,
        p.near_hits,
        p.misses,
        p.hit_rate,
        p.quality_vs_probe_off,
        p.hit_cold_throughput_ratio,
        p.hit_sample_fraction,
        p.mean_e2e_us,
        p.p95_e2e_us,
        p.jobs_per_sec
    );
}

fn print_report(report: &CacheSweepReport) {
    println!(
        "\n    eps  refine  quant |  hits  near  miss   rate |  quality   cohort   budget |  \
         mean e2e    p95 e2e    jobs/s"
    );
    for p in &report.grid {
        let chosen = report.calibrated.as_ref() == Some(p);
        print_point(p, if chosen { "  ← calibrated" } else { "" });
    }
    if let Some(ab) = &report.profile_ab {
        println!("\nsignature profile A/B at the shipped knob point:");
        print_point(&ab.on, "  (profile on)");
        print_point(&ab.off, "  (profile off)");
    }
}

/// The calibration acceptance criteria. Panics on regression so CI fails
/// loudly.
fn check_acceptance(report: &CacheSweepReport, smoke: bool) {
    let calibrated = report.calibrated.as_ref().unwrap_or_else(|| {
        panic!(
            "no grid point kept quality ≥ {} at ≤ {} of the cold budget — the near-hit \
             probe cannot be shipped on this frontier",
            report.quality_floor, report.budget_ceiling
        )
    });
    assert!(
        calibrated.quality_vs_probe_off >= report.quality_floor
            && calibrated.hit_sample_fraction <= report.budget_ceiling,
        "calibrated point violates its own floors: {calibrated:?}"
    );
    // Smoke sweeps pin refine/quant to the knobs and only A/B the probe, so
    // defaults can only be held to the frontier at full scale.
    if !smoke {
        assert!(
            report.defaults_match_calibrated,
            "the shipped defaults (epsilon {}, refine {}, quant {}) are not the calibrated \
             point (epsilon {}, refine {}, quant {}) — recalibrate platform::settings",
            report.default_epsilon,
            report.default_refine_budget,
            report.default_quant_step,
            calibrated.epsilon,
            calibrated.refine_budget,
            calibrated.quant_step
        );
    }
    println!(
        "\nacceptance: calibrated point epsilon {}, refine {}, quant {} — hit rate {:.3}, \
         quality {:.3} (≥ {}), budget {:.3} (≤ {}){}",
        calibrated.epsilon,
        calibrated.refine_budget,
        calibrated.quant_step,
        calibrated.hit_rate,
        calibrated.quality_vs_probe_off,
        report.quality_floor,
        calibrated.hit_sample_fraction,
        report.budget_ceiling,
        if smoke { "" } else { "; shipped defaults match" }
    );
}
