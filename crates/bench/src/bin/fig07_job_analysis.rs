//! Fig. 7 — per-model and per-task no-stall latency / required bandwidth on
//! the HB and LB dataflow styles.
//!
//! Regenerates the data behind Fig. 7. The analysis is closed-form (no
//! search), so `MAGMA_GROUP_SIZE` / `MAGMA_BUDGET` / `MAGMA_THREADS` have no
//! effect here; the per-job mini-batch is fixed at 4 as in the paper.

use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 7 — job analysis (HB vs LB dataflow styles)", &scale);

    let (rows, averages) = magma::experiments::fig7_job_analysis(4);

    println!(
        "\n{:<16} {:>8} {:>14} {:>14} {:>12} {:>12}",
        "model", "task", "HB lat (cyc)", "LB lat (cyc)", "HB BW (GB/s)", "LB BW (GB/s)"
    );
    for r in rows.iter().chain(averages.iter()) {
        println!(
            "{:<16} {:>8} {:>14.2e} {:>14.2e} {:>12.2e} {:>12.2e}",
            r.model,
            r.task.short_name(),
            r.hb_latency_cycles,
            r.lb_latency_cycles,
            r.hb_bw_gbps,
            r.lb_bw_gbps
        );
    }

    dump_json("fig07_job_analysis", &(rows, averages));
}
