//! `magma_server` — the wall-clock RPC serving daemon (`magma-server`).
//!
//! Binds a TCP socket and serves the mapping pipeline for real: clients
//! submit job groups over the length-prefixed JSON protocol, the engine
//! batches, places and searches them against `Instant::now()`, and every
//! group's execution is reported back as a multiplexed `done` response.
//! The process runs until a client sends `drain`: admissions close, every
//! live session finishes, shard caches persist (when
//! `MAGMA_SERVE_CACHE_PATH` is set) and the daemon exits with a final
//! counter summary.
//!
//! With `--scenario <file>` the platform and tenant mix come from a
//! registry scenario (`magma-registry`) instead of the synthetic
//! defaults; the scenario's cache/SLA residuals apply to the engine.
//!
//! # Knobs
//!
//! | Variable | Effect |
//! |---|---|
//! | `--smoke` / `MAGMA_SERVER_MODE=smoke` | CI scale: smaller budgets, tighter timeout |
//! | `MAGMA_SERVER_ADDR` | bind address (default `127.0.0.1:4270`; port 0 = ephemeral) |
//! | `MAGMA_SERVER_BACKLOG_SEC` | projected-backlog bound before `busy` rejections |
//! | `MAGMA_SERVER_PENDING` | bounded admission queue per shard (planned groups) |
//! | `MAGMA_SERVER_TIMEOUT_SEC` | wall-clock session timeout (early finish + `timed_out`) |
//! | `MAGMA_SERVER_MAX_FRAME` | RPC frame size limit in bytes |
//! | `MAGMA_SERVER_RATE` | target rate used to price the batching window |
//! | `MAGMA_FLEET_*` / `MAGMA_SERVE_*` | the underlying fleet/serving knobs |
//! | `MAGMA_SERVE_CACHE_PATH` | per-shard cache persistence at `<path>.shard<i>` |
//! | `--scenario <file>` | serve a registry scenario's platform/mix |
//! | `MAGMA_SCENARIO_DIR` | registry root for scenario references (default `scenarios/`) |

use magma::platform::settings::{PlatformSpec, ServerKnobs};
use magma_model::TenantMix;
use magma_serve::EngineConfig;
use magma_server::Server;

fn main() {
    let cli = magma_bench::serving_cli("MAGMA_SERVER_MODE");
    let smoke = cli.smoke;
    let mut knobs = ServerKnobs::from_env(smoke);

    println!("==============================================================");
    println!("magma_server — wall-clock RPC serving daemon (magma-server)");

    let (config, mix) = match &cli.scenario {
        Some(path) => {
            let resolved = magma_bench::resolve_scenario_or_exit(path);
            let custom = resolved.custom();
            knobs.fleet.serve = custom.apply_serving(&knobs.fleet.serve);
            if let Some(seed) = custom.seed {
                knobs.fleet.serve.seed = seed;
            }
            let mut config = EngineConfig::from_knobs(&knobs);
            config.shard_settings =
                vec![PlatformSpec::Custom(resolved.platform.clone()); knobs.fleet.shards];
            println!(
                "registry scenario {:?}: platform {} ({} cores) on every shard, {} tenants, \
                 descriptor {}",
                resolved.name,
                resolved.platform.name(),
                resolved.platform_def.core_count(),
                resolved.mix.len(),
                resolved.descriptor.content_hash
            );
            (config, resolved.mix)
        }
        None => (
            EngineConfig::from_knobs(&knobs),
            TenantMix::synthetic(knobs.fleet.tenants, knobs.fleet.serve.seed),
        ),
    };
    println!(
        "mode {}, {} shards, policy {}, max_live {}, backlog bound {}s, \
         pending/shard {}, timeout {}s, seed {}",
        if smoke { "smoke" } else { "full" },
        config.shards(),
        config.policy,
        config.max_live,
        config.max_backlog_sec,
        config.pending_per_shard,
        config.timeout_sec,
        config.seed
    );
    println!("==============================================================");

    let server = match Server::start(&knobs.addr, knobs.max_frame_bytes, config, mix) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("could not bind {}: {e}", knobs.addr);
            std::process::exit(1);
        }
    };
    // Scripts (and the CI smoke job) scrape this line for the resolved
    // address, so keep its shape stable.
    println!("listening on {}", server.addr());

    let stats = server.join();
    println!(
        "drained: {} accepted / {} rejected submits; {} jobs completed \
         ({} timed out, {} cancelled); sessions {} admitted = {} completed + {} preempted; \
         cache {}/{}/{} hit/near/miss",
        stats.accepted,
        stats.rejected,
        stats.completed_jobs,
        stats.timed_out_jobs,
        stats.cancelled_jobs,
        stats.admitted_sessions,
        stats.completed_sessions,
        stats.preempted_sessions,
        stats.cache_hits,
        stats.cache_near_hits,
        stats.cache_misses
    );
}
