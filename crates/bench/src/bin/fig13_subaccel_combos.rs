//! Fig. 13 — sub-accelerator combinations: job analysis and MAGMA throughput
//! on S3 (homogeneous), S4 (heterogeneous) and S5 (BigLittle) at BW = 1 and
//! 64 GB/s.
//!
//! Regenerates the data behind Fig. 13. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::subaccel_combination_study;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 13 — S3 vs S4 vs S5 under different bandwidths (Mix task)", &scale);

    let rows = subaccel_combination_study(
        TaskType::Mix,
        &[1.0, 64.0],
        scale.group_size,
        scale.budget,
        scale.seed,
    );

    println!(
        "\n{:<8} {:>10} {:>18} {:>18} {:>16}",
        "setting", "BW (GB/s)", "avg lat (cycles)", "avg req BW (GB/s)", "MAGMA GFLOP/s"
    );
    for r in &rows {
        println!(
            "{:<8} {:>10.0} {:>18.2e} {:>18.2} {:>16.1}",
            r.setting, r.bw_gbps, r.avg_no_stall_cycles, r.avg_required_bw_gbps, r.magma_gflops
        );
    }

    // Normalized view per bandwidth (the paper normalizes by S5).
    for bw in [1.0, 64.0] {
        let per_bw: Vec<&_> = rows.iter().filter(|r| r.bw_gbps == bw).collect();
        if let Some(s5) = per_bw.iter().find(|r| r.setting == "S5") {
            println!("\nBW={bw} GB/s (normalized by S5):");
            for r in &per_bw {
                println!("  {:<4} {:.2}", r.setting, r.magma_gflops / s5.magma_gflops);
            }
        }
    }
    dump_json("fig13_subaccel_combos", &rows);
}
