//! Fig. 14 — fixed vs flexible PE arrays: MAGMA on the fixed S1/S3 settings
//! versus their flexible-array variants, Vision and Mix tasks, at low and
//! high bandwidth.
//!
//! Regenerates the data behind Fig. 14. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::flexible_vs_fixed;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 14 — fixed vs flexible PE arrays", &scale);

    let cases = [
        (Setting::S1, TaskType::Vision, 1.0),
        (Setting::S1, TaskType::Vision, 16.0),
        (Setting::S1, TaskType::Mix, 1.0),
        (Setting::S1, TaskType::Mix, 16.0),
        (Setting::S3, TaskType::Vision, 1.0),
        (Setting::S3, TaskType::Vision, 256.0),
        (Setting::S3, TaskType::Mix, 1.0),
        (Setting::S3, TaskType::Mix, 256.0),
    ];

    println!(
        "\n{:<10} {:>8} {:>6} {:>14} {:>14} {:>8} {:>16} {:>16}",
        "setting",
        "task",
        "BW",
        "fixed GFLOP/s",
        "flex GFLOP/s",
        "ratio",
        "fixed lat (cyc)",
        "flex lat (cyc)"
    );
    let mut rows = Vec::new();
    for (setting, task, bw) in cases {
        let r = flexible_vs_fixed(setting, task, bw, scale.group_size, scale.budget, scale.seed);
        println!(
            "{:<10} {:>8} {:>6.0} {:>14.1} {:>14.1} {:>8.2} {:>16.2e} {:>16.2e}",
            r.setting,
            task.short_name(),
            bw,
            r.fixed_gflops,
            r.flexible_gflops,
            r.flexible_gflops / r.fixed_gflops,
            r.fixed_avg_latency,
            r.flexible_avg_latency
        );
        rows.push(r);
    }
    dump_json("fig14_flexible", &rows);
}
