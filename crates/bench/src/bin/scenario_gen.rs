//! `scenario_gen` — the scenario-registry generator and checker
//! (`magma-registry`; not a paper artefact).
//!
//! Two modes:
//!
//! * **generate** (default, `--out <dir>` to override the target): sweeps
//!   the design space — Table III's S1–S6 plus edge-SoC duos through
//!   64-core asymmetric-bandwidth meshes, weighted/synthetic tenant mixes,
//!   steady / flash-crowd / model-release-day traffic — and (re)writes the
//!   full registry tree of JSON definition files. The committed
//!   `scenarios/` tree is exactly this output; regenerate it instead of
//!   hand-editing.
//! * **check** (`--check [dir]`): loads and fully validates every
//!   committed definition (schema tags, ranges, cross-references), resolves
//!   every scenario into a runnable value, and exits nonzero with the
//!   registry's actionable error on the first rejection — CI's
//!   `registry_check` gate.
//!
//! # Knobs
//!
//! | Flag / variable | Effect |
//! |---|---|
//! | `--out <dir>` | generate the tree under `<dir>` (default: the registry root) |
//! | `--check [dir]` | validate an existing tree instead of generating |
//! | `MAGMA_SCENARIO_DIR` | default registry root (default `scenarios/`) |

use std::path::PathBuf;

use magma_registry::{gen, magma_scenario_dir, Registry};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut dir: Option<PathBuf> = None;
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--check" => {
                check = true;
                if let Some(next) = iter.peek() {
                    if !next.starts_with("--") {
                        dir = Some(PathBuf::from(iter.next().unwrap()));
                    }
                }
            }
            "--out" => match iter.next() {
                Some(path) => dir = Some(PathBuf::from(path)),
                None => {
                    eprintln!("--out requires a directory");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?} (expected --check [dir] or --out <dir>)");
                std::process::exit(2);
            }
        }
    }
    let root = dir.unwrap_or_else(magma_scenario_dir);

    if check {
        run_check(&root);
    } else {
        run_generate(&root);
    }
}

/// Validates every definition under `root` and resolves every scenario.
fn run_check(root: &std::path::Path) {
    println!("scenario_gen --check: validating registry tree at {}", root.display());
    let registry = match Registry::load_dir(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(1);
        }
    };
    let stats = registry.stats();
    for name in registry.scenario_names() {
        match registry.resolve(&name) {
            Ok(resolved) => {
                if let Err(e) = resolved.descriptor.validate() {
                    eprintln!("scenario {name:?}: descriptor self-check failed: {e}");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "OK: {} platforms, {} mixes, {} scenarios — all valid, all scenarios resolve",
        stats.platforms, stats.mixes, stats.scenarios
    );
    println!("platforms: {}", registry.platform_names().join(", "));
    println!("mixes:     {}", registry.mix_names().join(", "));
    println!("scenarios: {}", registry.scenario_names().join(", "));
}

/// Writes the full builtin + generated tree under `root` and re-validates
/// the result.
fn run_generate(root: &std::path::Path) {
    println!("scenario_gen: writing registry tree under {}", root.display());
    let written = match gen::write_tree(root) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("could not write the registry tree: {e}");
            std::process::exit(1);
        }
    };
    for path in &written {
        println!("  wrote {}", path.display());
    }
    // A generator that emits something its own loader rejects is a bug —
    // re-validate what was just written.
    match Registry::load_dir(root) {
        Ok(registry) => {
            let stats = registry.stats();
            println!(
                "wrote {} files: {} platforms, {} mixes, {} scenarios (all re-validated)",
                written.len(),
                stats.platforms,
                stats.mixes,
                stats.scenarios
            );
        }
        Err(e) => {
            eprintln!("generated tree failed its own validation: {e}");
            std::process::exit(1);
        }
    }
}
