//! Fig. 8 — all ten mappers on the small homogeneous accelerator (S1,
//! BW = 16 GB/s) across the four task types.
//!
//! Regenerates the data behind Fig. 8. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::compare_all_mappers;
use magma::prelude::*;
use magma_bench::{banner, dump_json, print_scores, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 8 — homogeneous small accelerator (S1, BW=16 GB/s)", &scale);

    let mut all = Vec::new();
    for task in TaskType::ALL {
        let scores = compare_all_mappers(
            Setting::S1,
            task,
            Some(16.0),
            scale.group_size,
            scale.budget,
            scale.seed,
        );
        print_scores(&format!("S1 / {task}"), &scores);
        all.push((task, scores));
    }
    dump_json("fig08_homogeneous", &all);
}
