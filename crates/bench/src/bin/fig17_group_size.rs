//! Fig. 17 — group-size sweep: MAGMA throughput on (Mix, S2, BW=16) for group
//! sizes from 4 to 1000, normalized by the largest group.
//!
//! Regenerates the data behind Fig. 17. Knobs: `MAGMA_BUDGET` (samples per
//! optimizer run, default 1000), `MAGMA_SEED`, and `MAGMA_THREADS`
//! (evaluation worker threads, default: all cores — changes wall-clock only,
//! never results); the group sizes themselves
//! are the swept variable, so `MAGMA_GROUP_SIZE` is ignored. Set
//! `MAGMA_FULL_SCALE=1` for the paper's 10 K-sample budget.

use magma::experiments::group_size_sweep;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 17 — group-size sweep (Mix, S2, BW=16)", &scale);

    let full = std::env::var("MAGMA_FULL_SCALE").map(|v| v == "1").unwrap_or(false);
    let sizes: Vec<usize> = if full {
        vec![4, 10, 20, 40, 50, 100, 200, 500, 1000]
    } else {
        vec![4, 10, 20, 40, 60, 100]
    };

    let rows =
        group_size_sweep(Setting::S2, TaskType::Mix, Some(16.0), &sizes, scale.budget, scale.seed);

    let reference = rows.last().map(|(_, g)| *g).unwrap_or(1.0);
    println!("\n{:>12} {:>14} {:>12}", "group size", "GFLOP/s", "normalized");
    for (gs, gflops) in &rows {
        println!("{:>12} {:>14.1} {:>12.2}", gs, gflops, gflops / reference);
    }
    dump_json("fig17_group_size", &rows);
}
