//! Fig. 10 — exploration study on (Mix, S2, BW=16): throughput reached by
//! MAGMA, PPO2, stdGA, PSO and CMA at the sampling budget, against a
//! best-effort random-sampling reference.
//!
//! Regenerates the data behind Fig. 10. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::exploration_study;
use magma::prelude::*;
use magma_bench::{banner, dump_json, print_scores, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 10 — explored map space and reached performance (Mix, S2, BW=16)", &scale);

    // The paper's "exhaustively sampled" reference uses ~1M random samples;
    // scale it to 10x the per-method budget here.
    let reference_budget = scale.budget * 10;
    let scores = exploration_study(
        Setting::S2,
        TaskType::Mix,
        Some(16.0),
        scale.group_size,
        scale.budget,
        reference_budget,
        scale.seed,
    );
    print_scores(&format!("Mix / S2 / BW=16 (reference budget {reference_budget})"), &scores);
    dump_json("fig10_exploration", &scores);
}
