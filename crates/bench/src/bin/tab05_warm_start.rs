//! Regenerates **Table V** — the warm-start study: optimize one group, then
//! warm-start on fresh groups of the same task and measure the normalized
//! throughput after 0, 1, 30 and 100 epochs of further optimization.
//!
//! Knobs: `MAGMA_GROUP_SIZE` (jobs per group, default 30; paper 100),
//! `MAGMA_BUDGET` (unused here — the study derives its budget from the group
//! size: 100 epochs of one population each), `MAGMA_SEED`, `MAGMA_THREADS`
//! (evaluation worker threads, default: all cores — changes wall-clock only,
//! never results), `MAGMA_FULL_SCALE=1` (paper scale, 4 warm-started
//! instances), and
//! `MAGMA_WARMSTART_MODE=index` to reproduce the index-wrapped adaptation
//! baseline instead of the default profile-matched transfer (Section V-C).

use magma::experiments::warm_start_study_with_mode;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    let mode = match std::env::var("MAGMA_WARMSTART_MODE") {
        Ok(v) => match v.to_ascii_lowercase().as_str() {
            "index" | "index-wrap" | "indexwrap" => WarmStartMode::IndexWrap,
            "profile" | "profile-matched" | "profilematched" => WarmStartMode::ProfileMatched,
            other => {
                eprintln!(
                    "warning: unknown MAGMA_WARMSTART_MODE '{other}' \
                     (expected 'index' or 'profile'); using profile-matched"
                );
                WarmStartMode::ProfileMatched
            }
        },
        Err(_) => WarmStartMode::ProfileMatched,
    };
    banner(&format!("Table V — warm-start of MAGMA (Mix, S4, BW=1 GB/s, {mode})"), &scale);

    let full = std::env::var("MAGMA_FULL_SCALE").map(|v| v == "1").unwrap_or(false);
    let instances = if full { 4 } else { 2 };

    let rows = warm_start_study_with_mode(
        Setting::S4,
        TaskType::Mix,
        Some(1.0),
        scale.group_size,
        instances,
        scale.seed,
        mode,
    );

    println!(
        "\n{:<24} {:>8} {:>10} {:>10} {:>11} {:>12}",
        "instance", "Raw", "Trf-0-ep", "Trf-1-ep", "Trf-30-ep", "Trf-100-ep"
    );
    for r in &rows {
        println!(
            "{:<24} {:>8.2} {:>10.2} {:>10.2} {:>11.2} {:>12.2}",
            r.instance,
            r.raw,
            r.transfer_0_epoch,
            r.transfer_1_epoch,
            r.transfer_30_epoch,
            r.transfer_100_epoch
        );
    }

    let warm: Vec<&_> = rows.iter().skip(1).collect();
    if !warm.is_empty() {
        let avg = |f: fn(&magma::experiments::WarmStartRow) -> f64| {
            warm.iter().map(|r| f(r)).sum::<f64>() / warm.len() as f64
        };
        println!(
            "\naverage over warm-started instances ({mode}): Raw {:.2}, Trf-0-ep {:.2}, Trf-1-ep {:.2}, Trf-30-ep {:.2}",
            avg(|r| r.raw),
            avg(|r| r.transfer_0_epoch),
            avg(|r| r.transfer_1_epoch),
            avg(|r| r.transfer_30_epoch)
        );
    }
    dump_json("tab05_warm_start", &rows);
}
