//! Diffs two `BENCH_parallel_eval.json` perf reports, or gates one against a
//! minimum parallel speedup. The CI `perf` job runs the gate mode so a
//! parallel-evaluation regression fails the build; the diff mode is for
//! humans comparing a fresh run against the committed baseline.
//!
//! ```text
//! bench_compare OLD.json NEW.json
//!     Per-workload, per-thread-count table of throughput and speedup
//!     deltas. Accepts magma-perf/v1 files on either side (pre-v2 fields
//!     default), so diffs can straddle the schema bump.
//!
//! bench_compare --gate REPORT.json --threads 2 --min-speedup 1.05
//!     Exits non-zero unless every workload's speedup_vs_serial at the
//!     given thread count is at least the minimum (missing rungs fail too).
//!     Defaults: --threads 2, --min-speedup 1.05.
//! ```

use magma_bench::compare::{check_gate, diff, format_diff, format_gate, load_report, GateSpec};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage:\n  bench_compare OLD.json NEW.json\n  bench_compare --gate REPORT.json [--threads N] [--min-speedup X]";

fn fail(msg: &str) -> ExitCode {
    eprintln!("{msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}

fn run_gate(mut args: std::env::Args) -> ExitCode {
    let Some(path) = args.next() else {
        return fail("--gate needs a report path");
    };
    let mut spec = GateSpec { threads: 2, min_speedup: 1.05 };
    while let Some(flag) = args.next() {
        let Some(value) = args.next() else {
            return fail(&format!("{flag} needs a value"));
        };
        match (flag.as_str(), value.parse::<f64>()) {
            ("--threads", Ok(v)) if v >= 1.0 && v.fract() == 0.0 => spec.threads = v as usize,
            ("--min-speedup", Ok(v)) if v > 0.0 => spec.min_speedup = v,
            _ => return fail(&format!("bad argument: {flag} {value}")),
        }
    }
    let report = match load_report(Path::new(&path)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let violations = check_gate(&report, &spec);
    print!("{}", format_gate(&report, &spec, &violations));
    if violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_diff(old_path: &str, new_path: &str) -> ExitCode {
    let (old, new) = match (load_report(Path::new(old_path)), load_report(Path::new(new_path))) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let deltas = diff(&old, &new);
    print!("{}", format_diff(&old, &new, &deltas));
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("--gate") => run_gate(args),
        Some(old_path) => match args.next() {
            Some(ref new_path) if args.next().is_none() => run_diff(old_path, new_path),
            _ => fail("expected exactly two report paths"),
        },
        None => fail("missing arguments"),
    }
}
