//! Fig. 11 — convergence curves of every mapper on (Vision, S2, BW=16) and
//! (Mix, S3, BW=16).
//!
//! Regenerates the data behind Fig. 11. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::convergence_curves;
use magma::prelude::*;
use magma_bench::{banner, dump_json, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 11 — convergence curves", &scale);

    for (setting, task) in [(Setting::S2, TaskType::Vision), (Setting::S3, TaskType::Mix)] {
        println!("\n[{setting} / {task} / BW=16]");
        let curves = convergence_curves(
            setting,
            task,
            Some(16.0),
            scale.group_size,
            scale.budget,
            10,
            scale.seed,
        );
        // Print a compact table: one row per method, best GFLOP/s at 10
        // checkpoints.
        print!("{:<22}", "mapper \\ samples");
        for (samples, _) in &curves.last().unwrap().points {
            print!("{samples:>9}");
        }
        println!();
        for c in &curves {
            print!("{:<22}", c.method);
            for (_, v) in &c.points {
                print!("{v:>9.1}");
            }
            println!();
        }
        dump_json(&format!("fig11_convergence_{setting}_{task}"), &curves);
    }
}
