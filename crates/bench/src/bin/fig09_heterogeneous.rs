//! Fig. 9 — all ten mappers on the heterogeneous accelerators: S2 (small,
//! BW = 16 GB/s) and S4 (large, BW = 256 GB/s), Vision and Mix tasks.
//!
//! Regenerates the data behind Fig. 9. Knobs: `MAGMA_GROUP_SIZE` (jobs per
//! group, default 30), `MAGMA_BUDGET` (samples per optimizer run, default
//! 1000), `MAGMA_SEED`, `MAGMA_THREADS` (evaluation worker threads, default:
//! all cores — changes wall-clock only, never results), and
//! `MAGMA_FULL_SCALE=1` for the paper's scale
//! (group size 100, 10 K samples).

use magma::experiments::compare_all_mappers;
use magma::prelude::*;
use magma_bench::{banner, dump_json, print_scores, Scale};

fn main() {
    let scale = Scale::from_env();
    banner("Fig. 9 — heterogeneous accelerators (S2 BW=16, S4 BW=256)", &scale);

    let cases = [
        (Setting::S2, TaskType::Vision, 16.0),
        (Setting::S2, TaskType::Mix, 16.0),
        (Setting::S4, TaskType::Vision, 256.0),
        (Setting::S4, TaskType::Mix, 256.0),
    ];

    let mut all = Vec::new();
    for (setting, task, bw) in cases {
        let scores = compare_all_mappers(
            setting,
            task,
            Some(bw),
            scale.group_size,
            scale.budget,
            scale.seed,
        );
        print_scores(&format!("{setting} / {task} / BW={bw}"), &scores);
        all.push((setting.to_string(), task, bw, scores));
    }
    dump_json("fig09_heterogeneous", &all);
}
