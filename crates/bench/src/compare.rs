//! Comparing and gating `BENCH_parallel_eval.json` perf reports.
//!
//! Two consumers, both surfaced through the `bench_compare` binary:
//!
//! * **Diff** ([`diff`]) — lines up two [`PerfReport`]s workload-by-workload
//!   and rung-by-rung and reports the throughput / speedup deltas, so a PR
//!   can answer "what did this change do to evaluation speed?" with one
//!   command instead of eyeballing two JSON files.
//! * **Gate** ([`check_gate`]) — checks a single report against a
//!   [`GateSpec`] (minimum `speedup_vs_serial` at a given thread count,
//!   on every workload). CI runs this against the freshly measured report;
//!   a parallel-evaluation regression fails the build instead of rotting
//!   silently in an artifact nobody opens.
//!
//! Both operate on reports parsed by [`load_report`], which accepts v1 files
//! too (pre-v2 fields default) so diffs can straddle the schema bump.

use crate::perf::{PerfReport, ThreadPerf};
use std::fmt::Write as _;
use std::path::Path;

/// A CI perf-gate specification: every workload's measured
/// `speedup_vs_serial` at [`GateSpec::threads`] workers must be at least
/// [`GateSpec::min_speedup`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateSpec {
    /// The rung to judge (must be present in every workload's ladder).
    pub threads: usize,
    /// Minimum acceptable speedup over the serial row at that rung.
    pub min_speedup: f64,
}

/// One gate violation: which workload failed and what it measured.
#[derive(Debug, Clone, PartialEq)]
pub struct GateViolation {
    /// Workload name.
    pub workload: String,
    /// The measured speedup at the gated rung, or `None` if the rung was
    /// never measured (which is itself a violation — a gate that silently
    /// skips is no gate).
    pub measured: Option<f64>,
}

/// Checks `report` against `spec`, returning every violation (empty ⇒ the
/// gate passes). A workload missing the gated rung entirely counts as a
/// violation with `measured: None`.
pub fn check_gate(report: &PerfReport, spec: &GateSpec) -> Vec<GateViolation> {
    report
        .workloads
        .iter()
        .filter_map(|w| match w.at_threads(spec.threads) {
            Some(m) if m.speedup_vs_serial >= spec.min_speedup => None,
            Some(m) => Some(GateViolation {
                workload: w.name.clone(),
                measured: Some(m.speedup_vs_serial),
            }),
            None => Some(GateViolation { workload: w.name.clone(), measured: None }),
        })
        .collect()
}

/// Renders a gate outcome as the text `bench_compare --gate` prints.
pub fn format_gate(report: &PerfReport, spec: &GateSpec, violations: &[GateViolation]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "perf gate: speedup_vs_serial at {} thread(s) must be >= {:.2} ({} workload(s), host parallelism {})",
        spec.threads,
        spec.min_speedup,
        report.workloads.len(),
        report.host_parallelism,
    );
    for w in &report.workloads {
        match w.at_threads(spec.threads) {
            Some(m) => {
                let verdict = if m.speedup_vs_serial >= spec.min_speedup { "ok" } else { "FAIL" };
                let _ = writeln!(
                    out,
                    "  {verdict:>4}  {:<28} {:.3}x (efficiency {:.0}%)",
                    w.name,
                    m.speedup_vs_serial,
                    m.scaling_efficiency * 100.0,
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  FAIL  {:<28} rung not measured (ladder {:?})",
                    w.name,
                    w.measurements.iter().map(|m| m.threads).collect::<Vec<_>>(),
                );
            }
        }
    }
    let _ = writeln!(out, "gate {}", if violations.is_empty() { "PASSED" } else { "FAILED" });
    out
}

/// The delta between two measurements of the same (workload, threads) rung.
#[derive(Debug, Clone, PartialEq)]
pub struct RungDelta {
    /// Thread count of the rung.
    pub threads: usize,
    /// Old measurement (absent if the rung is new).
    pub old: Option<ThreadPerf>,
    /// New measurement (absent if the rung was dropped).
    pub new: Option<ThreadPerf>,
}

impl RungDelta {
    /// `new.evals_per_sec / old.evals_per_sec`, when both sides exist.
    pub fn throughput_ratio(&self) -> Option<f64> {
        match (&self.old, &self.new) {
            (Some(o), Some(n)) if o.evals_per_sec > 0.0 => Some(n.evals_per_sec / o.evals_per_sec),
            _ => None,
        }
    }
}

/// Per-workload comparison of two reports.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadDelta {
    /// Workload name (matched by name across the two reports).
    pub name: String,
    /// One entry per thread count present in either report, ascending.
    pub rungs: Vec<RungDelta>,
}

/// Lines up `old` and `new` by workload name and thread count. Workloads
/// present on only one side still appear (with one-sided rungs), so a
/// renamed or dropped workload is visible rather than silently skipped.
pub fn diff(old: &PerfReport, new: &PerfReport) -> Vec<WorkloadDelta> {
    let mut names: Vec<&str> =
        old.workloads.iter().chain(&new.workloads).map(|w| w.name.as_str()).collect();
    names.sort_unstable();
    names.dedup();

    names
        .into_iter()
        .map(|name| {
            let o = old.workloads.iter().find(|w| w.name == name);
            let n = new.workloads.iter().find(|w| w.name == name);
            let mut threads: Vec<usize> = o
                .into_iter()
                .chain(n)
                .flat_map(|w| w.measurements.iter().map(|m| m.threads))
                .collect();
            threads.sort_unstable();
            threads.dedup();
            let rungs = threads
                .into_iter()
                .map(|t| RungDelta {
                    threads: t,
                    old: o.and_then(|w| w.at_threads(t)).cloned(),
                    new: n.and_then(|w| w.at_threads(t)).cloned(),
                })
                .collect();
            WorkloadDelta { name: name.to_string(), rungs }
        })
        .collect()
}

/// Renders a diff as the table `bench_compare OLD NEW` prints.
pub fn format_diff(old: &PerfReport, new: &PerfReport, deltas: &[WorkloadDelta]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "old: schema {}, mode {}, pool '{}', host parallelism {}",
        old.schema, old.mode, old.pool_mode, old.host_parallelism
    );
    let _ = writeln!(
        out,
        "new: schema {}, mode {}, pool '{}', host parallelism {}",
        new.schema, new.mode, new.pool_mode, new.host_parallelism
    );
    if old.host_parallelism != new.host_parallelism {
        let _ = writeln!(
            out,
            "note: host parallelism differs — absolute throughput deltas are not apples-to-apples"
        );
    }
    for d in deltas {
        let _ = writeln!(out, "\n[{}]", d.name);
        let _ = writeln!(
            out,
            "{:>8} {:>16} {:>16} {:>9} {:>10} {:>10}",
            "threads", "old evals/s", "new evals/s", "ratio", "old spdup", "new spdup"
        );
        for r in &d.rungs {
            let fmt_rate = |m: &Option<ThreadPerf>| {
                m.as_ref().map_or_else(|| "-".to_string(), |m| format!("{:.0}", m.evals_per_sec))
            };
            let fmt_spdup = |m: &Option<ThreadPerf>| {
                m.as_ref()
                    .map_or_else(|| "-".to_string(), |m| format!("{:.2}x", m.speedup_vs_serial))
            };
            let ratio = r.throughput_ratio().map_or_else(|| "-".to_string(), |x| format!("{x:.3}"));
            let _ = writeln!(
                out,
                "{:>8} {:>16} {:>16} {:>9} {:>10} {:>10}",
                r.threads,
                fmt_rate(&r.old),
                fmt_rate(&r.new),
                ratio,
                fmt_spdup(&r.old),
                fmt_spdup(&r.new),
            );
        }
    }
    out
}

/// Fills in the fields the `magma-perf/v2` schema added, so a v1 file
/// deserializes into today's [`PerfReport`] with zero/empty defaults (the
/// schema contract only ever *adds* fields, so this upgrade is purely
/// key-insertion — never a rename or a reinterpretation).
fn upgrade_to_v2(value: &mut serde::Value) {
    fn ensure(entries: &mut Vec<(String, serde::Value)>, key: &str, default: serde::Value) {
        if !entries.iter().any(|(k, _)| k == key) {
            entries.push((key.to_string(), default));
        }
    }
    let serde::Value::Map(entries) = value else { return };
    ensure(entries, "pool_mode", serde::Value::Str(String::new()));
    ensure(entries, "warmup_batches", serde::Value::U64(0));
    ensure(
        entries,
        "host",
        serde::Value::Map(vec![
            ("parallelism".into(), serde::Value::U64(0)),
            ("os".into(), serde::Value::Str(String::new())),
            ("arch".into(), serde::Value::Str(String::new())),
        ]),
    );
    for (key, v) in entries.iter_mut() {
        if key != "workloads" {
            continue;
        }
        let serde::Value::Seq(workloads) = v else { continue };
        for w in workloads {
            let serde::Value::Map(w) = w else { continue };
            for (wk, wv) in w.iter_mut() {
                if wk != "measurements" {
                    continue;
                }
                let serde::Value::Seq(rungs) = wv else { continue };
                for rung in rungs {
                    if let serde::Value::Map(rung) = rung {
                        ensure(rung, "scaling_efficiency", serde::Value::F64(0.0));
                    }
                }
            }
        }
    }
}

/// Reads and parses a perf report: v2 natively, or v1 with the post-v1
/// fields filled in as zero/empty (pure key-insertion — the schema contract
/// only ever adds fields) so diffs can straddle the schema bump.
pub fn load_report(path: &Path) -> Result<PerfReport, String> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| format!("could not read {}: {e}", path.display()))?;
    let mut value: serde::Value = serde_json::from_str(&raw)
        .map_err(|e| format!("could not parse {}: {e}", path.display()))?;
    upgrade_to_v2(&mut value);
    serde::Deserialize::from_value(&value)
        .map_err(|e| format!("{} is not a perf report: {e:?}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{HostMeta, WorkloadPerf, SCHEMA};
    use magma::platform::Setting;
    use magma_model::TaskType;

    fn rung(threads: usize, evals_per_sec: f64, speedup: f64) -> ThreadPerf {
        ThreadPerf {
            threads,
            wall_ms: 10.0,
            evals_per_sec,
            speedup_vs_serial: speedup,
            scaling_efficiency: speedup / threads as f64,
        }
    }

    fn report(workloads: Vec<(&str, Vec<ThreadPerf>)>) -> PerfReport {
        PerfReport {
            schema: SCHEMA.to_string(),
            mode: "smoke".into(),
            host_parallelism: 4,
            pool_mode: magma::optim::parallel::pool_mode().to_string(),
            warmup_batches: 1,
            host: HostMeta::capture(),
            thread_counts: vec![1, 2, 4],
            seed: 0,
            workloads: workloads
                .into_iter()
                .map(|(name, measurements)| WorkloadPerf {
                    name: name.into(),
                    setting: Setting::S1,
                    task: TaskType::Mix,
                    group_size: 8,
                    batch_size: 8,
                    batches: 1,
                    measurements,
                })
                .collect(),
        }
    }

    #[test]
    fn gate_passes_when_every_workload_clears_the_bar() {
        let r = report(vec![
            ("a", vec![rung(1, 100.0, 1.0), rung(2, 130.0, 1.3)]),
            ("b", vec![rung(1, 50.0, 1.0), rung(2, 55.0, 1.1)]),
        ]);
        let spec = GateSpec { threads: 2, min_speedup: 1.05 };
        assert!(check_gate(&r, &spec).is_empty());
        assert!(format_gate(&r, &spec, &[]).contains("gate PASSED"));
    }

    #[test]
    fn gate_flags_slow_and_missing_rungs() {
        let r = report(vec![
            ("fast", vec![rung(1, 100.0, 1.0), rung(2, 150.0, 1.5)]),
            ("slow", vec![rung(1, 100.0, 1.0), rung(2, 101.0, 1.01)]),
            ("unmeasured", vec![rung(1, 100.0, 1.0)]),
        ]);
        let spec = GateSpec { threads: 2, min_speedup: 1.05 };
        let violations = check_gate(&r, &spec);
        assert_eq!(violations.len(), 2);
        assert_eq!(violations[0].workload, "slow");
        assert_eq!(violations[0].measured, Some(1.01));
        assert_eq!(violations[1].workload, "unmeasured");
        assert_eq!(violations[1].measured, None);
        let text = format_gate(&r, &spec, &violations);
        assert!(text.contains("gate FAILED"));
        assert!(text.contains("rung not measured"));
    }

    #[test]
    fn gate_boundary_is_inclusive() {
        let r = report(vec![("edge", vec![rung(1, 100.0, 1.0), rung(2, 105.0, 1.05)])]);
        assert!(check_gate(&r, &GateSpec { threads: 2, min_speedup: 1.05 }).is_empty());
    }

    #[test]
    fn diff_lines_up_workloads_and_rungs() {
        let old = report(vec![
            ("a", vec![rung(1, 100.0, 1.0), rung(2, 120.0, 1.2)]),
            ("dropped", vec![rung(1, 10.0, 1.0)]),
        ]);
        let new = report(vec![
            ("a", vec![rung(1, 110.0, 1.0), rung(2, 160.0, 1.45), rung(4, 200.0, 1.8)]),
            ("added", vec![rung(1, 20.0, 1.0)]),
        ]);
        let deltas = diff(&old, &new);
        assert_eq!(
            deltas.iter().map(|d| d.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "added", "dropped"],
        );
        let a = &deltas[0];
        assert_eq!(a.rungs.iter().map(|r| r.threads).collect::<Vec<_>>(), vec![1, 2, 4]);
        assert_eq!(a.rungs[1].throughput_ratio(), Some(160.0 / 120.0));
        // The rung new in `new` has no old side, hence no ratio.
        assert_eq!(a.rungs[2].throughput_ratio(), None);
        let text = format_diff(&old, &new, &deltas);
        assert!(text.contains("[a]") && text.contains("[added]") && text.contains("[dropped]"));
    }

    #[test]
    fn load_report_accepts_a_v1_file() {
        // A minimal magma-perf/v1 report: none of the v2 fields present.
        let v1 = r#"{
            "schema": "magma-perf/v1",
            "mode": "smoke",
            "host_parallelism": 1,
            "thread_counts": [1, 2],
            "seed": 0,
            "workloads": [{
                "name": "w",
                "setting": "S1",
                "task": "Mix",
                "group_size": 8,
                "batch_size": 8,
                "batches": 1,
                "measurements": [
                    {"threads": 1, "wall_ms": 1.0, "evals_per_sec": 10.0, "speedup_vs_serial": 1.0}
                ]
            }]
        }"#;
        let dir = std::env::temp_dir().join("magma_compare_v1_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.json");
        std::fs::write(&path, v1).unwrap();
        let report = load_report(&path).unwrap();
        assert_eq!(report.schema, "magma-perf/v1");
        assert_eq!(report.pool_mode, "");
        assert_eq!(report.warmup_batches, 0);
        assert_eq!(report.host.parallelism, 0);
        assert_eq!(report.workloads[0].measurements[0].scaling_efficiency, 0.0);
    }
}
