//! Shared plumbing for the experiment-reproduction binaries.
//!
//! Every binary in `src/bin/` regenerates one figure or table of the paper's
//! evaluation section (each binary's doc comment names its artefact):
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `fig07_job_analysis` | Fig. 7 — HB/LB job characteristics |
//! | `fig08_homogeneous` | Fig. 8 — mappers on the homogeneous S1 |
//! | `fig09_heterogeneous` | Fig. 9 — mappers on heterogeneous S2/S4 |
//! | `fig10_exploration` | Fig. 10 — exploration study |
//! | `fig11_convergence` | Fig. 11 — convergence curves |
//! | `fig12_bw_sweep` | Fig. 12 — bandwidth sweep |
//! | `fig13_subaccel_combos` | Fig. 13 — sub-accelerator combinations |
//! | `fig14_flexible` | Fig. 14 — fixed vs flexible PE arrays |
//! | `fig15_schedule_visual` | Fig. 15 — schedule visualization |
//! | `fig16_operator_ablation` | Fig. 16 — GA operator ablation |
//! | `fig17_group_size` | Fig. 17 — group-size sweep |
//! | `tab05_warm_start` | Table V — warm-start transfer |
//! | `perf_suite` | not a paper artefact — the parallel-evaluation perf harness behind `BENCH_parallel_eval.json` (see [`perf`]) |
//! | `serve_sim` | not a paper artefact — the online multi-tenant serving simulator behind `BENCH_serve.json` (`magma-serve`) |
//!
//! By default the binaries run at a *reduced* scale so they finish in seconds
//! on a laptop; set the environment variable `MAGMA_FULL_SCALE=1` to run at
//! the paper's scale (group size 100, 10 000-sample budget), or override the
//! individual knobs with `MAGMA_GROUP_SIZE` and `MAGMA_BUDGET` (see
//! [`Scale::from_env`]). Binaries print paper-style tables and dump raw JSON
//! under `target/experiment-results/` via [`dump_json`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod perf;

use magma::experiments::MethodScore;
use serde::Serialize;
use std::path::PathBuf;

/// Scale parameters shared by all experiment binaries.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of jobs per group.
    pub group_size: usize,
    /// Sampling budget per optimizer run.
    pub budget: usize,
    /// Workload / search seed.
    pub seed: u64,
    /// Worker threads for batch fitness evaluation (`MAGMA_THREADS`,
    /// default: available parallelism). Purely a wall-clock knob — results
    /// are identical at every thread count.
    pub threads: usize,
}

impl Scale {
    /// Reads the scale from the environment: paper scale when
    /// `MAGMA_FULL_SCALE=1`, reduced scale otherwise, with per-knob
    /// overrides via `MAGMA_GROUP_SIZE` / `MAGMA_BUDGET` / `MAGMA_SEED` /
    /// `MAGMA_THREADS`.
    pub fn from_env() -> Self {
        let threads = magma::platform::settings::magma_threads();
        let full = std::env::var("MAGMA_FULL_SCALE").map(|v| v == "1").unwrap_or(false);
        let mut scale = if full {
            Scale { group_size: 100, budget: 10_000, seed: 0, threads }
        } else {
            Scale { group_size: 30, budget: 1_000, seed: 0, threads }
        };
        if let Ok(v) = std::env::var("MAGMA_GROUP_SIZE") {
            if let Ok(n) = v.parse() {
                scale.group_size = n;
            }
        }
        if let Ok(v) = std::env::var("MAGMA_BUDGET") {
            if let Ok(n) = v.parse() {
                scale.budget = n;
            }
        }
        if let Ok(v) = std::env::var("MAGMA_SEED") {
            if let Ok(n) = v.parse() {
                scale.seed = n;
            }
        }
        scale
    }
}

/// The parsed command line shared by the serving binaries (`serve_sim`,
/// `fleet_sim`, `cache_sweep`, `magma_server`, `loadgen`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ServingCli {
    /// CI scale requested (`--smoke`, or the binary's mode env var).
    pub smoke: bool,
    /// Registry scenario file to run instead of the builtin ladder
    /// (`--scenario <file>` / `--scenario=<file>`).
    pub scenario: Option<PathBuf>,
}

/// Pure parser behind [`serving_cli`]: accepts `--smoke`,
/// `--scenario <file>` and `--scenario=<file>`; **any other flag is a hard
/// error** (the serving binaries used to silently ignore typos like
/// `--smokey` or `--scenrio`, running at full scale instead).
pub fn parse_serving_args<I>(args: I) -> Result<ServingCli, String>
where
    I: IntoIterator<Item = String>,
{
    let mut cli = ServingCli::default();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            cli.smoke = true;
        } else if arg == "--scenario" {
            match args.next() {
                Some(path) => cli.scenario = Some(PathBuf::from(path)),
                None => return Err("--scenario requires a path to a registry scenario file".into()),
            }
        } else if let Some(path) = arg.strip_prefix("--scenario=") {
            if path.is_empty() {
                return Err("--scenario requires a path to a registry scenario file".into());
            }
            cli.scenario = Some(PathBuf::from(path));
        } else {
            return Err(format!(
                "unknown argument {arg:?} (expected --smoke, --scenario <file> or \
                 --scenario=<file>)"
            ));
        }
    }
    Ok(cli)
}

/// Parses the process arguments of a serving binary, folding in the
/// binary's smoke-mode environment variable (`MAGMA_SERVE_MODE`,
/// `MAGMA_FLEET_MODE` or `MAGMA_SERVER_MODE` set to `smoke`). Unknown flags
/// exit with status 2 and an actionable message.
pub fn serving_cli(mode_env: &str) -> ServingCli {
    match parse_serving_args(std::env::args().skip(1)) {
        Ok(mut cli) => {
            cli.smoke |= std::env::var(mode_env).map(|v| v == "smoke").unwrap_or(false);
            cli
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Resolves a `--scenario` path against the registry
/// (`MAGMA_SCENARIO_DIR`, default `scenarios/`), exiting with the
/// registry's actionable error on any rejection.
pub fn resolve_scenario_or_exit(path: &std::path::Path) -> magma_registry::ResolvedScenario {
    match magma_registry::resolve_scenario_file(path) {
        Ok(resolved) => resolved,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

/// Prints a banner naming the experiment and the scale it runs at.
pub fn banner(title: &str, scale: &Scale) {
    println!("==============================================================");
    println!("{title}");
    println!(
        "group size {}, budget {} samples, seed {}, {} eval thread(s) \
         (set MAGMA_FULL_SCALE=1 for paper scale, MAGMA_THREADS=n for the pool size)",
        scale.group_size, scale.budget, scale.seed, scale.threads
    );
    println!("==============================================================");
}

/// Prints a normalized-throughput table in the layout of the paper's bar
/// charts (one row per mapper).
pub fn print_scores(label: &str, scores: &[MethodScore]) {
    println!("\n[{label}]");
    println!("{:<22} {:>14} {:>12}", "mapper", "GFLOP/s", "norm (MAGMA=1)");
    for s in scores {
        println!("{:<22} {:>14.2} {:>12.3}", s.method, s.gflops, s.normalized);
    }
}

/// Writes any serializable result next to the printed table as JSON so the
/// numbers can be post-processed/plotted. Files land in
/// `target/experiment-results/`.
pub fn dump_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target/experiment-results");
    if std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if std::fs::write(&path, s).is_ok() {
                println!("\n(raw data written to {})", path.display());
            }
        }
        Err(e) => eprintln!("could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_scale_defaults_are_modest() {
        // The default (no env override) must stay laptop-friendly.
        let s = Scale { group_size: 30, budget: 1_000, seed: 0, threads: 1 };
        assert!(s.group_size <= 100);
        assert!(s.budget <= 10_000);
        assert!(Scale::from_env().threads >= 1);
    }

    #[test]
    fn serving_cli_accepts_the_shared_flags() {
        let to_args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_serving_args(to_args(&[])).unwrap(), ServingCli::default());
        let cli = parse_serving_args(to_args(&["--smoke"])).unwrap();
        assert!(cli.smoke && cli.scenario.is_none());
        let cli = parse_serving_args(to_args(&["--scenario", "a/b.json", "--smoke"])).unwrap();
        assert!(cli.smoke);
        assert_eq!(cli.scenario.as_deref(), Some(std::path::Path::new("a/b.json")));
        let cli = parse_serving_args(to_args(&["--scenario=c.json"])).unwrap();
        assert_eq!(cli.scenario.as_deref(), Some(std::path::Path::new("c.json")));
    }

    #[test]
    fn serving_cli_rejects_unknown_and_malformed_flags() {
        let to_args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
        assert!(parse_serving_args(to_args(&["--smokey"])).unwrap_err().contains("--smokey"));
        assert!(parse_serving_args(to_args(&["extra"])).is_err());
        assert!(parse_serving_args(to_args(&["--scenario"])).unwrap_err().contains("path"));
        assert!(parse_serving_args(to_args(&["--scenario="])).is_err());
        // The first bad flag wins even after valid ones.
        assert!(parse_serving_args(to_args(&["--smoke", "--verbose"])).is_err());
    }

    #[test]
    fn print_scores_does_not_panic() {
        print_scores(
            "test",
            &[MethodScore { method: "MAGMA".into(), gflops: 10.0, normalized: 1.0 }],
        );
    }
}
